"""Ad-hoc imperative validation baselines (paper §3.1, Listings 2 & 3).

These functions re-implement the expert CPL corpora of
:mod:`repro.synthetic.specs` the way the paper says existing validation code
was written: imperative loops that rediscover configuration instances for
every check, inline value parsing, per-check hand-crafted error messages,
and no shared helpers ("validation code is bulky and hard to maintain…
practitioners often waste time writing similar checks").

They serve two purposes:

* the **LoC baseline** for Tables 3 & 4 — :func:`imperative_loc` counts
  this module's effective lines per validator;
* a **functional oracle** — tests assert that each imperative validator and
  its CPL counterpart report violations for the same instance keys on the
  same data.

Do not refactor the duplication away: the duplication *is* the baseline.
"""

from __future__ import annotations

import inspect
import re

from ..repository.store import ConfigStore

__all__ = ["validate_type_a", "validate_type_b", "validate_type_c", "imperative_loc"]


def _ip_ok(text):
    parts = text.strip().split(".")
    if len(parts) != 4:
        return False
    for part in parts:
        if not part.isdigit():
            return False
        if int(part) > 255:
            return False
    return True


def _ip_value(text):
    total = 0
    for part in text.strip().split("."):
        total = total * 256 + int(part)
    return total


# ---------------------------------------------------------------------------
# Type A validator (counterpart of specs.TYPE_A_SPECS)
# ---------------------------------------------------------------------------


def validate_type_a(store: ConfigStore):
    """Validate a Type A snapshot imperatively; returns error strings."""
    errors = []

    # ---- collect per-cluster settings by walking every instance ---------
    clusters = {}
    for instance in store.instances():
        segments = instance.key.segments
        for index in range(len(segments) - 1):
            if segments[index].name == "Cluster":
                cluster_id = tuple(
                    (s.name, s.qualifier, s.ordinal) for s in segments[: index + 1]
                )
                record = clusters.setdefault(
                    cluster_id, {"settings": [], "prefix": segments[: index + 1]}
                )
                record["settings"].append(instance)
                break

    # ---- check 1: StartIP/EndIP present, valid, ordered ------------------
    for cluster_id, record in clusters.items():
        start_ip = None
        end_ip = None
        for instance in record["settings"]:
            if len(instance.key.segments) == len(record["prefix"]) + 1:
                if instance.key.leaf_name == "StartIP":
                    start_ip = instance
                if instance.key.leaf_name == "EndIP":
                    end_ip = instance
        if start_ip is None or not start_ip.value.strip():
            errors.append(f"cluster {cluster_id}: missing or empty StartIP")
            continue
        if end_ip is None or not end_ip.value.strip():
            errors.append(f"cluster {cluster_id}: missing or empty EndIP")
            continue
        if not _ip_ok(start_ip.value):
            errors.append(f"{start_ip.key.render()}: not an IP: {start_ip.value}")
            continue
        if not _ip_ok(end_ip.value):
            errors.append(f"{end_ip.key.render()}: not an IP: {end_ip.value}")
            continue
        if _ip_value(start_ip.value) > _ip_value(end_ip.value):
            errors.append(
                f"cluster {cluster_id}: StartIP {start_ip.value} > EndIP {end_ip.value}"
            )

    # ---- check 2: every VIP range inside its cluster's range -------------
    for cluster_id, record in clusters.items():
        start_ip = None
        end_ip = None
        for instance in record["settings"]:
            if len(instance.key.segments) == len(record["prefix"]) + 1:
                if instance.key.leaf_name == "StartIP":
                    start_ip = instance.value
                if instance.key.leaf_name == "EndIP":
                    end_ip = instance.value
        if start_ip is None or end_ip is None:
            continue
        if not _ip_ok(start_ip) or not _ip_ok(end_ip):
            continue
        low = _ip_value(start_ip)
        high = _ip_value(end_ip)
        for instance in record["settings"]:
            if instance.key.leaf_name != "VipRange":
                continue
            text = instance.value.strip()
            if "-" not in text:
                errors.append(f"{instance.key.render()}: malformed VIP range {text!r}")
                continue
            first, __, second = text.partition("-")
            if not _ip_ok(first) or not _ip_ok(second):
                errors.append(f"{instance.key.render()}: malformed VIP range {text!r}")
                continue
            if _ip_value(first) < low or _ip_value(first) > high:
                errors.append(
                    f"{instance.key.render()}: VIP start {first} outside "
                    f"cluster range {start_ip}-{end_ip}"
                )
            if _ip_value(second) < low or _ip_value(second) > high:
                errors.append(
                    f"{instance.key.render()}: VIP end {second} outside "
                    f"cluster range {start_ip}-{end_ip}"
                )

    # ---- check 3: VIP ranges are well-formed everywhere -------------------
    for instance in store.instances():
        if instance.key.leaf_name != "VipRange":
            continue
        text = instance.value.strip()
        if not text:
            errors.append(f"{instance.key.render()}: empty VIP range")
            continue
        if text.count("-") != 1:
            errors.append(f"{instance.key.render()}: bad VIP range format {text!r}")
            continue
        first, __, second = text.partition("-")
        if not _ip_ok(first) or not _ip_ok(second):
            errors.append(f"{instance.key.render()}: bad VIP range format {text!r}")

    # ---- check 4: MAC pool and IP pool sizes agree per load balancer ------
    lb_sets = {}
    for instance in store.instances():
        segments = instance.key.segments
        for index in range(len(segments) - 1):
            if segments[index].name == "LoadBalancerSet":
                lb_id = tuple(
                    (s.name, s.qualifier, s.ordinal) for s in segments[: index + 1]
                )
                lb_sets.setdefault(lb_id, []).append(instance)
                break
    for lb_id, members in lb_sets.items():
        mac_size = None
        ip_size = None
        for instance in members:
            if instance.key.leaf_name == "MacPoolSize":
                mac_size = instance
            if instance.key.leaf_name == "IpPoolSize":
                ip_size = instance
        if mac_size is None or ip_size is None:
            continue
        try:
            mac_count = int(mac_size.value)
        except ValueError:
            errors.append(f"{mac_size.key.render()}: not an integer: {mac_size.value}")
            continue
        try:
            ip_count = int(ip_size.value)
        except ValueError:
            errors.append(f"{ip_size.key.render()}: not an integer: {ip_size.value}")
            continue
        if mac_count != ip_count:
            errors.append(
                f"{mac_size.key.render()}: MAC pool {mac_count} != IP pool {ip_count}"
            )
        if mac_count < 1 or mac_count > 1024:
            errors.append(f"{mac_size.key.render()}: pool size {mac_count} out of range")

    # ---- check 5: load balancer device names -----------------------------
    for instance in store.instances():
        if instance.key.leaf_name != "Device":
            continue
        in_lb = False
        for segment in instance.key.segments:
            if segment.name == "LoadBalancerSet":
                in_lb = True
        if not in_lb:
            continue
        if not instance.value.strip():
            errors.append(f"{instance.key.render()}: empty device name")
        elif not instance.value.startswith("slb-"):
            errors.append(
                f"{instance.key.render()}: device {instance.value!r} missing slb- prefix"
            )

    # ---- check 6: blade locations unique within each rack ------------------
    racks = {}
    for instance in store.instances():
        if instance.key.leaf_name != "Location":
            continue
        segments = instance.key.segments
        rack_prefix = None
        for index in range(len(segments) - 1):
            if segments[index].name == "Rack":
                rack_prefix = tuple(
                    (s.name, s.qualifier, s.ordinal) for s in segments[: index + 1]
                )
        if rack_prefix is None:
            continue
        racks.setdefault(rack_prefix, []).append(instance)
    for rack_prefix, members in racks.items():
        seen = set()
        for instance in members:
            if instance.value in seen:
                errors.append(
                    f"{instance.key.render()}: duplicate blade location "
                    f"{instance.value!r} in rack"
                )
            else:
                seen.add(instance.value)

    # ---- check 7: blade locations are small positive integers --------------
    for instance in store.instances():
        if instance.key.leaf_name != "Location":
            continue
        is_blade = False
        for segment in instance.key.segments:
            if segment.name == "Blade":
                is_blade = True
        if not is_blade:
            continue
        try:
            location = int(instance.value)
        except ValueError:
            errors.append(f"{instance.key.render()}: location not an int: {instance.value!r}")
            continue
        if location < 1 or location > 64:
            errors.append(f"{instance.key.render()}: location {location} out of range")

    # ---- check 8: BladeID format and global uniqueness ---------------------
    blade_ids = set()
    blade_pattern = re.compile(r"^[0-9]+-[0-9]+-[0-9]+-[0-9]+$")
    for instance in store.instances():
        if instance.key.leaf_name != "BladeID":
            continue
        if not instance.value.strip():
            errors.append(f"{instance.key.render()}: empty BladeID")
            continue
        if not blade_pattern.match(instance.value):
            errors.append(f"{instance.key.render()}: bad BladeID {instance.value!r}")
        if instance.value in blade_ids:
            errors.append(f"{instance.key.render()}: duplicate BladeID {instance.value!r}")
        else:
            blade_ids.add(instance.value)

    # ---- check 9: FccDnsName present and well formed ------------------------
    for instance in store.instances():
        if instance.key.leaf_name != "FccDnsName":
            continue
        if not instance.value.strip():
            errors.append(f"{instance.key.render()}: empty FccDnsName")
        elif not instance.value.endswith("cloud.example.com"):
            errors.append(
                f"{instance.key.render()}: FccDnsName {instance.value!r} "
                "not under cloud.example.com"
            )

    # ---- check 10: replica counts -------------------------------------------
    for instance in store.instances():
        if instance.key.leaf_name != "ReplicaCountForCreateFCC":
            continue
        try:
            replicas = int(instance.value)
        except ValueError:
            errors.append(
                f"{instance.key.render()}: replica count not an int: {instance.value!r}"
            )
            continue
        if replicas < 3 or replicas > 7:
            errors.append(f"{instance.key.render()}: replica count {replicas} out of range")

    # ---- check 11: machine pool enumeration ----------------------------------
    for instance in store.instances():
        if instance.key.leaf_name != "MachinePool":
            continue
        in_cluster = False
        for segment in instance.key.segments[:-1]:
            if segment.name == "Cluster":
                in_cluster = True
        if not in_cluster:
            continue
        if instance.value not in ("compute", "storage"):
            errors.append(
                f"{instance.key.render()}: machine pool {instance.value!r} "
                "is not one of compute/storage"
            )

    # ---- check 12..18: catalog hygiene by key suffix --------------------------
    for instance in store.instances():
        name = instance.key.leaf_name
        value = instance.value
        if "TimeoutSeconds" in name:
            if not value.strip():
                errors.append(f"{instance.key.render()}: empty timeout")
            else:
                try:
                    int(value)
                except ValueError:
                    errors.append(f"{instance.key.render()}: timeout not an int: {value!r}")
        if "EndpointIP" in name:
            if not value.strip():
                errors.append(f"{instance.key.render()}: empty endpoint IP")
            elif not _ip_ok(value):
                errors.append(f"{instance.key.render()}: bad endpoint IP {value!r}")
        if "Subnet" in name:
            if "/" not in value:
                errors.append(f"{instance.key.render()}: subnet {value!r} missing prefix")
            else:
                address, __, prefix = value.partition("/")
                if not _ip_ok(address):
                    errors.append(f"{instance.key.render()}: bad subnet address {value!r}")
                elif not prefix.isdigit() or int(prefix) > 32:
                    errors.append(f"{instance.key.render()}: bad subnet prefix {value!r}")
        if "ServiceUrl" in name:
            if not value.startswith("https://"):
                errors.append(f"{instance.key.render()}: service URL {value!r} not https")
        if "AccountId" in name:
            guid_pattern = re.compile(
                r"^[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}"
                r"-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}$"
            )
            if not guid_pattern.match(value):
                errors.append(f"{instance.key.render()}: bad account GUID {value!r}")
        if "Enabled" in name:
            if value.lower() not in ("true", "false", "yes", "no", "on", "off",
                                     "enabled", "disabled"):
                errors.append(f"{instance.key.render()}: bad boolean {value!r}")
        if name.endswith("Port") or ("Port" in name and name != "PortRange"):
            try:
                port = int(value)
            except ValueError:
                errors.append(f"{instance.key.render()}: port not an int: {value!r}")
                continue
            if port < 1 or port > 65535:
                errors.append(f"{instance.key.render()}: port {port} out of range")

    return errors


# ---------------------------------------------------------------------------
# Type B validator (counterpart of specs.TYPE_B_SPECS)
# ---------------------------------------------------------------------------


def validate_type_b(store: ConfigStore):
    """Validate a Type B snapshot imperatively; returns error strings."""
    errors = []

    # ---- node IPs: format + per-cluster uniqueness ---------------------------
    per_cluster_ips = {}
    for instance in store.instances():
        if instance.key.leaf_name != "NodeIP":
            continue
        if not instance.value.strip():
            errors.append(f"{instance.key.render()}: empty node IP")
            continue
        if not _ip_ok(instance.value):
            errors.append(f"{instance.key.render()}: bad node IP {instance.value!r}")
            continue
        cluster = None
        for segment in instance.key.segments:
            if segment.name == "Cluster":
                cluster = (segment.name, segment.qualifier, segment.ordinal)
        bucket = per_cluster_ips.setdefault(cluster, set())
        if instance.value in bucket:
            errors.append(
                f"{instance.key.render()}: duplicate node IP {instance.value} in cluster"
            )
        else:
            bucket.add(instance.value)

    # ---- node IDs: GUID format + global uniqueness ----------------------------
    guid_pattern = re.compile(
        r"^[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}"
        r"-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}$"
    )
    node_ids = set()
    for instance in store.instances():
        if instance.key.leaf_name != "NodeId":
            continue
        if not instance.value.strip():
            errors.append(f"{instance.key.render()}: empty node id")
            continue
        if not guid_pattern.match(instance.value):
            errors.append(f"{instance.key.render()}: bad node GUID {instance.value!r}")
        if instance.value in node_ids:
            errors.append(f"{instance.key.render()}: duplicate node id {instance.value!r}")
        else:
            node_ids.add(instance.value)

    # ---- node states: enumeration ----------------------------------------------
    for instance in store.instances():
        if instance.key.leaf_name != "NodeState":
            continue
        if instance.value not in ("ready", "draining", "offline"):
            errors.append(f"{instance.key.render()}: bad node state {instance.value!r}")

    # ---- agent ports: valid + consistent -----------------------------------------
    agent_ports = []
    for instance in store.instances():
        if instance.key.leaf_name != "AgentPort":
            continue
        try:
            port = int(instance.value)
        except ValueError:
            errors.append(f"{instance.key.render()}: agent port not an int: {instance.value!r}")
            continue
        if port < 1 or port > 65535:
            errors.append(f"{instance.key.render()}: agent port {port} out of range")
        agent_ports.append(instance)
    if agent_ports:
        counts = {}
        for instance in agent_ports:
            counts[instance.value] = counts.get(instance.value, 0) + 1
        majority = max(counts, key=lambda v: counts[v])
        for instance in agent_ports:
            if instance.value != majority:
                errors.append(
                    f"{instance.key.render()}: agent port {instance.value} "
                    f"inconsistent (expected {majority})"
                )

    # ---- heartbeats: integer range -------------------------------------------------
    for instance in store.instances():
        if instance.key.leaf_name != "HeartbeatSeconds":
            continue
        try:
            seconds = int(instance.value)
        except ValueError:
            errors.append(
                f"{instance.key.render()}: heartbeat not an int: {instance.value!r}"
            )
            continue
        if seconds < 1 or seconds > 60:
            errors.append(f"{instance.key.render()}: heartbeat {seconds} out of range")

    # ---- OS image path: nonempty, path-shaped, consistent ----------------------------
    image_paths = []
    for instance in store.instances():
        if instance.key.leaf_name != "OsImagePath":
            continue
        if not instance.value.strip():
            errors.append(f"{instance.key.render()}: empty OS image path")
            continue
        if not (instance.value.startswith("\\\\") or instance.value.startswith("/")):
            errors.append(f"{instance.key.render()}: bad OS image path {instance.value!r}")
        image_paths.append(instance)
    if image_paths:
        counts = {}
        for instance in image_paths:
            counts[instance.value] = counts.get(instance.value, 0) + 1
        majority = max(counts, key=lambda v: counts[v])
        for instance in image_paths:
            if instance.value != majority:
                errors.append(
                    f"{instance.key.render()}: OS image path inconsistent "
                    f"(expected {majority!r})"
                )

    # ---- monitor flags: boolean + consistent -------------------------------------------
    monitor_flags = []
    for instance in store.instances():
        if instance.key.leaf_name != "MonitorEnabled":
            continue
        if instance.value.lower() not in ("true", "false"):
            errors.append(f"{instance.key.render()}: bad boolean {instance.value!r}")
            continue
        monitor_flags.append(instance)
    if monitor_flags:
        counts = {}
        for instance in monitor_flags:
            counts[instance.value] = counts.get(instance.value, 0) + 1
        majority = max(counts, key=lambda v: counts[v])
        for instance in monitor_flags:
            if instance.value != majority:
                errors.append(
                    f"{instance.key.render()}: monitor flag inconsistent "
                    f"(expected {majority})"
                )

    # ---- disk ratio: float in [0, 1] ------------------------------------------------------
    for instance in store.instances():
        if instance.key.leaf_name != "DiskRatio":
            continue
        try:
            ratio = float(instance.value)
        except ValueError:
            errors.append(f"{instance.key.render()}: disk ratio not a float: {instance.value!r}")
            continue
        if ratio < 0.0 or ratio > 1.0:
            errors.append(f"{instance.key.render()}: disk ratio {ratio} out of range")

    # ---- controller IPs: format + uniqueness ----------------------------------------------
    controller_ips = set()
    for instance in store.instances():
        if instance.key.leaf_name != "ControllerIP":
            continue
        if not instance.value.strip():
            errors.append(f"{instance.key.render()}: empty controller IP")
            continue
        if not _ip_ok(instance.value):
            errors.append(f"{instance.key.render()}: bad controller IP {instance.value!r}")
            continue
        if instance.value in controller_ips:
            errors.append(
                f"{instance.key.render()}: duplicate controller IP {instance.value}"
            )
        else:
            controller_ips.add(instance.value)

    # ---- controller replicas: 3 or 5 ---------------------------------------------------------
    for instance in store.instances():
        if instance.key.leaf_name != "ControllerReplicas":
            continue
        try:
            replicas = int(instance.value)
        except ValueError:
            errors.append(
                f"{instance.key.render()}: replicas not an int: {instance.value!r}"
            )
            continue
        if replicas not in (3, 5):
            errors.append(f"{instance.key.render()}: replicas {replicas} not 3 or 5")

    # ---- service catalog hygiene ---------------------------------------------------------------
    for instance in store.instances():
        name = instance.key.leaf_name
        value = instance.value
        if "TimeoutSeconds" in name:
            if not value.strip():
                errors.append(f"{instance.key.render()}: empty timeout")
            else:
                try:
                    int(value)
                except ValueError:
                    errors.append(f"{instance.key.render()}: timeout not an int: {value!r}")
        if "EndpointIP" in name and value.strip():
            if not _ip_ok(value):
                errors.append(f"{instance.key.render()}: bad endpoint IP {value!r}")
        if "ServiceUrl" in name and value.strip():
            if "://" not in value:
                errors.append(f"{instance.key.render()}: bad service URL {value!r}")
        if "AccountId" in name and value.strip():
            if not guid_pattern.match(value):
                errors.append(f"{instance.key.render()}: bad account GUID {value!r}")
        if "Enabled" in name and value.strip():
            if value.lower() not in ("true", "false", "yes", "no", "on", "off",
                                     "enabled", "disabled"):
                errors.append(f"{instance.key.render()}: bad boolean {value!r}")

    return errors


# ---------------------------------------------------------------------------
# Type C validator (counterpart of specs.TYPE_C_SPECS)
# ---------------------------------------------------------------------------


def validate_type_c(store: ConfigStore):
    """Validate a Type C snapshot imperatively; returns error strings."""
    errors = []
    guid_pattern = re.compile(
        r"^[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}"
        r"-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}$"
    )
    for instance in store.instances():
        name = instance.key.leaf_name
        value = instance.value
        if "TimeoutSeconds" in name or "Limit" in name:
            if not value.strip():
                errors.append(f"{instance.key.render()}: empty integer setting")
                continue
            try:
                int(value)
            except ValueError:
                errors.append(f"{instance.key.render()}: not an int: {value!r}")
        if "EndpointIP" in name:
            if not value.strip():
                errors.append(f"{instance.key.render()}: empty endpoint IP")
            elif not _ip_ok(value):
                errors.append(f"{instance.key.render()}: bad endpoint IP {value!r}")
        if "Subnet" in name:
            if "/" not in value:
                errors.append(f"{instance.key.render()}: subnet {value!r} missing prefix")
            else:
                address, __, prefix = value.partition("/")
                if not _ip_ok(address):
                    errors.append(f"{instance.key.render()}: bad subnet {value!r}")
                elif not prefix.isdigit() or int(prefix) > 32:
                    errors.append(f"{instance.key.render()}: bad subnet prefix {value!r}")
        if "ServiceUrl" in name:
            if not value.startswith("https://"):
                errors.append(f"{instance.key.render()}: URL {value!r} not https")
        if "AccountId" in name:
            if not guid_pattern.match(value):
                errors.append(f"{instance.key.render()}: bad GUID {value!r}")
        if "Enabled" in name:
            if value.lower() not in ("true", "false", "yes", "no", "on", "off",
                                     "enabled", "disabled"):
                errors.append(f"{instance.key.render()}: bad boolean {value!r}")
        if "Port" in name:
            try:
                port = int(value)
            except ValueError:
                errors.append(f"{instance.key.render()}: port not an int: {value!r}")
                continue
            if port < 1 or port > 65535:
                errors.append(f"{instance.key.render()}: port {port} out of range")
        if "Ratio" in name:
            try:
                ratio = float(value)
            except ValueError:
                errors.append(f"{instance.key.render()}: ratio not a float: {value!r}")
                continue
            if ratio < 0.0 or ratio > 1.0:
                errors.append(f"{instance.key.render()}: ratio {ratio} out of range")
    return errors


# ---------------------------------------------------------------------------
# LoC accounting (Tables 3 & 4)
# ---------------------------------------------------------------------------

_VALIDATORS = {
    "type_a": validate_type_a,
    "type_b": validate_type_b,
    "type_c": validate_type_c,
}


def imperative_loc(name: str) -> int:
    """Effective (nonempty, non-comment) lines of one imperative validator."""
    source = inspect.getsource(_VALIDATORS[name])
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#") or stripped.startswith('"""'):
            continue
        count += 1
    return count
