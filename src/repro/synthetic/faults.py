"""Misconfiguration injection (DESIGN.md substitution for Tables 6 & 7).

The paper validates the three *latest configuration branches* of Microsoft
Azure (Trunk, Branch 1, Branch 2) and reports the errors each spec corpus
catches.  We derive branches from a known-good synthetic snapshot by
injecting two families of change:

* **true errors** — the misconfiguration categories the paper names:
  a load-balancer VIP range escaping its cluster's range, a bad/duplicate
  BladeID location, mismatched MAC/IP pool sizes, an empty required value
  (``empty FccDnsName``), a too-low replica count
  (``low ReplicaCountForCreateFCC``), a wrong-typed value, an out-of-range
  tunable, an inconsistent singleton, a duplicated unique value and an
  enum typo;
* **benign drift** — legitimate changes that *inferred* specifications
  misfire on (the paper's false-positive mechanisms, §6.4): an unseen enum
  value, a value just outside the observed range, and a scalar parameter
  widened to a list ("configuration instances in input are a single IP
  address but their true types are a list of IP address").

Each injection records ground truth so benchmarks can score reported
violations as true errors or false positives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..repository.keys import InstanceKey
from ..repository.model import ConfigInstance
from ..repository.store import ConfigStore

__all__ = [
    "InjectedFault",
    "Branch",
    "BranchScore",
    "FaultInjector",
    "score_report",
    "TRUE_ERROR_KINDS",
    "BENIGN_KINDS",
]

TRUE_ERROR_KINDS = (
    "vip_out_of_cluster",
    "bad_blade_location",
    "mac_ip_pool_mismatch",
    "empty_required",
    "low_replica_count",
    "wrong_type",
    "out_of_range",
    "inconsistent_value",
    "duplicate_unique",
    "enum_typo",
)

BENIGN_KINDS = (
    "new_enum_value",
    "range_drift",
    "scalar_to_list",
)


@dataclass(frozen=True)
class InjectedFault:
    """Ground truth for one injected change."""

    kind: str
    key: str            # rendered instance key that was changed
    old_value: str
    new_value: str
    benign: bool        # True = legitimate change (inferred-spec FP bait)

    def describe(self) -> str:
        label = "benign drift" if self.benign else "true error"
        return f"{label} [{self.kind}] {self.key}: {self.old_value!r} -> {self.new_value!r}"


@dataclass
class Branch:
    """One derived configuration branch: mutated instances + ground truth."""

    name: str
    instances: list[ConfigInstance]
    faults: list[InjectedFault] = field(default_factory=list)

    def build_store(self) -> ConfigStore:
        store = ConfigStore()
        store.add_all(self.instances)
        return store

    @property
    def true_error_keys(self) -> set[str]:
        return {f.key for f in self.faults if not f.benign}

    @property
    def benign_keys(self) -> set[str]:
        return {f.key for f in self.faults if f.benign}


@dataclass
class BranchScore:
    """How a validation report lines up with a branch's ground truth."""

    reported: int            # total violations reported
    true_errors_caught: int  # injected true errors with ≥1 matching violation
    false_positives: int     # violations attributable to benign drift
    unexpected: int          # violations matching no injected change


def score_report(report, branch: "Branch") -> BranchScore:
    """Match violations to injected faults by configuration class.

    Aggregate predicates may blame a *sibling* instance (the second
    duplicate rather than the injected one), so matching is by class key —
    precise enough because injections target distinct classes.
    """
    def class_of(key_text: str) -> tuple[str, ...]:
        from ..repository.keys import parse_instance_key

        try:
            return parse_instance_key(key_text).class_key
        except Exception:
            return ()

    true_classes = {class_of(f.key) for f in branch.faults if not f.benign}
    benign_classes = {class_of(f.key) for f in branch.faults if f.benign}
    caught: set[tuple] = set()
    false_positives = 0
    unexpected = 0
    for violation in report.violations:
        cls = class_of(violation.key)
        if cls in true_classes:
            caught.add(cls)
        elif cls in benign_classes:
            false_positives += 1
        else:
            unexpected += 1
    return BranchScore(
        reported=len(report.violations),
        true_errors_caught=len(caught),
        false_positives=false_positives,
        unexpected=unexpected,
    )


class FaultInjector:
    """Derives faulty branches from a good snapshot, deterministically."""

    def __init__(self, instances: Iterable[ConfigInstance], seed: int = 7):
        self.base = list(instances)
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------

    def make_branch(
        self,
        name: str,
        error_kinds: Iterable[str],
        benign_kinds: Iterable[str] = (),
    ) -> Branch:
        """Apply one injection per requested kind (skipping kinds whose
        target parameters are absent from this snapshot)."""
        mutated = {id(i): i for i in self.base}
        working = list(self.base)
        faults: list[InjectedFault] = []
        replacements: dict[InstanceKey, str] = {}
        for kind in error_kinds:
            fault = self._inject(kind, working, replacements, benign=False)
            if fault is not None:
                faults.append(fault)
        for kind in benign_kinds:
            fault = self._inject(kind, working, replacements, benign=True)
            if fault is not None:
                faults.append(fault)
        out = [
            ConfigInstance(i.key, replacements.get(i.key, i.value), i.source)
            for i in working
        ]
        return Branch(name, out, faults)

    # ------------------------------------------------------------------

    def _pick(
        self,
        instances: list[ConfigInstance],
        leaf: str,
        taken: dict[InstanceKey, str],
        where: Optional[Callable[[ConfigInstance], bool]] = None,
    ) -> Optional[ConfigInstance]:
        candidates = [
            i
            for i in instances
            if i.key.leaf_name == leaf
            and i.key not in taken
            and (where is None or where(i))
        ]
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def _pick_by_kind_suffix(
        self,
        instances: list[ConfigInstance],
        suffix: str,
        taken: dict[InstanceKey, str],
    ) -> Optional[ConfigInstance]:
        candidates = [
            i
            for i in instances
            if suffix in i.key.leaf_name and i.key not in taken and i.value.strip()
        ]
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def _inject(
        self,
        kind: str,
        instances: list[ConfigInstance],
        replacements: dict[InstanceKey, str],
        benign: bool,
    ) -> Optional[InjectedFault]:
        handler = getattr(self, f"_inject_{kind}", None)
        if handler is None:
            raise ValueError(f"unknown fault kind {kind!r}")
        result = handler(instances, replacements)
        if result is None:
            return None
        target, new_value = result
        replacements[target.key] = new_value
        return InjectedFault(kind, target.key.render(), target.value, new_value, benign)

    # -- true errors ----------------------------------------------------

    def _inject_vip_out_of_cluster(self, instances, replacements):
        target = self._pick(instances, "VipRange", replacements)
        if target is None:
            return None
        # move the range into an address block no cluster uses
        return target, "192.168.77.10-192.168.77.40"

    def _inject_bad_blade_location(self, instances, replacements):
        target = self._pick(instances, "Location", replacements)
        if target is None:
            return None
        # duplicate another blade's location within the same rack
        rack_scope = target.key.segments[:-2]
        sibling = self._pick(
            instances,
            "Location",
            {target.key: ""},
            where=lambda i: i.key.segments[:-2] == rack_scope and i.key != target.key,
        )
        if sibling is None:
            return target, "0"  # invalid location identifier
        return target, sibling.value

    def _inject_mac_ip_pool_mismatch(self, instances, replacements):
        target = self._pick(instances, "MacPoolSize", replacements)
        if target is None:
            return None
        return target, str(int(target.value) + 7)

    def _inject_empty_required(self, instances, replacements):
        target = self._pick(
            instances, "FccDnsName", replacements, where=lambda i: i.value.strip()
        )
        if target is None:
            return None
        return target, ""

    def _inject_low_replica_count(self, instances, replacements):
        target = self._pick(instances, "ReplicaCountForCreateFCC", replacements)
        if target is None:
            return None
        return target, "1"

    def _inject_wrong_type(self, instances, replacements):
        target = self._pick_by_kind_suffix(instances, "TimeoutSeconds", replacements)
        if target is None:
            target = self._pick_by_kind_suffix(instances, "Limit", replacements)
        if target is None:
            return None
        return target, "ninety"

    def _inject_out_of_range(self, instances, replacements):
        target = self._pick_by_kind_suffix(instances, "TimeoutSeconds", replacements)
        if target is None:
            return None
        return target, "999999"

    def _inject_inconsistent_value(self, instances, replacements):
        # break a parameter that is consistent across the snapshot
        from collections import Counter, defaultdict

        by_class: dict[tuple, list[ConfigInstance]] = defaultdict(list)
        for instance in instances:
            by_class[instance.class_key].append(instance)
        candidates = [
            group
            for group in by_class.values()
            if len(group) >= 3
            and len({i.value for i in group}) == 1
            and group[0].value.strip()
            and all(i.key not in replacements for i in group)
        ]
        if not candidates:
            return None
        group = self.rng.choice(candidates)
        target = self.rng.choice(group)
        return target, target.value + "-stale"

    def _inject_duplicate_unique(self, instances, replacements):
        # pick from a class whose values are actually distinct — cloning a
        # value inside a *consistent* class would be a no-op "duplicate"
        from collections import defaultdict

        by_class: dict[tuple, list[ConfigInstance]] = defaultdict(list)
        for instance in instances:
            leaf = instance.key.leaf_name
            if leaf == "NodeIP" or "EndpointIP" in leaf or leaf == "NodeId":
                by_class[instance.class_key].append(instance)
        candidates = [
            group
            for group in by_class.values()
            if len(group) >= 3
            and len({i.value for i in group}) == len(group)
            and all(i.key not in replacements for i in group)
        ]
        if not candidates:
            return None
        group = self.rng.choice(candidates)
        target, other = self.rng.sample(group, 2)
        return target, other.value

    def _inject_enum_typo(self, instances, replacements):
        target = self._pick(instances, "MachinePool", replacements)
        if target is None:
            target = self._pick_by_kind_suffix(instances, "Mode", replacements)
        if target is None:
            return None
        value = target.value
        typo = value[:-1] if len(value) > 3 else value + "x"
        return target, typo

    # -- benign drift (inferred-spec false-positive bait) ---------------

    def _inject_new_enum_value(self, instances, replacements):
        target = self._pick_by_kind_suffix(instances, "Mode", replacements)
        if target is None:
            return None
        return target, "canary"  # a real, newly introduced mode

    def _inject_range_drift(self, instances, replacements):
        # drift only a *tunable* (non-consistent) timeout: legitimate drift
        # of a fleet-consistent parameter would change every instance, so a
        # single-instance change there is not plausible benign drift
        from collections import defaultdict

        by_class: dict[tuple, list[ConfigInstance]] = defaultdict(list)
        for instance in instances:
            if "TimeoutSeconds" in instance.key.leaf_name:
                by_class[instance.class_key].append(instance)
        candidates = [
            instance
            for group in by_class.values()
            if len({i.value for i in group}) > 1
            for instance in group
            if instance.key not in replacements
        ]
        if not candidates:
            return None
        target = self.rng.choice(candidates)
        try:
            current = int(target.value)
        except ValueError:
            return None
        return target, str(current + 25)  # plausible but beyond observed max

    def _inject_scalar_to_list(self, instances, replacements):
        target = self._pick(instances, "NodeDnsServers", replacements)
        if target is None:
            target = self._pick(instances, "OwnerAlias", replacements)
            if target is None:
                return None
            return target, f"{target.value},{target.value}-secondary"
        return target, f"{target.value},{target.value.rsplit('.', 1)[0]}.250"
