"""Synthetic workloads substituting the paper's Azure/OpenStack/CloudStack data."""

from .appsource import generate_app_source
from .azure import (
    Dataset,
    ParamDef,
    generate_type_a,
    generate_type_b,
    generate_type_c,
    type_a_catalog,
)
from .faults import (
    BENIGN_KINDS,
    Branch,
    BranchScore,
    FaultInjector,
    InjectedFault,
    TRUE_ERROR_KINDS,
    score_report,
)
from .imperative import imperative_loc, validate_type_a, validate_type_b, validate_type_c
from .opensource import (
    CLOUDSTACK_SPECS,
    OPENSTACK_SPECS,
    generate_cloudstack,
    generate_openstack,
    opensource_imperative_loc,
    validate_cloudstack,
    validate_openstack,
)
from .specs import EXPERT_INFERABLE, EXPERT_SPEC_COUNTS, EXPERT_SPECS, spec_loc

__all__ = [
    "Dataset",
    "ParamDef",
    "generate_type_a",
    "generate_type_b",
    "generate_type_c",
    "type_a_catalog",
    "generate_app_source",
    "Branch",
    "BranchScore",
    "FaultInjector",
    "InjectedFault",
    "score_report",
    "TRUE_ERROR_KINDS",
    "BENIGN_KINDS",
    "validate_type_a",
    "validate_type_b",
    "validate_type_c",
    "imperative_loc",
    "generate_openstack",
    "generate_cloudstack",
    "OPENSTACK_SPECS",
    "CLOUDSTACK_SPECS",
    "validate_openstack",
    "validate_cloudstack",
    "opensource_imperative_loc",
    "EXPERT_SPECS",
    "EXPERT_SPEC_COUNTS",
    "EXPERT_INFERABLE",
    "spec_loc",
]
