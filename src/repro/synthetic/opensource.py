"""OpenStack- and CloudStack-like synthetic configurations (Table 4).

The paper also compares CPL against Rubick (OpenStack's third-party Python
validator) and against CloudStack's in-source Java validation.  We model:

* **OpenStack** — flat INI (``nova.conf`` style) with the option families
  Rubick actually checks: hosts/ports, boolean flags, enumerated backends,
  connection URLs, worker counts, interval tunables;
* **CloudStack** — a ``global settings`` key-value table (dotted lowercase
  names such as ``event.purge.interval``) with the positive-integer and
  enumeration checks from the paper's Listing 3 snippet.

Each system ships a generator, an expert CPL corpus, and an imperative
validator in each project's native ad-hoc style, so the Table 4 LoC and
behaviour comparison runs exactly like Table 3's.
"""

from __future__ import annotations

import random
import re

from ..repository.store import ConfigStore
from .azure import Dataset

__all__ = [
    "generate_openstack",
    "generate_cloudstack",
    "OPENSTACK_SPECS",
    "CLOUDSTACK_SPECS",
    "validate_openstack",
    "validate_cloudstack",
    "opensource_imperative_loc",
]


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------


def generate_openstack(nodes: int = 20, seed: int = 45) -> Dataset:
    """nova.conf-style INI files, one per compute node."""
    rng = random.Random(seed)
    sources = []
    for node in range(nodes):
        api_workers = rng.randrange(1, 17)
        lines = [
            "[DEFAULT]",
            f"my_ip = 10.0.{node // 250}.{node % 250 + 1}",
            f"state_path = /var/lib/nova",
            f"osapi_compute_listen_port = 8774",
            f"osapi_compute_workers = {api_workers}",
            f"use_neutron = {'true' if rng.random() < 0.9 else 'false'}",
            f"compute_driver = libvirt.LibvirtDriver",
            f"instances_path = /var/lib/nova/instances",
            f"report_interval = {rng.choice((10, 10, 10, 20))}",
            f"service_down_time = {rng.choice((60, 60, 120))}",
            "[api_database]",
            f"connection = mysql+pymysql://nova:pw@controller/nova_api",
            "[glance]",
            f"api_servers = http://controller:9292",
            "[neutron]",
            f"auth_type = password",
            f"auth_url = http://controller:5000",
            f"region_name = RegionOne",
            "[libvirt]",
            f"virt_type = {rng.choice(('kvm', 'qemu'))}",
            f"cpu_mode = {rng.choice(('host-model', 'host-passthrough'))}",
            "[scheduler]",
            f"discover_hosts_in_cells_interval = {rng.choice((300, 300, 600))}",
        ]
        sources.append(("ini", "\n".join(lines), f"Host::compute{node:03d}"))
    return Dataset("openstack", sources)


_CLOUDSTACK_SETTINGS = (
    ("event.purge.interval", "int", (3600, 86400)),
    ("alert.wait", "int", (60, 3600)),
    ("account.cleanup.interval", "int", (3600, 86400)),
    ("agent.load.threshold", "float", (0, 1)),
    ("cluster.cpu.allocated.capacity.disablethreshold", "float", (0, 1)),
    ("consoleproxy.session.max", "int", (1, 100)),
    ("expunge.workers", "int", (1, 16)),
    ("host", "ip", ()),
    ("hypervisor.list", "enum", ("KVM", "XenServer", "VMware")),
    ("network.loadbalancer.basiczone.elb.enabled", "bool", ()),
    ("secstorage.allowed.internal.sites", "cidr", ()),
    ("storage.overprovisioning.factor", "float", (1, 10)),
    ("vm.allocation.algorithm", "enum", ("random", "firstfit", "userdispersing")),
    ("endpoint.url", "url", ()),
)


def generate_cloudstack(zones: int = 8, seed: int = 46) -> Dataset:
    """CloudStack global-settings tables, one per zone."""
    rng = random.Random(seed)
    sources = []
    for zone in range(zones):
        lines = [f"# zone {zone} global settings"]
        for name, kind, extra in _CLOUDSTACK_SETTINGS:
            if kind == "int":
                low, high = extra
                value = str(rng.randrange(low, high + 1))
            elif kind == "float":
                low, high = extra
                value = f"{rng.uniform(low, high):.2f}"
            elif kind == "ip":
                value = f"192.168.{zone}.{rng.randrange(1, 250)}"
            elif kind == "enum":
                value = rng.choice(extra)
            elif kind == "bool":
                value = rng.choice(("true", "false"))
            elif kind == "cidr":
                value = f"192.168.{zone}.0/24"
            else:
                value = f"https://cloud{zone}.example.com:8080/client/api"
            lines.append(f"{name} = {value}")
        sources.append(("keyvalue", "\n".join(lines), f"Zone::Z{zone}"))
    return Dataset("cloudstack", sources)


# ---------------------------------------------------------------------------
# Expert CPL corpora (Table 4 "Specs in CPL")
# ---------------------------------------------------------------------------

OPENSTACK_SPECS = """\
namespace DEFAULT {
  $my_ip -> ip & nonempty
  $osapi_compute_listen_port -> port & consistent
  $osapi_compute_workers -> int & [1, 32]
  $use_neutron -> bool
  $compute_driver -> nonempty & consistent
  $state_path -> path & consistent
  $instances_path -> path & nonempty
  $report_interval -> int & [1, 120]
  $service_down_time -> int & [30, 600]
}
$my_ip -> unique
$api_database.connection -> nonempty & match('^mysql')
$glance.api_servers -> url
$neutron.auth_type -> {'password'}
$neutron.auth_url -> url & consistent
$neutron.region_name -> nonempty & consistent
$libvirt.virt_type -> {'kvm', 'qemu'}
$libvirt.cpu_mode -> {'host-model', 'host-passthrough'}
$scheduler.discover_hosts_in_cells_interval -> int & [60, 3600]
// service_down_time must exceed report_interval on every host
compartment Host {
  $service_down_time > $report_interval
}
"""

CLOUDSTACK_SPECS = """\
$event.purge.interval -> int & [1, 604800]
$alert.wait -> int & [1, 86400]
$account.cleanup.interval -> int & [1, 604800]
$agent.load.threshold -> float & [0, 1]
$cluster.cpu.allocated.capacity.disablethreshold -> float & [0, 1]
$consoleproxy.session.max -> int & [1, 1000]
$expunge.workers -> int & [1, 64]
$Zone.host -> ip & nonempty & unique
$hypervisor.list -> {'KVM', 'XenServer', 'VMware'}
$network.loadbalancer.basiczone.elb.enabled -> bool
$secstorage.allowed.internal.sites -> cidr
$storage.overprovisioning.factor -> float & [1, 10]
$vm.allocation.algorithm -> {'random', 'firstfit', 'userdispersing'}
$endpoint.url -> url & match('^https://')
"""


# ---------------------------------------------------------------------------
# Imperative baselines (Rubick-style / CloudStack-style)
# ---------------------------------------------------------------------------


def _ip_ok(text):
    parts = text.strip().split(".")
    if len(parts) != 4:
        return False
    for part in parts:
        if not part.isdigit() or int(part) > 255:
            return False
    return True


def validate_openstack(store: ConfigStore):
    """Rubick-style imperative checks over nova.conf options."""
    errors = []

    # my_ip: present, an IP, unique across hosts
    seen_ips = set()
    for instance in store.instances():
        if instance.key.leaf_name != "my_ip":
            continue
        if not instance.value.strip():
            errors.append(f"{instance.key.render()}: my_ip is empty")
            continue
        if not _ip_ok(instance.value):
            errors.append(f"{instance.key.render()}: my_ip {instance.value!r} not an IP")
            continue
        if instance.value in seen_ips:
            errors.append(f"{instance.key.render()}: duplicate my_ip {instance.value}")
        else:
            seen_ips.add(instance.value)

    # listen port: valid + consistent
    ports = []
    for instance in store.instances():
        if instance.key.leaf_name != "osapi_compute_listen_port":
            continue
        try:
            port = int(instance.value)
        except ValueError:
            errors.append(f"{instance.key.render()}: port not an int: {instance.value!r}")
            continue
        if port < 1 or port > 65535:
            errors.append(f"{instance.key.render()}: port {port} out of range")
        ports.append(instance)
    if ports:
        counts = {}
        for instance in ports:
            counts[instance.value] = counts.get(instance.value, 0) + 1
        majority = max(counts, key=lambda v: counts[v])
        for instance in ports:
            if instance.value != majority:
                errors.append(
                    f"{instance.key.render()}: listen port inconsistent "
                    f"(expected {majority})"
                )

    # workers in range
    for instance in store.instances():
        if instance.key.leaf_name != "osapi_compute_workers":
            continue
        try:
            workers = int(instance.value)
        except ValueError:
            errors.append(f"{instance.key.render()}: workers not an int: {instance.value!r}")
            continue
        if workers < 1 or workers > 32:
            errors.append(f"{instance.key.render()}: workers {workers} out of range")

    # booleans
    for instance in store.instances():
        if instance.key.leaf_name != "use_neutron":
            continue
        if instance.value.lower() not in ("true", "false"):
            errors.append(f"{instance.key.render()}: bad boolean {instance.value!r}")

    # compute driver: nonempty and consistent
    drivers = []
    for instance in store.instances():
        if instance.key.leaf_name != "compute_driver":
            continue
        if not instance.value.strip():
            errors.append(f"{instance.key.render()}: compute_driver is empty")
            continue
        drivers.append(instance)
    if drivers:
        counts = {}
        for instance in drivers:
            counts[instance.value] = counts.get(instance.value, 0) + 1
        majority = max(counts, key=lambda v: counts[v])
        for instance in drivers:
            if instance.value != majority:
                errors.append(
                    f"{instance.key.render()}: compute_driver inconsistent "
                    f"(expected {majority!r})"
                )

    # paths
    for instance in store.instances():
        if instance.key.leaf_name in ("state_path", "instances_path"):
            if not instance.value.startswith("/"):
                errors.append(
                    f"{instance.key.render()}: path {instance.value!r} not absolute"
                )

    # intervals, in range; down time > report interval per host
    per_host = {}
    for instance in store.instances():
        name = instance.key.leaf_name
        if name in ("report_interval", "service_down_time",
                    "discover_hosts_in_cells_interval"):
            try:
                value = int(instance.value)
            except ValueError:
                errors.append(f"{instance.key.render()}: not an int: {instance.value!r}")
                continue
            limits = {
                "report_interval": (1, 120),
                "service_down_time": (30, 600),
                "discover_hosts_in_cells_interval": (60, 3600),
            }[name]
            if value < limits[0] or value > limits[1]:
                errors.append(f"{instance.key.render()}: {name} {value} out of range")
            host = None
            for segment in instance.key.segments:
                if segment.name == "Host":
                    host = segment.qualifier
            per_host.setdefault(host, {})[name] = (instance, value)
    for host, settings in per_host.items():
        if "report_interval" in settings and "service_down_time" in settings:
            __, report = settings["report_interval"]
            instance, down = settings["service_down_time"]
            if down <= report:
                errors.append(
                    f"{instance.key.render()}: service_down_time {down} must "
                    f"exceed report_interval {report}"
                )

    # connection strings and URLs
    for instance in store.instances():
        name = instance.key.leaf_name
        if name == "connection":
            if not instance.value.startswith("mysql"):
                errors.append(f"{instance.key.render()}: bad connection {instance.value!r}")
        if name in ("api_servers", "auth_url"):
            if "://" not in instance.value:
                errors.append(f"{instance.key.render()}: bad URL {instance.value!r}")

    # enumerations + consistency of auth settings
    auth_urls = set()
    regions = set()
    for instance in store.instances():
        name = instance.key.leaf_name
        if name == "auth_type" and instance.value != "password":
            errors.append(f"{instance.key.render()}: auth_type {instance.value!r}")
        if name == "virt_type" and instance.value not in ("kvm", "qemu"):
            errors.append(f"{instance.key.render()}: virt_type {instance.value!r}")
        if name == "cpu_mode" and instance.value not in (
            "host-model", "host-passthrough",
        ):
            errors.append(f"{instance.key.render()}: cpu_mode {instance.value!r}")
        if name == "auth_url":
            auth_urls.add(instance.value)
        if name == "region_name":
            if not instance.value.strip():
                errors.append(f"{instance.key.render()}: region_name is empty")
            regions.add(instance.value)
    if len(auth_urls) > 1:
        errors.append(f"auth_url inconsistent across hosts: {sorted(auth_urls)}")
    if len(regions) > 1:
        errors.append(f"region_name inconsistent across hosts: {sorted(regions)}")

    return errors


def validate_cloudstack(store: ConfigStore):
    """CloudStack-style imperative checks over global settings."""
    errors = []
    int_limits = {
        "interval": (1, 604800),
        "wait": (1, 86400),
        "max": (1, 1000),
        "workers": (1, 64),
    }
    for instance in store.instances():
        name = instance.key.leaf_name
        value = instance.value
        if name in ("interval", "wait", "max", "workers"):
            try:
                number = int(value)
            except ValueError:
                errors.append(f"{instance.key.render()}: not an int: {value!r}")
                continue
            low, high = int_limits[name]
            if number < low or number > high:
                errors.append(f"{instance.key.render()}: {number} out of range")
        if name in ("threshold", "disablethreshold"):
            try:
                number = float(value)
            except ValueError:
                errors.append(f"{instance.key.render()}: not a float: {value!r}")
                continue
            if number < 0.0 or number > 1.0:
                errors.append(f"{instance.key.render()}: {number} out of [0,1]")
        if name == "factor":
            try:
                number = float(value)
            except ValueError:
                errors.append(f"{instance.key.render()}: not a float: {value!r}")
                continue
            if number < 1.0 or number > 10.0:
                errors.append(f"{instance.key.render()}: {number} out of [1,10]")
        if name == "host":
            if not value.strip():
                errors.append(f"{instance.key.render()}: host is empty")
            elif not _ip_ok(value):
                errors.append(f"{instance.key.render()}: host {value!r} not an IP")
        if name == "list":
            if value not in ("KVM", "XenServer", "VMware"):
                errors.append(f"{instance.key.render()}: hypervisor {value!r}")
        if name == "enabled":
            if value.lower() not in ("true", "false"):
                errors.append(f"{instance.key.render()}: bad boolean {value!r}")
        if name == "sites":
            if "/" not in value:
                errors.append(f"{instance.key.render()}: {value!r} not a CIDR")
            else:
                address, __, prefix = value.partition("/")
                if not _ip_ok(address) or not prefix.isdigit() or int(prefix) > 32:
                    errors.append(f"{instance.key.render()}: bad CIDR {value!r}")
        if name == "algorithm":
            if value not in ("random", "firstfit", "userdispersing"):
                errors.append(f"{instance.key.render()}: algorithm {value!r}")
        if name == "url":
            if not value.startswith("https://"):
                errors.append(f"{instance.key.render()}: URL {value!r} not https")
    # host uniqueness across zones
    seen_hosts = set()
    for instance in store.instances():
        if instance.key.leaf_name != "host":
            continue
        if instance.value in seen_hosts:
            errors.append(f"{instance.key.render()}: duplicate host {instance.value}")
        else:
            seen_hosts.add(instance.value)
    return errors


def opensource_imperative_loc(name: str) -> int:
    import inspect

    fn = {"openstack": validate_openstack, "cloudstack": validate_cloudstack}[name]
    count = 0
    for line in inspect.getsource(fn).splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#") or stripped.startswith('"""'):
            continue
        count += 1
    return count
