"""Expert-written CPL specifications for the synthetic Azure data sets.

These play the role of the paper's hand-translated validation modules
(Table 3's "Specs in CPL" column) and of the expert corpus that catches the
Table 6 errors.  Each spec string is one self-contained CPL program over
the corresponding :mod:`repro.synthetic.azure` data set; all of them pass on
a clean snapshot (asserted by tests) and catch the targeted
:mod:`repro.synthetic.faults` injections.

``EXPERT_INFERABLE`` marks the specs the inference engine also discovers on
its own — the paper reports roughly one third of translated specs were
auto-inferable (Table 3, "Inferable" column).
"""

from __future__ import annotations

__all__ = [
    "EXPERT_SPECS",
    "EXPERT_SPEC_COUNTS",
    "EXPERT_INFERABLE",
    "spec_loc",
]

TYPE_A_SPECS = """\
// --- cluster address plumbing -------------------------------------------
compartment Cluster {
  $StartIP -> ip & nonempty
  $EndIP -> ip & nonempty
  $StartIP <= $EndIP
  // every load balancer VIP range is contained in its cluster's VIP range
  $LoadBalancerSet.VipRange -> split('-') -> [$StartIP, $EndIP]
}

// --- load balancer sets ---------------------------------------------------
$LoadBalancerSet.VipRange -> iprange & nonempty
compartment LoadBalancerSet {
  $MacPoolSize == $IpPoolSize
  $MacPoolSize -> int & [1, 1024]
  $Device -> nonempty & match('^slb-')
}

// --- blade inventory -------------------------------------------------------
compartment Rack {
  $Blade.Location -> unique
}
$Blade.Location -> int & [1, 64]
$Blade.BladeID -> nonempty & unique & match('^[0-9]+-[0-9]+-[0-9]+-[0-9]+$')

// --- cluster service identity ---------------------------------------------
$Cluster.FccDnsName -> nonempty & match('cloud.example.com$')
$Cluster.ReplicaCountForCreateFCC -> int & [3, 7]
$Cluster.MachinePool -> {'compute', 'storage'}

// --- generic catalog hygiene (wildcard notations) ---------------------------
$*TimeoutSeconds* -> int & nonempty
$*EndpointIP* -> ip & nonempty
$*Subnet* -> cidr
$*ServiceUrl* -> url & match('^https://')
$*AccountId* -> guid
$*Enabled* -> bool
$*Port* -> port
"""

TYPE_B_SPECS = """\
// --- per-node identity ------------------------------------------------------
$Node.NodeIP -> ip & nonempty
compartment Cluster {
  // node addresses are unique within a cluster
  $Node.NodeIP -> unique
}
$Node.NodeId -> guid & nonempty & unique
$Node.NodeState -> {'ready', 'draining', 'offline'}

// --- node agent settings ----------------------------------------------------
$Node.AgentPort -> port & consistent
$Node.HeartbeatSeconds -> int & [1, 60]
$Node.OsImagePath -> path & nonempty & consistent
$Node.MonitorEnabled -> bool & consistent
$Node.DiskRatio -> float & [0, 1]

// --- cluster controllers ----------------------------------------------------
$Cluster.ControllerIP -> ip & nonempty & unique
$Cluster.ControllerReplicas -> int & {3, 5}

// --- service catalog hygiene -------------------------------------------------
$*TimeoutSeconds* -> int & nonempty
$*EndpointIP* -> ip
$*ServiceUrl* -> url
$*AccountId* -> guid
$*Enabled* -> bool
"""

TYPE_C_SPECS = """\
// --- per-kind hygiene over the whole environment matrix ---------------------
$*TimeoutSeconds* -> int & nonempty
$*Limit* -> int & nonempty
$*EndpointIP* -> ip & nonempty
$*Subnet* -> cidr
$*ServiceUrl* -> url & match('^https://')
$*AccountId* -> guid
$*Enabled* -> bool
$*Port* -> port
$*Ratio* -> float & [0, 1]
"""

EXPERT_SPECS = {
    "type_a": TYPE_A_SPECS,
    "type_b": TYPE_B_SPECS,
    "type_c": TYPE_C_SPECS,
}

#: number of CPL specification statements per corpus (commands excluded)
EXPERT_SPEC_COUNTS = {
    "type_a": 21,
    "type_b": 16,
    "type_c": 9,
}

#: specs the inference engine discovers on its own at benchmark scale
#: (type/nonempty/range/enum/uniqueness/consistency — cross-domain
#: relations and compartment containment remain expert-only); measured by
#: benchmarks/bench_table3_rewriting.py
EXPERT_INFERABLE = {
    "type_a": 13,
    "type_b": 15,
    "type_c": 9,
}


def spec_loc(text: str) -> int:
    """Count CPL lines of code (nonempty, non-comment) — Table 3/4 metric."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("//") or stripped.startswith("/*"):
            continue
        count += 1
    return count
