"""ConfValley — a systematic configuration validation framework.

Reproduction of *ConfValley: A Systematic Configuration Validation Framework
for Cloud Services* (Huang, Bolosky, Singh, Zhou — EuroSys 2015).

Quickstart::

    from repro import ValidationSession

    session = ValidationSession()
    session.load_text("ini", "[fabric]\\nRecoveryAttempts = 3\\n")
    report = session.validate("$fabric.RecoveryAttempts -> int & [1, 10]")
    assert report.passed

Public surface:

* :class:`ValidationSession` — load configuration sources, run CPL specs
* :class:`ValidationPolicy`, :class:`ValidationReport`, :class:`Violation`
* :class:`ConfigStore` and the driver registry (:func:`get_driver`)
* :class:`InferenceEngine` — mine CPL specifications from good data
* :func:`parse` — the CPL parser, for tooling
* :class:`ResiliencePolicy` and :mod:`repro.resilience` — fault-tolerant
  validation: source quarantine, spec circuit breakers, shard supervision,
  and the deterministic chaos harness (:class:`FaultyRuntimeProvider`)
* :mod:`repro.observability` — pipeline tracing, the metrics registry and
  exposition endpoints; nil-cost no-op singletons until
  ``observability.enable()``
* :mod:`repro.lifecycle` — inferred-spec lifecycle: the shadow lane,
  drift-driven promotion/demotion (:class:`PromotionPolicy`,
  :class:`SpecLifecycleManager`) and continuous re-inference
  (:class:`ReInferencer`)
"""

from .core import (
    DependencyIndex,
    Evaluator,
    IncrementalValidator,
    Severity,
    ValidationPolicy,
    ValidationReport,
    ValidationSession,
    Violation,
)
from .cpl import parse, parse_predicate, tokenize
from .drivers import driver_names, get_driver, register_driver
from .errors import ConfValleyError, CPLSyntaxError
from .inference import InferenceEngine
from .repository import (
    ChangeSet,
    ConfigRepository,
    ConfigStore,
    InstanceKey,
    KeyPattern,
    Snapshot,
    parse_pattern,
)
from .core.report import HealthBlock
from .errors import DriverError
from .parallel import ParallelValidator, SpecCache
from .resilience import (
    FaultPlan,
    FaultyRuntimeProvider,
    ResiliencePolicy,
    SourceFailure,
    SpecCircuitBreaker,
)
from . import observability
from .observability import MetricsRegistry, Tracer
from .lifecycle import (
    PromotionPolicy,
    ReInferencer,
    ShadowLane,
    SpecLifecycleManager,
    SpecRecord,
    SpecState,
)
from .runtime import FakeClock, FakeFileSystem, HostRuntime, MonotonicClock, StaticRuntime
from .service import ScanResult, SourceSpec, ValidationService

__version__ = "1.0.0"

__all__ = [
    "Evaluator",
    "Severity",
    "ValidationPolicy",
    "ValidationReport",
    "ValidationSession",
    "Violation",
    "parse",
    "parse_predicate",
    "tokenize",
    "driver_names",
    "get_driver",
    "register_driver",
    "ConfValleyError",
    "CPLSyntaxError",
    "DriverError",
    "HealthBlock",
    "ResiliencePolicy",
    "SourceFailure",
    "SpecCircuitBreaker",
    "FaultPlan",
    "FaultyRuntimeProvider",
    "InferenceEngine",
    "ConfigStore",
    "InstanceKey",
    "KeyPattern",
    "parse_pattern",
    "FakeFileSystem",
    "HostRuntime",
    "StaticRuntime",
    "FakeClock",
    "MonotonicClock",
    "observability",
    "MetricsRegistry",
    "Tracer",
    "ValidationService",
    "SourceSpec",
    "ScanResult",
    "DependencyIndex",
    "IncrementalValidator",
    "ParallelValidator",
    "SpecCache",
    "ConfigRepository",
    "Snapshot",
    "ChangeSet",
    "SpecLifecycleManager",
    "PromotionPolicy",
    "ReInferencer",
    "ShadowLane",
    "SpecRecord",
    "SpecState",
    "__version__",
]
