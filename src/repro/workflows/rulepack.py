"""Rule packs: declarative cross-store misconfiguration rules.

A rule pack is a YAML or TOML document of named rules evaluated by the
:class:`~repro.workflows.crosscheck.CrossStoreChecker` step.  Rules span
*multiple* configuration stores — exactly the class of misconfiguration a
single-store scan cannot express (mismatched endpoints between a client
and the service it calls, credentials leaking into world-readable files,
debug switches left on in production)::

    rulepack:
      name: security-starter
    rules:
      - id: endpoints-agree
        kind: must_agree
        severity: error
        keys: [frontend.database.host, backend.database.host]
      - id: no-secrets-world-readable
        kind: forbid
        severity: critical
        name_match: "(password|secret|token|private_key)"
        world_readable_only: true

Rule kinds (``params`` per kind are documented in ``docs/WORKFLOWS.md``):

``cpl``
    a CPL program evaluated against the merged, store-prefixed view —
    full language power, store names as scope prefixes;
``must_agree``
    every instance matched by any of ``keys`` must carry the same value;
``ref``
    every value of ``key`` must appear among the values of ``target``
    (referential integrity between stores);
``agree_port``
    the port embedded in each matched value (``host:port``, URLs, bare
    ports) must agree across ``keys``;
``forbid``
    matched instances are violations outright, optionally filtered by
    value (``equals`` / ``value_match``), store flags
    (``world_readable_only``) and a ``when`` condition on the same store.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..core.report import Severity
from .model import WorkflowError

__all__ = ["Rule", "RulePack", "load_rulepack", "parse_rulepack"]

RULE_KINDS = ("cpl", "must_agree", "ref", "agree_port", "forbid")

#: structural rule keys; everything else is a kind-specific parameter
_RESERVED = frozenset({"id", "kind", "severity", "message"})

_REQUIRED_PARAMS = {
    "cpl": ("spec",),
    "must_agree": ("keys",),
    "ref": ("key", "target"),
    "agree_port": ("keys",),
    "forbid": (),
}


@dataclass(frozen=True)
class Rule:
    """One cross-store consistency rule."""

    id: str
    kind: str
    severity: str = Severity.ERROR
    #: operator-facing explanation used in generated violation messages
    message: str = ""
    params: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {
            "id": self.id,
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
        }
        payload.update(self.params)
        return payload


@dataclass(frozen=True)
class RulePack:
    """An ordered, validated collection of rules."""

    name: str
    description: str = ""
    rules: tuple = ()

    def to_dict(self) -> dict:
        return {
            "rulepack": {"name": self.name, "description": self.description},
            "rules": [rule.to_dict() for rule in self.rules],
        }


def _parse_rule(data: dict, position: int) -> Rule:
    if not isinstance(data, dict):
        raise WorkflowError(f"rule #{position} must be a mapping, got {data!r}")
    rule_id = data.get("id")
    if not rule_id or not isinstance(rule_id, str):
        raise WorkflowError(f"rule #{position} needs a string 'id'")
    kind = data.get("kind")
    if kind not in RULE_KINDS:
        raise WorkflowError(
            f"rule {rule_id!r}: unknown kind {kind!r}; expected one of "
            f"{', '.join(RULE_KINDS)}"
        )
    severity = str(data.get("severity", Severity.ERROR)).lower()
    if severity not in Severity.ORDER:
        raise WorkflowError(
            f"rule {rule_id!r}: unknown severity {severity!r}"
        )
    params = {key: value for key, value in data.items() if key not in _RESERVED}
    for required in _REQUIRED_PARAMS[kind]:
        if required not in params:
            raise WorkflowError(
                f"rule {rule_id!r} (kind {kind}) needs a {required!r} parameter"
            )
    if kind == "forbid" and not (
        params.get("key") or params.get("name_match")
    ):
        raise WorkflowError(
            f"rule {rule_id!r} (kind forbid) needs 'key' or 'name_match'"
        )
    for listy in ("keys",):
        if listy in params and not isinstance(params[listy], list):
            raise WorkflowError(f"rule {rule_id!r}: {listy!r} must be a list")
    return Rule(
        id=rule_id,
        kind=kind,
        severity=severity,
        message=str(data.get("message", "")),
        params=params,
    )


def parse_rulepack(data: dict) -> RulePack:
    """Validate a rule-pack document (already parsed to a dict)."""
    if not isinstance(data, dict):
        raise WorkflowError("rule pack must be a mapping")
    meta = data.get("rulepack", {})
    if not isinstance(meta, dict):
        raise WorkflowError("'rulepack' must be a mapping")
    raw_rules = data.get("rules")
    if not isinstance(raw_rules, list) or not raw_rules:
        raise WorkflowError("rule pack needs a non-empty 'rules' list")
    rules = tuple(
        _parse_rule(raw, position)
        for position, raw in enumerate(raw_rules, start=1)
    )
    seen: set[str] = set()
    for rule in rules:
        if rule.id in seen:
            raise WorkflowError(f"duplicate rule id {rule.id!r}")
        seen.add(rule.id)
    return RulePack(
        name=str(meta.get("name") or data.get("name") or "rulepack"),
        description=str(meta.get("description", "")),
        rules=rules,
    )


def load_rulepack(path: str) -> RulePack:
    """Load a rule pack from a YAML (``.yaml``/``.yml``) or TOML file."""
    extension = os.path.splitext(path)[1].lower()
    with open(path, "rb") as handle:
        raw = handle.read()
    if extension == ".toml":
        import tomllib

        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except tomllib.TOMLDecodeError as exc:
            raise WorkflowError(f"malformed TOML rule pack {path}: {exc}") from exc
    else:
        import yaml

        try:
            data = yaml.safe_load(raw)
        except yaml.YAMLError as exc:
            raise WorkflowError(f"malformed YAML rule pack {path}: {exc}") from exc
    return parse_rulepack(data)
