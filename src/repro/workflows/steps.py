"""Built-in step kinds and the custom-step registry.

A step implementation is a *pure* callable ``runner(ctx, step) ->
StepOutput``: it reads the shared :class:`WorkflowContext` and returns its
outputs — a JSON-safe ``detail`` summary, optionally a
:class:`~repro.core.report.ValidationReport` to merge into the workflow
verdict, and optionally parsed stores — without mutating shared state.
The engine applies outputs on its own thread only after the step finished
inside its timeout, which is what makes per-step timeouts safe: an
abandoned runner's outputs are simply discarded
(:meth:`~repro.workflows.engine.WorkflowEngine._execute`).

Built-in kinds::

    parse        load sources into named stores
    validate     run a CPL spec against a store (merges into the verdict)
    shadow       evaluate the serving validator's candidate specs (advisory)
    cross_check  evaluate a cross-store rule pack (merges into the verdict)
    report       render the merged verdict (optionally write it to a file)
    webhook      POST the workflow outcome to a URL

Custom kinds register through :func:`register_step_kind`; only kinds
declared ``spliceable`` participate in the engine's unchanged-step splice.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.policy import ValidationPolicy
from ..core.report import ValidationReport
from ..core.session import ValidationSession, resolve_driver
from ..drivers import get_driver
from ..repository.store import ConfigStore
from ..runtime import RuntimeProvider
from .model import StepResult, WorkflowError, WorkflowStep

__all__ = [
    "StepOutput",
    "WorkflowContext",
    "get_step_kind",
    "register_step_kind",
    "step_kinds",
]

#: workflow-level I/O fallback when no runtime provider was supplied
_DEFAULT_RUNTIME = RuntimeProvider()


@dataclass
class StepOutput:
    """What a step runner hands back to the engine."""

    #: JSON-safe outcome summary, recorded on the step result
    detail: dict = field(default_factory=dict)
    #: validation outcome to merge into the workflow verdict (None = the
    #: step is advisory / side-effect-only and never touches the verdict)
    report: Optional[ValidationReport] = None
    #: parsed stores to publish: ``[(store name, instance tuple), …]``
    stores: Optional[list] = None
    #: per-store flags to publish (``{"web": {"world_readable": True}}``)
    store_meta: Optional[dict] = None


class WorkflowContext:
    """Shared state one workflow run threads through its steps."""

    def __init__(
        self,
        workflow: str,
        base_dir: str = ".",
        runtime=None,
        policy: Optional[ValidationPolicy] = None,
        spec_cache=None,
        executor: Optional[str] = None,
        sources: Optional[list] = None,
        spec_path: str = "",
        spec_text: str = "",
        shadow_provider: Optional[Callable[[], str]] = None,
        post_fn: Optional[Callable] = None,
        analytics: bool = False,
    ):
        self.workflow = workflow
        self.base_dir = base_dir
        self.runtime = runtime
        self.policy = policy
        self.spec_cache = spec_cache
        self.executor = executor
        #: default source descriptors for ``parse`` steps without their own
        self.sources = [normalize_source(source) for source in sources or []]
        self.spec_path = spec_path
        self.spec_text = spec_text
        self.shadow_provider = shadow_provider
        #: injectable ``post(url, payload, timeout) -> int`` for webhooks
        self.post_fn = post_fn
        self.analytics = analytics
        #: named configuration stores built by ``parse`` steps
        self.stores: dict[str, ConfigStore] = {}
        #: per-store flags rule packs can condition on (world_readable, …)
        self.store_meta: dict[str, dict] = {}
        #: the merged validation verdict, in step-execution order
        self.merged = ValidationReport()
        #: results of the steps executed so far, in order
        self.results: list[StepResult] = []

    def peek_store(self, name: str = "default") -> ConfigStore:
        """The named store, or an empty placeholder (never registered)."""
        store = self.stores.get(name)
        return store if store is not None else ConfigStore()

    def primary_store(self) -> Optional[ConfigStore]:
        """The store a single-store consumer should see (lifecycle etc.)."""
        if "default" in self.stores:
            return self.stores["default"]
        for name in sorted(self.stores):
            return self.stores[name]
        return None

    def read_text(self, path: str) -> str:
        if not os.path.isabs(path):
            path = os.path.join(self.base_dir, path)
        runtime = self.runtime if self.runtime is not None else _DEFAULT_RUNTIME
        return runtime.read_bytes(path).decode("utf-8")

    def probe(self, path: str):
        if not os.path.isabs(path):
            path = os.path.join(self.base_dir, path)
        runtime = self.runtime if self.runtime is not None else _DEFAULT_RUNTIME
        return runtime.probe(path)

    def resolve_spec(self, step: WorkflowStep) -> str:
        """Spec text for a ``validate`` step: step options win, then the
        workflow-level spec."""
        options = step.options
        if options.get("spec_text"):
            return options["spec_text"]
        if options.get("spec"):
            return self.read_text(options["spec"])
        if self.spec_text:
            return self.spec_text
        if self.spec_path:
            return self.read_text(self.spec_path)
        raise WorkflowError(
            f"step {step.name!r} has no spec: set 'spec' (path) or "
            f"'spec_text', or run the workflow with one"
        )

    def step_payload(self) -> list:
        return [result.to_dict() for result in self.results]


def normalize_source(source) -> dict:
    """Descriptor dicts pass through; ``FMT:PATH[:SCOPE]`` strings parse."""
    if isinstance(source, dict):
        if not source.get("format"):
            raise WorkflowError(f"source needs a 'format': {source!r}")
        if "text" not in source and not source.get("path"):
            raise WorkflowError(f"source needs 'path' or inline 'text': {source!r}")
        return dict(source)
    if isinstance(source, str):
        parts = source.split(":", 2)
        if len(parts) < 2 or not parts[0] or not parts[1]:
            raise WorkflowError(
                f"source reference must look like 'FMT:PATH[:SCOPE]': {source!r}"
            )
        descriptor = {"format": parts[0], "path": parts[1]}
        if len(parts) == 3 and parts[2]:
            descriptor["scope"] = parts[2]
        return descriptor
    raise WorkflowError(f"unsupported source entry: {source!r}")


# ---------------------------------------------------------------------------
# Step-kind registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StepKind:
    name: str
    runner: Callable
    #: True = deterministic given its digestible inputs, so unchanged runs
    #: may be spliced from the previous execution
    spliceable: bool = False


_STEP_KINDS: dict[str, StepKind] = {}


def register_step_kind(
    name: str, runner: Callable, spliceable: bool = False
) -> StepKind:
    """Register (or replace) a step implementation under ``name``."""
    if not name:
        raise WorkflowError("step kind needs a name")
    kind = StepKind(name, runner, spliceable)
    _STEP_KINDS[name] = kind
    return kind


def get_step_kind(name: str) -> StepKind:
    try:
        return _STEP_KINDS[name]
    except KeyError:
        raise WorkflowError(
            f"unknown step kind {name!r}; known kinds: "
            f"{', '.join(sorted(_STEP_KINDS))}"
        ) from None


def step_kinds() -> list[str]:
    return sorted(_STEP_KINDS)


# ---------------------------------------------------------------------------
# Built-in steps
# ---------------------------------------------------------------------------


def _parse_source(ctx: WorkflowContext, descriptor: dict) -> tuple[str, tuple]:
    """One source descriptor → (store name, parsed instance tuple)."""
    fmt = descriptor.get("format", "")
    scope = descriptor.get("scope", "")
    if "text" in descriptor:
        instances = get_driver(fmt).parse(
            descriptor["text"],
            source=descriptor.get("source", "<inline>"),
            scope=scope,
        )
    else:
        driver_name = resolve_driver(fmt, descriptor["path"])
        driver = get_driver(driver_name)
        if driver_name == "rest":
            instances = driver.parse(
                descriptor["path"], source=descriptor["path"], scope=scope
            )
        else:
            path = descriptor["path"]
            if not os.path.isabs(path):
                path = os.path.join(ctx.base_dir, path)
            runtime = ctx.runtime if ctx.runtime is not None else _DEFAULT_RUNTIME
            raw = runtime.read_bytes(path)
            instances = driver.parse_bytes(raw, source=path, scope=scope)
    return descriptor.get("store", "default"), tuple(instances)


def run_parse(ctx: WorkflowContext, step: WorkflowStep) -> StepOutput:
    raw_sources = step.options.get("sources")
    if raw_sources is None:
        descriptors = list(ctx.sources)
    else:
        descriptors = [normalize_source(source) for source in raw_sources]
    stores: list[tuple[str, tuple]] = []
    counts: dict[str, int] = {}
    meta: dict[str, dict] = {}
    for descriptor in descriptors:
        name, instances = _parse_source(ctx, descriptor)
        stores.append((name, instances))
        counts[name] = counts.get(name, 0) + len(instances)
        if descriptor.get("world_readable"):
            meta.setdefault(name, {})["world_readable"] = True
    return StepOutput(
        detail={
            "sources": len(descriptors),
            "instances": sum(counts.values()),
            "stores": {name: counts[name] for name in sorted(counts)},
        },
        stores=stores,
        store_meta=meta or None,
    )


def run_validate(ctx: WorkflowContext, step: WorkflowStep) -> StepOutput:
    spec_text = ctx.resolve_spec(step)
    executor = step.options.get("executor", ctx.executor)
    if executor in ("", "none"):
        executor = None
    session = ValidationSession(
        store=ctx.peek_store(step.options.get("store", "default")),
        runtime=ctx.runtime,
        policy=ctx.policy,
        base_dir=ctx.base_dir,
        executor=executor,
        spec_cache=ctx.spec_cache,
        analytics=ctx.analytics,
    )
    report = session.validate(spec_text)
    return StepOutput(
        detail={
            "specs_evaluated": report.specs_evaluated,
            "violations": len(report.violations),
            "instances_checked": report.instances_checked,
            "passed": report.passed,
        },
        report=report,
    )


def run_shadow(ctx: WorkflowContext, step: WorkflowStep) -> StepOutput:
    """Advisory lane: candidate specs never touch the workflow verdict."""
    if ctx.shadow_provider is None:
        return StepOutput(detail={"enabled": False})
    text = ctx.shadow_provider()
    if not text:
        return StepOutput(detail={"enabled": True, "specs": 0, "clean": True})
    # optimize=False matches the lifecycle's shadow lane, so the composed
    # program shares one spec-cache entry with it
    lane = ValidationSession(
        store=ctx.peek_store(step.options.get("store", "default")),
        runtime=ctx.runtime,
        spec_cache=ctx.spec_cache,
        optimize=False,
    )
    shadow_report = lane.validate(text)
    return StepOutput(
        detail={
            "enabled": True,
            "specs": shadow_report.specs_evaluated,
            "violations": len(shadow_report.violations),
            "instances_checked": shadow_report.instances_checked,
            "clean": not shadow_report.violations,
        }
    )


def run_cross_check(ctx: WorkflowContext, step: WorkflowStep) -> StepOutput:
    from .crosscheck import CrossStoreChecker
    from .rulepack import load_rulepack, parse_rulepack

    options = step.options
    if options.get("rulepack"):
        path = options["rulepack"]
        if not os.path.isabs(path):
            path = os.path.join(ctx.base_dir, path)
        pack = load_rulepack(path)
    elif options.get("rules") is not None:
        pack = parse_rulepack(
            {"rulepack": {"name": options.get("pack", step.name)},
             "rules": options["rules"]}
        )
    else:
        raise WorkflowError(
            f"step {step.name!r} needs a 'rulepack' path or inline 'rules'"
        )
    names = options.get("stores")
    if names is None:
        names = sorted(ctx.stores)
    stores = {name: ctx.peek_store(name) for name in names}
    checker = CrossStoreChecker(
        pack, stores, store_meta=ctx.store_meta, spec_cache=ctx.spec_cache
    )
    report = checker.check()
    return StepOutput(
        detail={
            "rulepack": pack.name,
            "rules": len(pack.rules),
            "stores": sorted(stores),
            "violations": len(report.violations),
            "passed": report.passed,
        },
        report=report,
    )


def run_report(ctx: WorkflowContext, step: WorkflowStep) -> StepOutput:
    merged = ctx.merged
    digest = hashlib.sha256(merged.fingerprint().encode("utf-8")).hexdigest()
    detail = {
        "passed": merged.passed,
        "violations": len(merged.violations),
        "specs_evaluated": merged.specs_evaluated,
        "instances_checked": merged.instances_checked,
        "fingerprint": digest,
    }
    out_path = step.options.get("out")
    if out_path:
        if not os.path.isabs(out_path):
            out_path = os.path.join(ctx.base_dir, out_path)
        payload = {
            "workflow": ctx.workflow,
            "verdict": "admit" if merged.passed else "reject",
            "fingerprint": digest,
            "steps": ctx.step_payload(),
            "report": merged.to_dict(),
        }
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        detail["out"] = out_path
    return StepOutput(detail=detail)


def _default_post(url: str, payload: dict, timeout: float) -> int:
    import urllib.request

    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status


def run_webhook(ctx: WorkflowContext, step: WorkflowStep) -> StepOutput:
    url = step.options.get("url", "")
    if not url:
        raise WorkflowError(f"step {step.name!r} needs a 'url'")
    payload = {
        "workflow": ctx.workflow,
        "passed": ctx.merged.passed,
        "violations": len(ctx.merged.violations),
        "steps": ctx.step_payload(),
    }
    post = ctx.post_fn if ctx.post_fn is not None else _default_post
    status = post(url, payload, float(step.options.get("request_timeout", 5.0)))
    if not (200 <= int(status) < 300):
        raise WorkflowError(f"webhook {url} answered HTTP {status}")
    return StepOutput(detail={"url": url, "http_status": int(status)})


register_step_kind("parse", run_parse, spliceable=True)
register_step_kind("validate", run_validate, spliceable=True)
register_step_kind("shadow", run_shadow)
register_step_kind("cross_check", run_cross_check, spliceable=True)
register_step_kind("report", run_report)
register_step_kind("webhook", run_webhook)
