"""Workflow execution: gates, timeouts, splicing, spans and metrics.

The :class:`WorkflowEngine` runs one :class:`~repro.workflows.model.Workflow`
to a :class:`~repro.workflows.model.WorkflowReport`.  Steps execute in
declaration order (the workflow's deterministic topological order); before
each step the engine

1. **cascades skips** — a step whose dependency was skipped, failed or
   timed out is skipped itself, unless its gate is ``always``;
2. **evaluates the gate** against the violations accumulated so far;
3. **tries the splice cache** — a spliceable step whose input digest
   (options + upstream digests + source/spec probe tokens) matches the
   previous run reuses that run's outputs without re-executing, the
   workflow-level analogue of the delta scanner's unit-report splice;
4. **supervises the run** — a step with a ``timeout`` executes on a
   runner thread that is *abandoned* when the budget expires (the same
   abandonment contract as the job worker: Python cannot safely interrupt
   arbitrary evaluation).  An abandoned or crashed step records evidence
   in the merged report's health block — the run completes ``DEGRADED``,
   never crashes — and its outputs are discarded, which is safe because
   step runners return outputs instead of mutating shared state
   (:mod:`repro.workflows.steps`).

Every run opens a ``workflow[name]`` span with one ``step[name]`` child
per step — including skipped steps, whose span carries
``status=skipped`` — and feeds the ``confvalley_workflow_*`` metric
family.  Both observe only: the merged report, and hence its
``fingerprint()``, is identical with observability on or off.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Callable, Optional

from ..observability import get_metrics, get_tracer
from ..repository.store import ConfigStore
from ..runtime import clock as _clock
from .model import (
    Gate,
    StepResult,
    StepStatus,
    Workflow,
    WorkflowReport,
    WorkflowStep,
)
from .steps import StepOutput, WorkflowContext, get_step_kind, normalize_source

__all__ = ["WorkflowEngine", "SUPERVISE_TICK"]

#: how often a supervised step re-checks its timeout budget (seconds)
SUPERVISE_TICK = 0.02


class WorkflowEngine:
    """Runs a workflow repeatedly, splicing unchanged steps between runs."""

    def __init__(
        self,
        workflow: Workflow,
        base_dir: str = ".",
        runtime=None,
        policy=None,
        spec_cache=None,
        executor: Optional[str] = None,
        sources: Optional[list] = None,
        spec_path: str = "",
        spec_text: str = "",
        shadow_provider: Optional[Callable[[], str]] = None,
        post_fn: Optional[Callable] = None,
        splice: bool = True,
        analytics: bool = False,
    ):
        self.workflow = workflow
        self.base_dir = base_dir
        self.runtime = runtime
        self.policy = policy
        self.spec_cache = spec_cache
        self.executor = executor
        self.sources = [normalize_source(source) for source in sources or []]
        self.spec_path = spec_path
        self.spec_text = spec_text
        self.shadow_provider = shadow_provider
        self.post_fn = post_fn
        #: False disables the unchanged-step splice (every run is fresh)
        self.splice = splice
        self.analytics = analytics
        # kinds resolve eagerly so an unknown kind fails at build time,
        # not five steps into a run
        for step in workflow:
            get_step_kind(step.kind)
        #: splice cache: step name → {digest, detail, output}
        self._retained: dict[str, dict] = {}
        #: the most recent run's report (service stats, ``GET /stats``)
        self.last: Optional[WorkflowReport] = None
        self.runs = 0
        self.steps_run = 0
        self.steps_spliced = 0
        self.gate_skips = 0

    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Drop the splice cache; the next run executes every step."""
        self._retained.clear()

    def stats(self) -> dict:
        """JSON-safe lifetime counters plus the last run's step statuses."""
        return {
            "workflow": self.workflow.name,
            "steps": len(self.workflow),
            "runs": self.runs,
            "steps_run": self.steps_run,
            "steps_spliced": self.steps_spliced,
            "gate_skips": self.gate_skips,
            "last": (
                {
                    "passed": self.last.passed,
                    "statuses": self.last.statuses(),
                    "elapsed_seconds": round(self.last.elapsed_seconds, 6),
                }
                if self.last is not None
                else None
            ),
        }

    # ------------------------------------------------------------------

    def run(self, progress: Optional[Callable] = None, tracer=None) -> WorkflowReport:
        """Execute the workflow once.

        ``progress`` (optional) receives the per-step status list after
        every step settles — the live view job records publish while a
        workflow job runs.  ``tracer`` overrides the ambient tracer (job
        execution passes its distributed-trace continuation).
        """
        tracer = tracer if tracer is not None else get_tracer()
        metrics = get_metrics()
        started = _clock.now()
        ctx = WorkflowContext(
            workflow=self.workflow.name,
            base_dir=self.base_dir,
            runtime=self.runtime,
            policy=self.policy,
            spec_cache=self.spec_cache,
            executor=self.executor,
            sources=self.sources,
            spec_path=self.spec_path,
            spec_text=self.spec_text,
            shadow_provider=self.shadow_provider,
            post_fn=self.post_fn,
            analytics=self.analytics,
        )
        outcomes: dict[str, StepResult] = {}
        digests: dict[str, Optional[str]] = {}
        with tracer.span(
            f"workflow[{self.workflow.name}]",
            workflow=self.workflow.name,
            steps=len(self.workflow),
        ):
            for step in self.workflow:
                result = StepResult(
                    name=step.name, kind=step.kind, gate=step.gate.render()
                )
                with tracer.span(
                    f"step[{step.name}]", kind=step.kind, gate=result.gate
                ) as span:
                    self._settle(ctx, step, result, outcomes, digests)
                    span.set(
                        status=result.status,
                        spliced=result.spliced,
                        violations=len(ctx.merged.violations),
                    )
                outcomes[step.name] = result
                ctx.results.append(result)
                self._observe_step(metrics, step, result)
                if progress is not None:
                    progress(ctx.step_payload())
        report = ctx.merged
        report.health.finalize()
        outcome = WorkflowReport(
            workflow=self.workflow.name,
            steps=list(ctx.results),
            report=report,
            elapsed_seconds=_clock.now() - started,
        )
        self.runs += 1
        self.last = outcome
        if metrics.enabled:
            metrics.counter(
                "confvalley_workflow_runs_total",
                "Workflow runs, by workflow and outcome.",
            ).inc(
                workflow=self.workflow.name,
                outcome="pass" if outcome.passed else "fail",
            )
        # expose the primary store for consumers that want the scanned
        # data (service coverage analytics, lifecycle)
        outcome.store = ctx.primary_store()
        return outcome

    # ------------------------------------------------------------------

    def _settle(
        self,
        ctx: WorkflowContext,
        step: WorkflowStep,
        result: StepResult,
        outcomes: dict,
        digests: dict,
    ) -> None:
        """Decide skip/splice/run for one step and record its outcome."""
        blocked = [
            name
            for name in step.after
            if outcomes[name].status in StepStatus.BLOCKING
        ]
        if blocked and step.gate.kind != Gate.ALWAYS:
            upstream = outcomes[blocked[0]]
            result.status = StepStatus.SKIPPED
            result.reason = f"upstream step {upstream.name!r} {upstream.status}"
            return
        if not step.gate.should_run(ctx.merged.violations):
            result.status = StepStatus.SKIPPED
            result.reason = step.gate.skip_reason(ctx.merged.violations)
            self.gate_skips += 1
            return
        digest = self._digest(ctx, step, digests) if self.splice else None
        digests[step.name] = digest
        retained = self._retained.get(step.name)
        if (
            digest is not None
            and retained is not None
            and retained["digest"] == digest
        ):
            splice_started = _clock.now()
            self._apply(ctx, retained["output"])
            result.status = StepStatus.OK
            result.spliced = True
            result.detail = dict(retained["detail"])
            result.seconds = _clock.now() - splice_started
            self.steps_spliced += 1
            return
        output = self._execute(ctx, step, result)
        if result.status == StepStatus.OK and digest is not None:
            self._retained[step.name] = {
                "digest": digest,
                "detail": dict(result.detail),
                "output": output,
            }
        elif step.name in self._retained:
            # never splice forward from a failed/timed-out attempt
            del self._retained[step.name]

    def _execute(
        self, ctx: WorkflowContext, step: WorkflowStep, result: StepResult
    ) -> Optional[StepOutput]:
        """Run one step, supervised by its timeout budget."""
        kind = get_step_kind(step.kind)
        box: dict = {}

        def run():
            try:
                box["output"] = kind.runner(ctx, step)
            except Exception as exc:
                box["error"] = f"{type(exc).__name__}: {exc}"

        started = _clock.now()
        if step.timeout is None:
            run()
        else:
            runner = threading.Thread(
                target=run,
                name=f"confvalley-step-{self.workflow.name}-{step.name}",
                daemon=True,
            )
            runner.start()
            while runner.is_alive():
                runner.join(SUPERVISE_TICK)
                if not runner.is_alive():
                    break
                if _clock.now() - started > step.timeout:
                    message = (
                        f"step exceeded its {step.timeout:g}s timeout "
                        f"and was abandoned"
                    )
                    result.status = StepStatus.TIMEOUT
                    result.reason = message
                    result.seconds = _clock.now() - started
                    self._record_health(ctx, step, "timeout", message)
                    self.steps_run += 1
                    return None
        result.seconds = _clock.now() - started
        self.steps_run += 1
        if "error" in box:
            result.status = StepStatus.FAILED
            result.reason = box["error"]
            self._record_health(ctx, step, "error", box["error"])
            return None
        output: StepOutput = box["output"]
        self._apply(ctx, output)
        result.status = StepStatus.OK
        result.detail = dict(output.detail)
        return output

    @staticmethod
    def _apply(ctx: WorkflowContext, output: StepOutput) -> None:
        """Publish a finished step's outputs (engine thread only)."""
        if output.stores:
            for name, instances in output.stores:
                store = ctx.stores.get(name)
                if store is None:
                    store = ctx.stores[name] = ConfigStore()
                store.add_all(instances)
        if output.store_meta:
            for name, flags in output.store_meta.items():
                ctx.store_meta.setdefault(name, {}).update(flags)
        if output.report is not None:
            ctx.merged.merge(output.report)

    def _record_health(
        self, ctx: WorkflowContext, step: WorkflowStep, kind: str, message: str
    ) -> None:
        """Step faults are degraded operation, not scan findings — they
        land in the health block, which the fingerprint excludes."""
        ctx.merged.health.shard_failures.append(
            {
                "kind": "workflow-step",
                "step": step.name,
                "failure": kind,
                "error": message,
                "resolution": "abandoned",
            }
        )

    # ------------------------------------------------------------------
    # Splice digests
    # ------------------------------------------------------------------

    def _digest(
        self, ctx: WorkflowContext, step: WorkflowStep, digests: dict
    ) -> Optional[str]:
        """Merkle-style input digest, or None when the step must run.

        A step's digest covers its kind, its options, the digests of its
        dependencies, and the probe tokens of every external input it
        reads (source files, the spec file, the rule-pack file).  Any
        undigestible input — a REST source, an unreadable file, a
        non-spliceable dependency — disqualifies the step for this run.
        """
        kind = get_step_kind(step.kind)
        if not kind.spliceable:
            return None
        entries = [step.kind, json.dumps(step.options, sort_keys=True, default=str)]
        for dep in step.after:
            upstream = digests.get(dep)
            if upstream is None:
                return None
            entries.append(f"{dep}={upstream}")
        try:
            if step.kind == "parse":
                raw_sources = step.options.get("sources")
                descriptors = (
                    list(ctx.sources)
                    if raw_sources is None
                    else [normalize_source(source) for source in raw_sources]
                )
                for descriptor in descriptors:
                    if "text" in descriptor:
                        entries.append("text:" + descriptor["text"])
                        continue
                    from ..core.session import resolve_driver

                    if resolve_driver(
                        descriptor.get("format", ""), descriptor["path"]
                    ) == "rest":
                        return None  # network sources reparse every run
                    token = ctx.probe(descriptor["path"])
                    if token is None:
                        return None
                    entries.append(f"{descriptor['path']}:{token}")
            elif step.kind == "validate":
                entries.append("spec:" + ctx.resolve_spec(step))
            elif step.kind == "cross_check":
                if step.options.get("rulepack"):
                    token = ctx.probe(step.options["rulepack"])
                    if token is None:
                        return None
                    entries.append(f"rulepack:{token}")
            # custom spliceable kinds digest options + dependencies only —
            # registering spliceable=True asserts that is the whole input
        except Exception:
            return None
        hasher = hashlib.sha256()
        for entry in entries:
            hasher.update(entry.encode("utf-8", "replace"))
            hasher.update(b"\x00")
        return hasher.hexdigest()

    # ------------------------------------------------------------------

    def _observe_step(self, metrics, step: WorkflowStep, result: StepResult) -> None:
        if not metrics.enabled:
            return
        metrics.counter(
            "confvalley_workflow_steps_total",
            "Workflow steps settled, by kind and status.",
        ).inc(kind=step.kind, status=result.status)
        if result.status == StepStatus.SKIPPED:
            metrics.counter(
                "confvalley_workflow_gate_skips_total",
                "Steps skipped by their gate or a blocked dependency.",
            ).inc(gate=result.gate)
        elif result.spliced:
            metrics.counter(
                "confvalley_workflow_steps_spliced_total",
                "Steps spliced unchanged from the previous run.",
            ).inc(kind=step.kind)
        else:
            metrics.histogram(
                "confvalley_workflow_step_seconds",
                "Per-step wall clock for executed workflow steps.",
            ).observe(result.seconds, kind=step.kind)
