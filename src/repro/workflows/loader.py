"""Workflow-file loading: YAML or TOML documents → :class:`Workflow`.

The on-disk schema mirrors :meth:`Workflow.from_dict`::

    workflow:
      name: nightly-security
    steps:
      - name: parse
        sources:
          - {format: json, location: app.json}
          - {format: env, location: prod.env, store: env}
      - name: validate
        spec: specs/app.cpl
      - name: cross_check
        rulepack: examples/rulepacks/security.yaml
      - name: report
        gate: always
      - name: webhook
        gate: on_violation:error
        url: https://hooks.example.com/confvalley

TOML spells the same structure with ``[workflow]`` and ``[[steps]]``
tables.  The format is chosen by extension (``.toml`` vs everything
else = YAML), matching the driver registry's conventions.
"""

from __future__ import annotations

import os

from .model import Workflow, WorkflowError

__all__ = ["load_workflow", "parse_workflow"]


def parse_workflow(data: dict) -> Workflow:
    """Validate an already-parsed workflow document."""
    return Workflow.from_dict(data)


def load_workflow(path: str) -> Workflow:
    """Load and validate a workflow definition from a YAML or TOML file."""
    extension = os.path.splitext(path)[1].lower()
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise WorkflowError(f"cannot read workflow file {path}: {exc}") from exc
    if extension == ".toml":
        import tomllib

        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            raise WorkflowError(f"malformed TOML workflow {path}: {exc}") from exc
    else:
        import yaml

        try:
            data = yaml.safe_load(raw)
        except yaml.YAMLError as exc:
            raise WorkflowError(f"malformed YAML workflow {path}: {exc}") from exc
    if data is None:
        raise WorkflowError(f"workflow file {path} is empty")
    return Workflow.from_dict(data)
