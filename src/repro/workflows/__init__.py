"""Composable validation workflows.

A workflow chains named steps — ``parse``, ``validate``, ``shadow``,
``cross_check``, ``report``, ``webhook`` or custom registered kinds —
into an ordered DAG with per-step **gates** (run always / on pass /
on violation, optionally severity-thresholded) and per-step timeouts.
The engine merges every step's findings into one deterministic
:class:`WorkflowReport` whose pure-validation fingerprint matches an
equivalent single-pass scan byte for byte.
"""

from .crosscheck import CrossStoreChecker, extract_port
from .engine import WorkflowEngine
from .loader import load_workflow, parse_workflow
from .model import (
    Gate,
    StepResult,
    StepStatus,
    Workflow,
    WorkflowError,
    WorkflowReport,
    WorkflowStep,
)
from .rulepack import Rule, RulePack, load_rulepack, parse_rulepack
from .steps import (
    StepOutput,
    WorkflowContext,
    get_step_kind,
    register_step_kind,
    step_kinds,
)

__all__ = [
    "CrossStoreChecker",
    "Gate",
    "Rule",
    "RulePack",
    "StepOutput",
    "StepResult",
    "StepStatus",
    "Workflow",
    "WorkflowContext",
    "WorkflowEngine",
    "WorkflowError",
    "WorkflowReport",
    "WorkflowStep",
    "extract_port",
    "get_step_kind",
    "load_rulepack",
    "load_workflow",
    "parse_rulepack",
    "parse_workflow",
    "register_step_kind",
    "step_kinds",
]
