"""Workflow model: steps, gates, and the merged workflow report.

A :class:`Workflow` is an *ordered DAG* of named steps.  Steps are declared
in execution order and a step's ``after`` edges may only reference steps
declared before it — which makes cycles unrepresentable and gives every
run one deterministic execution order (the declaration order), no matter
which executor evaluates the validation inside a step.

Each step carries a **gate** deciding whether it runs once its turn comes:

* ``always`` — run regardless of upstream outcomes (report/webhook steps);
* ``on_pass`` — run only when no gating violations have accumulated and no
  upstream dependency was skipped or failed;
* ``on_violation`` — run only when gating violations *have* accumulated
  (notification steps);
* either of the last two may carry a severity threshold —
  ``on_violation:error`` counts only violations at/above ``error``.

The merged :class:`WorkflowReport` is the workflow-level analogue of a
:class:`~repro.core.report.ValidationReport`: per-step results in execution
order plus one merged validation report.  Its :meth:`~WorkflowReport.fingerprint`
delegates to the merged report, so a pure-validation workflow
(parse → validate → report) fingerprints byte-identically to a direct
single-pass scan of the same spec and sources — the same determinism anchor
the parallel engine and the delta scanner are held to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.report import Severity, ValidationReport
from ..errors import ConfValleyError

__all__ = [
    "Gate",
    "StepResult",
    "StepStatus",
    "Workflow",
    "WorkflowError",
    "WorkflowReport",
    "WorkflowStep",
]


class WorkflowError(ConfValleyError):
    """A workflow definition is malformed (bad gate, unknown step, cycle)."""


class StepStatus:
    """Terminal per-step statuses (plus the live PENDING/RUNNING states)."""

    PENDING = "pending"
    RUNNING = "running"
    OK = "ok"
    FAILED = "failed"
    TIMEOUT = "timeout"
    SKIPPED = "skipped"

    #: statuses that block downstream non-``always`` steps
    BLOCKING = frozenset({FAILED, TIMEOUT, SKIPPED})


@dataclass(frozen=True)
class Gate:
    """When a step runs, given the violations accumulated so far."""

    ALWAYS = "always"
    ON_PASS = "on_pass"
    ON_VIOLATION = "on_violation"
    KINDS = (ALWAYS, ON_PASS, ON_VIOLATION)

    kind: str = ALWAYS
    #: minimum severity a violation needs to count toward this gate
    #: (None = every violation counts)
    severity: Optional[str] = None

    @classmethod
    def parse(cls, text: str) -> "Gate":
        """``"on_violation:error"`` → ``Gate("on_violation", "error")``."""
        raw = (text or cls.ALWAYS).strip().lower()
        kind, __, severity = raw.partition(":")
        if kind not in cls.KINDS:
            raise WorkflowError(
                f"unknown gate {kind!r}; expected one of {', '.join(cls.KINDS)}"
            )
        if severity:
            if kind == cls.ALWAYS:
                raise WorkflowError("an 'always' gate cannot carry a severity")
            if severity not in Severity.ORDER:
                raise WorkflowError(
                    f"unknown gate severity {severity!r}; expected one of "
                    f"{', '.join(sorted(Severity.ORDER, key=Severity.ORDER.get))}"
                )
        return cls(kind, severity or None)

    def render(self) -> str:
        return f"{self.kind}:{self.severity}" if self.severity else self.kind

    def gating_violations(self, violations: Iterable) -> int:
        """How many accumulated violations this gate counts."""
        if self.severity is None:
            return sum(1 for __ in violations)
        floor = Severity.ORDER[self.severity]
        return sum(
            1
            for violation in violations
            if Severity.ORDER.get(violation.severity, 0) >= floor
        )

    def should_run(self, violations: Iterable) -> bool:
        if self.kind == self.ALWAYS:
            return True
        gating = self.gating_violations(violations)
        return gating == 0 if self.kind == self.ON_PASS else gating > 0

    def skip_reason(self, violations: Iterable) -> str:
        threshold = f" at/above {self.severity}" if self.severity else ""
        if self.kind == self.ON_PASS:
            return (
                f"gate on_pass: {self.gating_violations(violations)} "
                f"violation(s){threshold} accumulated"
            )
        return f"gate on_violation: no violations{threshold} accumulated"


@dataclass(frozen=True)
class WorkflowStep:
    """One named step of a workflow."""

    name: str
    #: step implementation: a built-in kind (parse/validate/shadow/
    #: cross_check/report/webhook) or a custom registered kind
    kind: str
    gate: Gate = field(default_factory=Gate)
    #: upstream dependencies — names of *earlier* steps.  The loader's
    #: default is the immediately preceding step (a linear pipeline).
    after: tuple = ()
    #: wall-clock budget for this step in seconds (None = unbounded);
    #: an expired step is abandoned and recorded ``timeout``, the
    #: workflow continues and the merged health degrades
    timeout: Optional[float] = None
    #: step-kind-specific configuration (sources, spec, rulepack, url, …)
    options: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "kind": self.kind,
            "gate": self.gate.render(),
            "after": list(self.after),
            "timeout": self.timeout,
        }
        payload.update(self.options)
        return payload

    #: step-dict keys that are structural, not kind-specific options
    RESERVED = frozenset({"name", "kind", "gate", "after", "timeout"})

    @classmethod
    def from_dict(cls, data: dict, previous: Optional[str]) -> "WorkflowStep":
        if not isinstance(data, dict):
            raise WorkflowError(f"each step must be a mapping, got {data!r}")
        name = data.get("name") or data.get("kind")
        if not name or not isinstance(name, str):
            raise WorkflowError(f"step needs a 'name' (or 'kind'): {data!r}")
        kind = data.get("kind") or name
        after = data.get("after")
        if after is None:
            after = (previous,) if previous else ()
        elif isinstance(after, str):
            after = (after,)
        elif isinstance(after, (list, tuple)):
            after = tuple(str(item) for item in after)
        else:
            raise WorkflowError(f"step {name!r}: 'after' must be a name or list")
        timeout = data.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise WorkflowError(f"step {name!r}: 'timeout' must be a number")
        options = {
            key: value for key, value in data.items() if key not in cls.RESERVED
        }
        return cls(
            name=name,
            kind=str(kind),
            gate=Gate.parse(str(data.get("gate", Gate.ALWAYS))),
            after=after,
            timeout=float(timeout) if timeout is not None else None,
            options=options,
        )


class Workflow:
    """An ordered DAG of steps, validated at construction."""

    def __init__(self, name: str, steps: Iterable[WorkflowStep]):
        self.name = name or "workflow"
        self.steps: list[WorkflowStep] = list(steps)
        if not self.steps:
            raise WorkflowError(f"workflow {self.name!r} has no steps")
        seen: set[str] = set()
        for step in self.steps:
            if step.name in seen:
                raise WorkflowError(
                    f"workflow {self.name!r}: duplicate step name {step.name!r}"
                )
            for dep in step.after:
                if dep == step.name:
                    raise WorkflowError(
                        f"workflow {self.name!r}: step {step.name!r} "
                        f"depends on itself"
                    )
                if dep not in seen:
                    # forward references would permit cycles; requiring
                    # edges to point backward keeps the DAG ordered and
                    # the execution order deterministic
                    raise WorkflowError(
                        f"workflow {self.name!r}: step {step.name!r} depends "
                        f"on {dep!r}, which is not an earlier step"
                    )
            seen.add(step.name)

    def __iter__(self):
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def step(self, name: str) -> WorkflowStep:
        for step in self.steps:
            if step.name == name:
                return step
        raise KeyError(name)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "steps": [step.to_dict() for step in self.steps],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Workflow":
        if not isinstance(data, dict):
            raise WorkflowError("workflow definition must be a mapping")
        meta = data.get("workflow", {})
        if not isinstance(meta, dict):
            raise WorkflowError("'workflow' must be a mapping")
        name = meta.get("name") or data.get("name") or "workflow"
        raw_steps = data.get("steps")
        if not isinstance(raw_steps, list) or not raw_steps:
            raise WorkflowError("workflow definition needs a 'steps' list")
        steps: list[WorkflowStep] = []
        previous: Optional[str] = None
        for raw in raw_steps:
            step = WorkflowStep.from_dict(raw, previous)
            steps.append(step)
            previous = step.name
        unknown = sorted(set(data) - {"workflow", "name", "steps"})
        if unknown:
            raise WorkflowError(
                f"unknown workflow field(s): {', '.join(unknown)}"
            )
        return cls(str(name), steps)


@dataclass
class StepResult:
    """Outcome of one step of one workflow run."""

    name: str
    kind: str
    gate: str
    status: str = StepStatus.PENDING
    #: why the step did not run (gate/upstream), or the failure message
    reason: str = ""
    seconds: float = 0.0
    #: True when this result was spliced unchanged from the previous run
    spliced: bool = False
    #: step-kind-specific outcome summary (JSON-safe)
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "gate": self.gate,
            "status": self.status,
            "reason": self.reason,
            "seconds": round(self.seconds, 6),
            "spliced": self.spliced,
            "detail": dict(self.detail),
        }


@dataclass
class WorkflowReport:
    """Merged outcome of one workflow run.

    ``report`` is the merged validation verdict — exactly the violations,
    counters and notes the run's ``validate``/``cross_check`` steps found,
    in step order.  Step timeouts and crashes land in ``report.health``
    (shard-failure records of kind ``workflow-step``), which
    :meth:`~repro.core.report.ValidationReport.fingerprint` excludes — a
    run that limped but found the same things fingerprints identically.
    """

    workflow: str
    steps: list[StepResult] = field(default_factory=list)
    report: ValidationReport = field(default_factory=ValidationReport)
    elapsed_seconds: float = 0.0
    #: the run's primary configuration store (feeds service coverage and
    #: lifecycle consumers; not serialized)
    store: Optional[object] = None

    @property
    def passed(self) -> bool:
        from ..core.report import HealthBlock

        if self.report.health.status == HealthBlock.FAILED:
            return False
        return self.report.passed

    @property
    def health(self):
        return self.report.health

    def step(self, name: str) -> StepResult:
        for result in self.steps:
            if result.name == name:
                return result
        raise KeyError(name)

    def statuses(self) -> dict:
        return {result.name: result.status for result in self.steps}

    def fingerprint(self) -> str:
        """The merged validation report's canonical fingerprint.

        Orchestration details (step timings, splices, gate skips, health)
        are excluded by construction: two runs that validated the same
        data identically compare equal even when one spliced every step
        and the other ran them all.
        """
        return self.report.fingerprint()

    def step_payload(self) -> list:
        """Per-step statuses as JSON (job records, ``GET /jobs/<id>``)."""
        return [result.to_dict() for result in self.steps]

    def to_dict(self) -> dict:
        return {
            "workflow": self.workflow,
            "passed": self.passed,
            "steps": self.step_payload(),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "report": self.report.to_dict(),
        }

    def render(self, limit: Optional[int] = None) -> str:
        lines = [f"workflow {self.workflow}:"]
        for result in self.steps:
            flags = []
            if result.spliced:
                flags.append("spliced")
            if result.reason:
                flags.append(result.reason)
            suffix = f" ({'; '.join(flags)})" if flags else ""
            lines.append(
                f"  {result.name:<16} {result.status:<8} "
                f"{result.seconds:8.3f}s{suffix}"
            )
        lines.append(self.report.render(limit=limit))
        return "\n".join(lines)
