"""Cross-store consistency checking (the ``cross_check`` step).

A single-store scan cannot see that a frontend's ``database.host`` and the
backend's actual bind address disagree, that a client references a service
nobody registered, or that a secret landed in a world-readable env file.
The :class:`CrossStoreChecker` evaluates a
:class:`~repro.workflows.rulepack.RulePack` across *named* stores:

* declarative kinds (``must_agree``, ``ref``, ``agree_port``, ``forbid``)
  run against a **merged, store-prefixed view** — every instance of store
  ``frontend`` reappears under the scope prefix ``frontend.…`` — built in
  sorted store order so violation order is deterministic;
* ``cpl`` rules get the full language against the same merged view, which
  is what makes cross-store CPL expressible at all: CPL's suffix-anchored
  domain matching means ``frontend.database.host`` addresses exactly the
  prefixed keys.

The checker emits ordinary :class:`~repro.core.report.Violation` objects
(constraint = the rule id) into a standard
:class:`~repro.core.report.ValidationReport`, so cross-store findings
merge into workflow verdicts, job results and gates like any other
violations.
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import Optional

from ..core.report import ValidationReport, Violation
from ..core.session import ValidationSession
from ..repository.keys import InstanceKey, InstanceSegment
from ..repository.model import ConfigInstance
from ..repository.store import ConfigStore
from .rulepack import Rule, RulePack

__all__ = ["CrossStoreChecker", "extract_port"]

#: ``host:port``, ``scheme://host:port/path`` or a bare port
_PORT_PATTERN = re.compile(r"(?::(\d{1,5})(?:/|$))|(?:^(\d{1,5})$)")


def extract_port(value: str) -> Optional[int]:
    """The port a value names, or None when it does not name one."""
    match = _PORT_PATTERN.search(value.strip())
    if match is None:
        return None
    port = int(match.group(1) or match.group(2))
    return port if 0 < port < 65536 else None


class CrossStoreChecker:
    """Evaluates one rule pack across named configuration stores."""

    def __init__(
        self,
        pack: RulePack,
        stores: dict[str, ConfigStore],
        store_meta: Optional[dict] = None,
        spec_cache=None,
    ):
        self.pack = pack
        self.stores = dict(stores)
        self.store_meta = dict(store_meta or {})
        self.spec_cache = spec_cache
        self._merged: Optional[ConfigStore] = None

    def merged_store(self) -> ConfigStore:
        """All stores under their name prefixes, in sorted store order."""
        if self._merged is None:
            merged = ConfigStore()
            for name in sorted(self.stores):
                prefix = (InstanceSegment(name),)
                for instance in self.stores[name].instances():
                    merged.add(
                        ConfigInstance(
                            InstanceKey(prefix + instance.key.segments),
                            instance.value,
                            instance.source,
                        )
                    )
            self._merged = merged
        return self._merged

    def check(self) -> ValidationReport:
        report = ValidationReport()
        for position, rule in enumerate(self.pack.rules, start=1):
            before = len(report.violations)
            runner = getattr(self, f"_check_{rule.kind}")
            runner(rule, position, report)
            report.specs_evaluated += 1
            if len(report.violations) > before:
                report.specs_failed += 1
        return report

    # -- shared helpers -------------------------------------------------

    def _violation(
        self, rule: Rule, position: int, key: str, value: str,
        message: str, source: str = "",
    ) -> Violation:
        return Violation(
            spec_text=f"rule {rule.id} ({rule.kind})",
            spec_line=position,
            constraint=rule.id,
            key=key,
            value=value,
            message=rule.message or message,
            severity=rule.severity,
            source=source,
        )

    def _matches(self, report: ValidationReport, *patterns) -> list:
        """Merged-store instances matched by the patterns, in pattern
        order then load order — the deterministic blame order."""
        merged = self.merged_store()
        out = []
        seen = set()
        for pattern in patterns:
            for instance in merged.query(pattern):
                if instance.key not in seen:
                    seen.add(instance.key)
                    out.append(instance)
        report.instances_checked += len(out)
        return out

    # -- rule kinds -----------------------------------------------------

    def _check_cpl(self, rule: Rule, position: int, report: ValidationReport) -> None:
        session = ValidationSession(
            store=self.merged_store(), spec_cache=self.spec_cache
        )
        sub = session.validate(rule.params["spec"])
        report.instances_checked += sub.instances_checked
        report.notes.extend(sub.notes)
        # the rule owns severity and attribution (constraint carries the
        # rule id, like every other kind); the evaluator's verdict stands
        report.extend(
            replace(violation, severity=rule.severity, constraint=rule.id)
            for violation in sub.violations
        )

    def _check_must_agree(
        self, rule: Rule, position: int, report: ValidationReport
    ) -> None:
        instances = self._matches(report, *rule.params["keys"])
        if len(instances) < 2:
            return
        reference = instances[0]
        for instance in instances[1:]:
            if instance.value != reference.value:
                report.add(
                    self._violation(
                        rule, position,
                        key=instance.key.render(),
                        value=instance.value,
                        message=(
                            f"{instance.key.render()} = {instance.value!r} "
                            f"disagrees with {reference.key.render()} = "
                            f"{reference.value!r}"
                        ),
                        source=instance.source,
                    )
                )

    def _check_ref(self, rule: Rule, position: int, report: ValidationReport) -> None:
        referenced = self._matches(report, rule.params["key"])
        targets = {
            instance.value
            for instance in self._matches(report, rule.params["target"])
        }
        for instance in referenced:
            if instance.value not in targets:
                report.add(
                    self._violation(
                        rule, position,
                        key=instance.key.render(),
                        value=instance.value,
                        message=(
                            f"{instance.key.render()} references "
                            f"{instance.value!r}, which no instance of "
                            f"{rule.params['target']!r} provides"
                        ),
                        source=instance.source,
                    )
                )

    def _check_agree_port(
        self, rule: Rule, position: int, report: ValidationReport
    ) -> None:
        instances = self._matches(report, *rule.params["keys"])
        reference = None
        for instance in instances:
            port = extract_port(instance.value)
            if port is None:
                continue  # no port embedded in this value — nothing to compare
            if reference is None:
                reference = (instance, port)
            elif port != reference[1]:
                report.add(
                    self._violation(
                        rule, position,
                        key=instance.key.render(),
                        value=instance.value,
                        message=(
                            f"{instance.key.render()} names port {port}, "
                            f"but {reference[0].key.render()} = "
                            f"{reference[0].value!r} names port {reference[1]}"
                        ),
                        source=instance.source,
                    )
                )

    def _check_forbid(self, rule: Rule, position: int, report: ValidationReport) -> None:
        params = rule.params
        name_pattern = (
            re.compile(params["name_match"], re.IGNORECASE)
            if params.get("name_match")
            else None
        )
        value_pattern = (
            re.compile(params["value_match"], re.IGNORECASE)
            if params.get("value_match")
            else None
        )
        equals = params.get("equals")
        when = params.get("when")
        for store_name in sorted(self.stores):
            if params.get("world_readable_only") and not self.store_meta.get(
                store_name, {}
            ).get("world_readable"):
                continue
            store = self.stores[store_name]
            if when is not None and not self._when_holds(store, when):
                continue
            if params.get("key"):
                candidates = store.query(params["key"])
            else:
                candidates = [
                    instance
                    for instance in store.instances()
                    if name_pattern.search(instance.key.render())
                ]
            report.instances_checked += len(candidates)
            for instance in candidates:
                if name_pattern is not None and params.get("key") and not (
                    name_pattern.search(instance.key.render())
                ):
                    continue
                if equals is not None and instance.value.lower() != str(equals).lower():
                    continue
                if value_pattern is not None and not value_pattern.search(
                    instance.value
                ):
                    continue
                rendered = f"{store_name}.{instance.key.render()}"
                report.add(
                    self._violation(
                        rule, position,
                        key=rendered,
                        value=instance.value,
                        message=f"forbidden configuration present: {rendered} "
                        f"= {instance.value!r}",
                        source=instance.source,
                    )
                )

    @staticmethod
    def _when_holds(store: ConfigStore, when: dict) -> bool:
        """A ``when`` condition: some instance of ``key`` equals ``equals``."""
        key = when.get("key", "")
        expected = str(when.get("equals", "")).lower()
        return any(
            instance.value.lower() == expected for instance in store.query(key)
        )
