"""Continuous validation service (paper §3.2, §5.1).

"[validation scenarios] require different tools such as … a validation
service that runs continuously on the configuration repository"; the batch
mode "(re)validates … continuously as configuration specifications or data
are updated."

:class:`ValidationService` watches a specification file and a set of
configuration sources by modification time.  Each :meth:`scan` call checks
for changes, revalidates when anything changed, records the run in an
in-memory history, and reports transitions (pass→fail is the page-the-
operator moment).  The service is poll-driven — the caller owns the
schedule (cron, a loop, a test) — and each scan's *evaluation* can fan out
across a thread or process pool via the ``executor`` option
(:mod:`repro.parallel`); the sharded engine merges per-shard reports back
into the exact order serial evaluation would produce, so reports, history
and pass/fail transitions stay deterministic regardless of executor.

Steady-state scans also skip recompilation: the service owns a
:class:`~repro.parallel.SpecCache`, so when only configuration *data*
changed, the spec file's parse + compiler rewrites are reused from cache
(see ``docs/PERFORMANCE.md`` for the invalidation semantics).

Services built with ``delta=True`` go one step further and skip
re-*evaluation* too: a :class:`DeltaScanner` diffs each changed source
against its last-seen snapshot, asks the spec's dependency index
(:class:`~repro.core.incremental.DependencyIndex`) for the affected
statements, re-runs only those, and splices the fresh per-unit reports
over the retained ones — producing a report whose ``fingerprint()`` is
byte-identical to a full scan's.  ``docs/INCREMENTAL.md`` documents the
selection rules, the soundness argument, and the watch-mode runbook.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from .core.incremental import DependencyIndex
from .core.policy import ValidationPolicy
from .core.report import HealthBlock, ValidationReport
from .core.session import ValidationSession, resolve_driver
from .drivers import get_driver
from .errors import DriverError
from .observability import get_logger, get_metrics, get_tracer, write_snapshot
from .observability.analytics import SpecAnalytics, merge_spec_profiles
from .parallel.cache import SpecCache, SpecCacheStats
from .parallel.engine import WorkerState, _absorb, evaluate_shard
from .parallel.shards import Shard, is_parallel_safe, select_units
from .repository.store import ConfigStore
from .repository.versioned import diff_stores
from .resilience import ResiliencePolicy, SourceSupervisor, SpecCircuitBreaker
from .runtime import RuntimeProvider
from .runtime import clock as _clock

__all__ = ["SourceSpec", "ScanResult", "DeltaScanner", "ValidationService"]

_log = get_logger("service")

#: probe fallback when the service has no runtime provider of its own
_PROBE_RUNTIME = RuntimeProvider()

#: "never probed" sentinel — distinct from None, which is a valid probe
#: token for a path that does not exist (and must register as changed on
#: the first poll so missing sources surface immediately)
_NEVER_PROBED = object()


@dataclass(frozen=True)
class SourceSpec:
    """One watched configuration source."""

    format_name: str
    path: str
    scope: str = ""


@dataclass
class ScanResult:
    """Outcome of one service scan that actually revalidated."""

    sequence: int
    report: ValidationReport
    changed_paths: list[str]
    transitioned: bool    # pass/fail status differs from the previous run
    #: the report's health block, surfaced for resilient-mode scans
    #: (None in strict mode, where any fault raises instead)
    health: Optional[HealthBlock] = None
    #: delta-scan record when this scan was spliced incrementally (None for
    #: full scans): mode ("bootstrap"/"delta"), statements selected vs
    #: skipped, splice time, and the change summary that drove selection
    delta: Optional[dict] = None
    #: lifecycle record when the service runs a
    #: :class:`~repro.lifecycle.SpecLifecycleManager` (None otherwise):
    #: shadow/enforced lane summaries, transitions this scan, re-inference
    shadow: Optional[dict] = None
    #: workflow record when this scan ran a composed workflow instead of a
    #: plain validation (None otherwise): workflow name plus per-step
    #: statuses, timings and splice flags (see repro.workflows)
    workflow: Optional[dict] = None

    @property
    def passed(self) -> bool:
        # a FAILED scan (spec unreadable, every source quarantined) never
        # counts as passing, no matter how empty its violation list is
        if self.health is not None and self.health.status == HealthBlock.FAILED:
            return False
        return self.report.passed


class DeltaScanner:
    """Incremental scan engine: re-validate only what a change can affect.

    Owned by a :class:`ValidationService` constructed with ``delta=True``.
    Between scans it retains the last validated store, the raw driver
    parse of every source, and the per-unit reports of the last scan.  A
    delta scan then:

    1. reparses only the sources whose probe token changed and rebuilds
       the store in source order — identical to the store a full scan
       would build, because ``ConfigStore.add`` never mutates the parsed
       instances it is given;
    2. diffs the rebuilt store against the retained one
       (:func:`repro.repository.versioned.diff_stores`) and asks the
       spec's :class:`~repro.core.incremental.DependencyIndex` — cached
       as an :meth:`~repro.parallel.cache.SpecCache.attachment` of the
       compiled entry — for the affected statement indices;
    3. evaluates just those units via the parallel engine's
       :func:`~repro.parallel.engine.evaluate_shard` (the same per-unit
       reports a sharded run produces) and splices them over the retained
       unit reports in original statement order, so the merged report's
       :meth:`~repro.core.report.ValidationReport.fingerprint` is
       byte-identical to a full scan's.

    :meth:`scan` returns ``None`` whenever incremental validation cannot
    be proven equivalent to a full scan — programs with ``load`` or
    ``include`` commands (compile-time side effects) and programs that
    fail :func:`~repro.parallel.shards.is_parallel_safe` (cross-statement
    ordering semantics) — and the caller runs the full path instead.
    State commits atomically at the *end* of a successful scan, so an
    exception mid-scan leaves the previous snapshot intact.
    """

    def __init__(self, service: "ValidationService"):
        self._service = service
        #: raw driver-parsed instances per source path, from the last scan
        self._raw: dict[str, tuple] = {}
        #: store and per-unit reports of the last committed delta scan
        self._store: Optional[ConfigStore] = None
        self._unit_reports: dict[int, ValidationReport] = {}
        #: identity (spec text, compiler-options fingerprint) of the
        #: compiled program the retained unit reports belong to
        self._spec_key: Optional[tuple] = None
        self.scans = 0
        self.fallbacks = 0
        self.selected_total = 0
        self.skipped_total = 0

    @property
    def store(self) -> Optional[ConfigStore]:
        """The last validated store (feeds coverage analytics)."""
        return self._store

    def reset(self) -> None:
        """Drop all retained state; the next delta scan bootstraps.

        The resilient path calls this whenever a scan takes the full
        route: retained unit reports must only ever originate from the
        service's *latest* scan, or stale health records (a spec error
        that has since recovered) would be spliced back in and diverge
        from what a full scan observes.
        """
        self._raw.clear()
        self._store = None
        self._spec_key = None
        self._unit_reports.clear()

    def stats(self) -> dict:
        """JSON-safe lifetime counters for ``stats()`` / the snapshot."""
        return {
            "scans": self.scans,
            "fallbacks": self.fallbacks,
            "statements_selected": self.selected_total,
            "statements_skipped": self.skipped_total,
        }

    # ------------------------------------------------------------------

    def scan(self, changed: list[str], guard=None):
        """One incremental scan; ``(report, info)``, or ``None`` to fall back."""
        service = self._service
        started = _clock.now()
        session = ValidationSession(
            runtime=service.runtime,
            policy=service.policy,
            base_dir=os.path.dirname(service.spec_path) or ".",
            spec_cache=service.spec_cache,
            spec_guard=guard,
            analytics=service.analytics is not None,
        )
        spec_path = service.spec_path
        if not os.path.isabs(spec_path):
            spec_path = os.path.join(session.base_dir, spec_path)
        spec_text = session.runtime.read_bytes(spec_path).decode("utf-8")
        statements = session.compile(spec_text)
        compile_hit, session._last_compile_hit = session._last_compile_hit, None
        if session.store.instance_count:
            # the program had load/include commands: compiling it loaded
            # sources as a side effect, which the splice cannot reproduce
            return None
        if not is_parallel_safe(statements, session.policy):
            return None  # cross-statement semantics require one serial run
        fingerprint = session._options_fingerprint()
        spec_key = (spec_text, fingerprint)

        changed_set = set(changed)
        new_raw: dict[str, tuple] = {}
        new_store = ConfigStore()
        for source in service.sources:
            driver_name = resolve_driver(source.format_name, source.path)
            cached = self._raw.get(source.path)
            if cached is None or driver_name == "rest" or source.path in changed_set:
                # rest sources have no probe token, so they reparse every
                # scan — exactly what the full path does
                cached = tuple(self._parse(session, driver_name, source))
            new_raw[source.path] = cached
            new_store.add_all(cached)

        lets, units = select_units(statements)
        if self._store is None or spec_key != self._spec_key:
            mode = "bootstrap"
            change = None
            selected_units = units
        else:
            mode = "delta"
            change = diff_stores(self._store, new_store)
            index = None
            if service.spec_cache is not None:
                index = service.spec_cache.attachment(
                    spec_text,
                    fingerprint,
                    "dependency_index",
                    lambda entry: DependencyIndex(list(entry)),
                )
            if index is None:  # cache miss or uncacheable-by-policy entry
                index = DependencyIndex(statements)
            affected = set(index.affected(change))
            selected_units = tuple(
                unit for unit in units if unit.index in affected
            )

        state = WorkerState(
            store=new_store,
            runtime=session.runtime,
            policy=session.policy,
            lets=lets,
            profile=session.evaluator.profile,
            analytics=session.evaluator.analytics,
            guard=guard,
        )
        tracer = get_tracer()
        with tracer.span(
            "evaluate",
            mode=mode,
            statements=len(units),
            selected=len(selected_units),
        ):
            result = evaluate_shard(state, Shard("delta", selected_units))
        splice_started = _clock.now()
        fresh = dict(result.unit_reports)
        merged: dict[int, ValidationReport] = {}
        for unit in units:
            if unit.index in fresh:
                merged[unit.index] = fresh[unit.index]
            else:
                merged[unit.index] = self._unit_reports[unit.index]
        report = ValidationReport()
        if compile_hit is not None:
            if compile_hit:
                report.cache_hits += 1
            else:
                report.cache_misses += 1
        for position in sorted(merged):
            _absorb(report, merged[position])
        splice_seconds = _clock.now() - splice_started
        report.executor = "delta"
        report.shards_run += 1
        report.elapsed_seconds = _clock.now() - started

        # atomic state commit: nothing above mutated self, so an exception
        # anywhere earlier leaves the previous snapshot intact
        self._raw = new_raw
        self._store = new_store
        self._spec_key = spec_key
        self._unit_reports = merged
        selected = len(selected_units)
        skipped = len(units) - selected
        self.scans += 1
        self.selected_total += selected
        self.skipped_total += skipped
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "confvalley_delta_statements_selected_total",
                "Statements re-evaluated by delta scans.",
            ).inc(selected)
            metrics.counter(
                "confvalley_delta_statements_skipped_total",
                "Statements spliced from the previous scan unchanged.",
            ).inc(skipped)
            metrics.histogram(
                "confvalley_delta_splice_seconds",
                "Wall-clock time merging retained and fresh unit reports.",
            ).observe(splice_seconds)
        info = {
            "mode": mode,
            "statements_total": len(units),
            "selected": selected,
            "skipped": skipped,
            "splice_seconds": round(splice_seconds, 6),
            "change": change.summary() if change is not None else None,
        }
        return report, info

    @staticmethod
    def _parse(session: ValidationSession, driver_name: str, source: "SourceSpec"):
        """Raw driver parse of one source — ``load_source`` minus the store."""
        driver = get_driver(driver_name)
        if driver_name == "rest":
            return driver.parse(source.path, source=source.path, scope=source.scope)
        path = source.path
        if not os.path.isabs(path):
            path = os.path.join(session.base_dir, path)
        raw = session.runtime.read_bytes(path)
        return driver.parse_bytes(raw, source=path, scope=source.scope)


class ValidationService:
    """Revalidates a spec file against sources whenever either changes."""

    def __init__(
        self,
        spec_path: str,
        sources: list[SourceSpec],
        runtime: Optional[RuntimeProvider] = None,
        policy: Optional[ValidationPolicy] = None,
        on_transition: Optional[Callable[[ScanResult], None]] = None,
        history_limit: int = 100,
        executor: Optional[str] = None,
        spec_cache: Optional[SpecCache] = None,
        resilience: Optional[ResiliencePolicy] = None,
        metrics_file: Optional[str] = None,
        analytics: bool = True,
        delta: bool = False,
        lifecycle=None,
        workflow=None,
    ):
        self.spec_path = spec_path
        self.sources = list(sources)
        self.runtime = runtime
        self.policy = policy
        self.on_transition = on_transition
        self.history: list[ScanResult] = []
        self.history_limit = history_limit
        #: evaluation strategy per scan: None = serial, or
        #: "auto"/"serial"/"thread"/"process" via repro.parallel
        self.executor = executor
        #: compiled-spec cache shared across scans (hits when only data changed)
        self.spec_cache = spec_cache if spec_cache is not None else SpecCache()
        #: None = strict mode (PR-1 behavior: any fault raises);
        #: a ResiliencePolicy switches scans to supervised mode — source
        #: quarantine, spec circuit breakers, shard supervision, health
        #: blocks (see repro.resilience)
        self.resilience = resilience
        if resilience is not None:
            self.source_supervisor = SourceSupervisor(resilience)
            self.breaker = SpecCircuitBreaker(
                threshold=resilience.quarantine_threshold,
                probe_interval=resilience.probe_interval,
            )
        else:
            self.source_supervisor = None
            self.breaker = None
        #: observability snapshot target: atomically rewritten after every
        #: scan that validated (see repro.observability.snapshot)
        self.metrics_file = metrics_file
        #: bounded ring of per-scan summary records (plain dicts, JSON-safe)
        #: — the queryable scan history behind `confvalley stats`
        self.scan_records: "deque[dict]" = deque(maxlen=history_limit)
        self.scans = 0
        #: last probe token per watched path (opaque change-detection
        #: tokens; the source supervisor compares them by equality only)
        self._mtimes: dict[str, object] = {}
        self._sequence = 0
        #: scan-over-scan per-spec analytics (hot specs, dead specs, drift);
        #: None turns per-statement attribution off entirely, and
        #: report fingerprints are byte-identical either way
        self.analytics: Optional[SpecAnalytics] = (
            SpecAnalytics() if analytics else None
        )
        #: guards the published trace/coverage state: the scan loop is the
        #: only writer, endpoint readers copy under the lock — so a reader
        #: never blocks a scan for longer than a dict swap
        self._obs_lock = threading.Lock()
        self._last_trace: Optional[dict] = None
        #: coverage summary of the last scan, cached on
        #: (spec text, instance count) so steady-state scans skip reanalysis
        self._coverage: Optional[dict] = None
        self._coverage_key: Optional[tuple] = None
        #: live operator endpoint (started via start_http / CLI --http)
        self._http = None
        #: attached asynchronous job service (repro.jobs) — enables the
        #: POST /jobs submission API on the operator endpoint and the
        #: "jobs" block in stats(); see attach_jobs()
        self.jobs = None
        #: incremental delta-validation engine (None = every scan is a full
        #: scan); selection rules and the full-scan equivalence argument
        #: live in docs/INCREMENTAL.md
        self._delta: Optional[DeltaScanner] = DeltaScanner(self) if delta else None
        #: inferred-spec lifecycle manager (repro.lifecycle): shadow lane +
        #: drift-driven promotion, run against every scan's store.  Shares
        #: this service's compiled-spec cache so lane programs compile once.
        self.lifecycle = lifecycle
        if lifecycle is not None and lifecycle.spec_cache is None:
            lifecycle.spec_cache = self.spec_cache
        #: composed validation workflow (repro.workflows): when set, every
        #: scan runs the workflow — parse/validate/cross_check/… steps with
        #: gates — instead of the plain load-and-validate pipeline.  Accepts
        #: a Workflow object or the path to a YAML/TOML definition; a path
        #: is watched like any source, and edits rebuild the engine.
        self.workflow_path: Optional[str] = None
        self.workflow_engine = None
        if workflow is not None:
            self._build_workflow_engine(workflow)

    def _build_workflow_engine(self, workflow) -> None:
        from .workflows import WorkflowEngine, load_workflow

        if isinstance(workflow, str):
            self.workflow_path = workflow
            workflow = load_workflow(workflow)
        base_dir = (
            os.path.dirname(self.workflow_path)
            if self.workflow_path
            else os.path.dirname(self.spec_path)
        ) or "."
        self.workflow_engine = WorkflowEngine(
            workflow,
            base_dir=base_dir,
            runtime=self.runtime,
            policy=self.policy,
            spec_cache=self.spec_cache,
            executor=self.executor,
            sources=[
                {
                    "format": source.format_name,
                    "path": source.path,
                    "scope": source.scope,
                }
                for source in self.sources
            ],
            spec_path=self.spec_path,
            shadow_provider=(
                self.lifecycle.shadow_cpl if self.lifecycle is not None else None
            ),
            analytics=self.analytics is not None,
        )

    # ------------------------------------------------------------------

    def watched_paths(self) -> list[str]:
        paths = [self.spec_path] + [source.path for source in self.sources]
        if self.workflow_path:
            paths.append(self.workflow_path)
        return paths

    def _changed_paths(self) -> list[str]:
        """Watched paths whose probe token changed since the last poll.

        The token is :meth:`RuntimeProvider.probe`'s ``(mtime_ns, size,
        content digest)`` triple, so rewrites that preserve the mtime —
        same-second writes, ``cp -p``, archive extraction — are still
        detected; the old mtime-only comparison silently missed them.
        A missing file probes as ``None``, which is itself a valid token:
        deletion registers as a change, steady absence does not.
        """
        runtime = self.runtime if self.runtime is not None else _PROBE_RUNTIME
        changed = []
        for path in self.watched_paths():
            token = runtime.probe(path)
            if self._mtimes.get(path, _NEVER_PROBED) != token:
                self._mtimes[path] = token
                changed.append(path)
        return changed

    # ------------------------------------------------------------------

    def scan(self, force: bool = False) -> Optional[ScanResult]:
        """Check for changes; revalidate when needed.

        Returns the :class:`ScanResult` when a validation ran, ``None`` when
        nothing changed (the common steady-state case).
        """
        self.scans += 1
        changed = self._changed_paths()
        # resilient mode fires scheduled scans of its own: quarantined-source
        # retries and half-open breaker probes must run even when no watched
        # file changed, or recovery would never be attempted
        probe_due = self.resilience is not None and (
            self.source_supervisor.retry_due() or self.breaker.probe_due()
        )
        if not changed and not force and not probe_due:
            return None
        if not changed and probe_due:
            changed = ["<probe>"]
        return self._run(changed)

    def run_once(self) -> ScanResult:
        """Unconditional validation (service start-up, manual trigger)."""
        changed = self._changed_paths()
        return self._run(changed or ["<manual>"])

    # ------------------------------------------------------------------

    def _run(self, changed: list[str]) -> ScanResult:
        tracer = get_tracer()
        with tracer.span(
            "scan", scan=self.scans, changed=len(changed)
        ) as span:
            if self.workflow_engine is not None:
                result = self._run_workflow(changed)
            elif self.resilience is not None:
                result = self._run_resilient(changed)
            else:
                result = self._run_strict(changed)
            span.set(
                passed=result.passed,
                violations=len(result.report.violations),
                health=result.health.status if result.health else "",
            )
            scan_span_id = span.span_id
        if tracer.enabled and scan_span_id:
            self._capture_trace(tracer, scan_span_id)
        return result

    def _capture_trace(self, tracer, scan_span_id: str) -> None:
        """Publish the finished scan's span tree for ``GET /traces/latest``
        and discard the consumed spans so tracer memory stays bounded."""
        spans = tracer.subtree(scan_span_id)
        if not spans:
            return
        trace = tracer.to_chrome_trace(spans)
        with self._obs_lock:
            self._last_trace = trace
        tracer.discard(span["span_id"] for span in spans)

    def _run_workflow(self, changed: list[str]) -> ScanResult:
        """One composed-workflow scan (service built with ``workflow=``).

        The engine owns supervision: step crashes and timeouts degrade the
        merged report's health instead of raising, and unchanged steps
        splice from the previous run (the workflow analogue of delta
        scanning).  Editing a file-backed workflow definition rebuilds the
        engine — and deliberately drops its splice cache, since retained
        outputs belong to the old step graph.
        """
        if self.workflow_path and self.workflow_path in changed:
            self._build_workflow_engine(self.workflow_path)
        outcome = self.workflow_engine.run()
        return self._record(
            outcome.report,
            changed,
            health=outcome.health,
            store=outcome.store,
            workflow={
                "name": outcome.workflow,
                "passed": outcome.passed,
                "steps": outcome.step_payload(),
                "elapsed_seconds": round(outcome.elapsed_seconds, 6),
            },
        )

    def _run_strict(self, changed: list[str]) -> ScanResult:
        if self._delta is not None:
            outcome = self._delta.scan(changed)
            if outcome is not None:
                report, info = outcome
                return self._record(
                    report, changed, health=None, store=self._delta.store,
                    delta=info,
                )
            # load/include commands or serial-only policy semantics: every
            # scan of this program takes the full path
            self._delta.fallbacks += 1
        session = ValidationSession(
            runtime=self.runtime,
            policy=self.policy,
            base_dir=os.path.dirname(self.spec_path) or ".",
            executor=self.executor,
            spec_cache=self.spec_cache,
            analytics=self.analytics is not None,
        )
        tracer = get_tracer()
        with tracer.span("discover", sources=len(self.sources)):
            for source in self.sources:
                with tracer.span("load[source]", path=source.path):
                    session.load_source(
                        source.format_name, source.path, source.scope
                    )
        report = session.validate_file(self.spec_path)
        return self._record(report, changed, health=None, store=session.store)

    def _run_resilient(self, changed: list[str]) -> ScanResult:
        """One supervised scan: quarantine faults, always produce a result.

        The supervised pipeline, per ISSUE layers 1–4: attempt each
        non-quarantined source and convert failures into structured records
        (layer 1); evaluate under a breaker guard with shard supervision
        (layers 2–3); and ship the evidence in the report's health block
        (layer 4).  This method never raises on source/spec faults — the
        worst outcome is a ``FAILED`` health status.
        """
        policy = self.resilience
        self.source_supervisor.begin_scan()
        guard = self.breaker.begin_scan()
        if self._delta is not None:
            outcome = None
            if self._delta_eligible(guard):
                try:
                    outcome = self._delta.scan(changed, guard=guard)
                except Exception:
                    # any delta-path fault (unreadable source or spec,
                    # driver error): the full supervised path below owns
                    # fault classification and quarantine bookkeeping
                    outcome = None
            if outcome is not None:
                report, info = outcome
                self.breaker.observe(report)
                report.health.finalize()
                return self._record(
                    report, changed, health=report.health,
                    store=self._delta.store, delta=info,
                )
            self._delta.fallbacks += 1
            # full-path scans don't refresh the scanner's retained unit
            # reports; drop them so the next delta scan bootstraps instead
            # of splicing stale (possibly recovered-error) state back in
            self._delta.reset()
        session = ValidationSession(
            runtime=self.runtime,
            policy=self.policy,
            base_dir=os.path.dirname(self.spec_path) or ".",
            executor=self.executor,
            spec_cache=self.spec_cache,
            spec_guard=guard,
            shard_timeout=policy.shard_timeout,
            shard_retries=policy.shard_retries,
            analytics=self.analytics is not None,
        )
        source_failures: list[dict] = []
        retries_this_scan = 0
        loaded = 0
        tracer = get_tracer()
        with tracer.span("discover", sources=len(self.sources)):
            for source in self.sources:
                mtime = self._mtimes.get(source.path)
                if not self.source_supervisor.should_attempt(source.path, mtime):
                    continue
                retrying = self.source_supervisor.is_quarantined(source.path)
                try:
                    with tracer.span("load[source]", path=source.path):
                        session.load_source(
                            source.format_name, source.path, source.scope
                        )
                except DriverError as exc:
                    kind, error = "parse", str(exc)
                except FileNotFoundError as exc:
                    # the file can vanish between the mtime check and the read
                    kind, error = "missing", str(exc)
                except OSError as exc:
                    kind, error = "io", str(exc)
                else:
                    loaded += 1
                    self.source_supervisor.record_success(source.path)
                    continue
                if retrying:
                    retries_this_scan += 1
                failure = self.source_supervisor.record_failure(
                    source.path,
                    source.format_name,
                    source.scope,
                    kind,
                    error,
                    mtime,
                )
                source_failures.append(failure.to_dict())
        try:
            report = session.validate_file(self.spec_path)
        except Exception as exc:
            # the spec file itself is broken (unreadable, unparsable): no
            # meaningful report is possible, but the scan still completes
            report = ValidationReport()
            report.health.fatal = (
                f"spec validation failed: {type(exc).__name__}: {exc}"
            )
        health = report.health
        health.source_failures.extend(source_failures)
        health.quarantined_sources.extend(self.source_supervisor.quarantined())
        health.retries += retries_this_scan
        if self.sources and loaded == 0 and not health.fatal:
            health.fatal = "every configuration source is quarantined"
        if not health.fatal:
            # advance the breaker state machines on the statement outcomes
            # this scan observed (a fatal scan ran no statements — treating
            # it as "all clean" would wrongly close every breaker)
            self.breaker.observe(report)
        health.finalize()
        return self._record(report, changed, health=health, store=session.store)

    def _delta_eligible(self, guard) -> bool:
        """Only a fully healthy service may scan incrementally.

        Quarantine retries, breaker probes, and degraded-scan recovery
        all change which statements run and how failures are classified;
        the full-scan equivalence argument (docs/INCREMENTAL.md) only
        covers clean steady state, so anything else — open breakers,
        quarantined sources, a previous scan that was not ``OK`` — takes
        the full supervised path until the service is clean again.
        """
        if guard.quarantined:
            return False
        if self.breaker.snapshot():
            return False
        if self.source_supervisor.quarantined():
            return False
        last = self.history[-1] if self.history else None
        if last is not None and (
            last.health is None or last.health.status != HealthBlock.OK
        ):
            return False
        return True

    # ------------------------------------------------------------------

    def watch(
        self,
        interval: float = 1.0,
        max_scans: Optional[int] = None,
        on_result: Optional[Callable[[ScanResult], None]] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> list[ScanResult]:
        """Continuous poll loop: scan, sleep, repeat.

        Polls the watched paths every ``interval`` seconds (probe tokens,
        see :meth:`_changed_paths`) and validates whenever something
        changed — incrementally when the service was built with
        ``delta=True``.  ``on_result`` fires after every scan that
        validated; ``max_scans`` bounds the number of *validations* (not
        polls) and makes the loop return its results, which is how tests
        and the delta-smoke harness drive it deterministically.  ``sleep``
        is injectable for tests; the default is :func:`time.sleep`.

        The first validation is forced (a service that has never
        validated has nothing to compare against).  Stop an unbounded
        loop with ``KeyboardInterrupt`` — the CLI's ``service --watch``
        turns that into a clean exit.
        """
        sleeper = sleep if sleep is not None else time.sleep
        results: list[ScanResult] = []
        while True:
            result = self.scan(force=self._sequence == 0)
            if result is not None:
                results.append(result)
                if on_result is not None:
                    on_result(result)
                if max_scans is not None and len(results) >= max_scans:
                    return results
            sleeper(interval)

    # ------------------------------------------------------------------

    def _record(
        self,
        report: ValidationReport,
        changed: list[str],
        health: Optional[HealthBlock],
        store=None,
        delta: Optional[dict] = None,
        workflow: Optional[dict] = None,
    ) -> ScanResult:
        # lifecycle first: the enforced lane's violations belong in the
        # verdict, so they must land on the report before pass/fail,
        # analytics and the ring-buffer summary are computed
        shadow_summary = None
        if self.lifecycle is not None:
            shadow_summary = self._run_lifecycle(report, store, health)
        if self.analytics is not None:
            coverage = self._analyze_coverage(store)
            self.analytics.record_scan(
                report,
                coverage_dead=coverage["dead_specs"] if coverage else None,
            )
        previous = self.history[-1] if self.history else None
        self._sequence += 1
        result = ScanResult(
            sequence=self._sequence,
            report=report,
            changed_paths=changed,
            transitioned=False,
            health=health,
            delta=delta,
            shadow=shadow_summary,
            workflow=workflow,
        )
        result.transitioned = (
            previous is not None and previous.passed != result.passed
        )
        self.history.append(result)
        if len(self.history) > self.history_limit:
            del self.history[: len(self.history) - self.history_limit]
        self.scan_records.append(self._summarize(result))
        self._observe_scan(result)
        if result.transitioned and self.on_transition is not None:
            self.on_transition(result)
        if self.metrics_file:
            write_snapshot(self.metrics_file, self.stats(), get_metrics())
        return result

    def _run_lifecycle(
        self,
        report: ValidationReport,
        store,
        health: Optional[HealthBlock],
    ) -> dict:
        """Drive the lifecycle manager for one scan; returns its summary.

        The enforced lane's report is merged into the scan's verdict (an
        enforced inferred spec fails scans exactly like a hand-written
        one); the shadow lane contributes *only* its analytics profile —
        never violations, counters, or health — which is what keeps
        ``fingerprint()`` byte-identical with the shadow lane on or off
        (docs/LIFECYCLE.md).  Drift observation is frozen on degraded
        scans: evidence gathered while sources are quarantined or shards
        failed would punish healthy specs for infrastructure faults.  A
        FAILED scan ran no meaningful statements, so the lanes are
        skipped outright.
        """
        if store is None:
            return {"enabled": True, "skipped": "no store on this scan"}
        if health is not None and health.status == HealthBlock.FAILED:
            return {"enabled": True, "skipped": "scan FAILED"}
        observe = health is None or health.status == HealthBlock.OK
        try:
            outcome = self.lifecycle.run_scan(store, observe=observe)
        except Exception as exc:  # lifecycle faults must never sink a scan
            _log.warning(
                "lifecycle scan failed",
                extra={"error": f"{type(exc).__name__}: {exc}"},
            )
            return {"enabled": True, "error": f"{type(exc).__name__}: {exc}"}
        enforced_report = outcome["enforced_report"]
        if enforced_report is not None:
            report.merge(enforced_report)
        if self.analytics is not None and outcome["shadow_profile"]:
            # spec_profile surfaces only through the analytics block,
            # which fingerprint() excludes — shadow activity is visible
            # to operators without perturbing the verdict identity
            merge_spec_profiles(report.spec_profile, outcome["shadow_profile"])
        return outcome["summary"]

    def _summarize(self, result: ScanResult) -> dict:
        """One JSON-safe ring-buffer record: outcome, perf and health deltas."""
        report = result.report
        previous = self.scan_records[-1] if self.scan_records else None
        record = {
            "sequence": result.sequence,
            "passed": result.passed,
            "transitioned": result.transitioned,
            "violations": len(report.violations),
            "violations_delta": len(report.violations)
            - (previous["violations"] if previous else 0),
            "specs_evaluated": report.specs_evaluated,
            "specs_skipped": report.specs_skipped,
            "instances_checked": report.instances_checked,
            "elapsed_seconds": round(report.elapsed_seconds, 6),
            "executor": report.executor,
            "shards_run": report.shards_run,
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "changed_paths": list(result.changed_paths),
            "health": result.health.status if result.health else None,
        }
        if result.health is not None:
            record["quarantined_sources"] = len(result.health.quarantined_sources)
            record["quarantined_specs"] = len(result.health.quarantined_specs)
            record["shard_failures"] = len(result.health.shard_failures)
            record["retries"] = result.health.retries
        if result.delta is not None:
            record["delta"] = {
                "mode": result.delta["mode"],
                "selected": result.delta["selected"],
                "skipped": result.delta["skipped"],
            }
        if result.shadow is not None:
            shadow = result.shadow.get("shadow") or {}
            record["shadow"] = {
                "specs": shadow.get("specs", 0),
                "violations": shadow.get("violations", 0),
                "transitions": len(result.shadow.get("transitions") or []),
            }
        if result.workflow is not None:
            steps = result.workflow.get("steps") or []
            record["workflow"] = {
                "name": result.workflow.get("name"),
                "statuses": {step["name"]: step["status"] for step in steps},
                "spliced": sum(1 for step in steps if step.get("spliced")),
            }
        return record

    def _observe_scan(self, result: ScanResult) -> None:
        metrics = get_metrics()
        metrics.counter(
            "confvalley_scans_total",
            "Service scans that revalidated, by outcome.",
        ).inc(outcome="pass" if result.passed else "fail")
        if result.health is not None:
            metrics.counter(
                "confvalley_scan_health_total",
                "Resilient-mode scans, by health status.",
            ).inc(status=result.health.status)
        log = _log.warning if result.transitioned else _log.info
        log(
            "scan completed",
            extra={
                "sequence": result.sequence,
                "passed": result.passed,
                "transitioned": result.transitioned,
                "violations": len(result.report.violations),
                "health": result.health.status if result.health else None,
                "elapsed_seconds": round(result.report.elapsed_seconds, 6),
            },
        )

    def _analyze_coverage(self, store) -> Optional[dict]:
        """Coverage summary of the current (spec text, store) pair.

        Cached on (spec text, instance count): steady-state scans where
        neither the spec nor the store shape changed reuse the previous
        analysis.  Returns the last known summary when the spec file is
        unreadable (a FAILED scan should not erase coverage history), and
        feeds the coverage gauges.
        """
        if store is None:
            return self._coverage
        try:
            if self.runtime is not None:
                spec_text = self.runtime.read_bytes(self.spec_path).decode("utf-8")
            else:
                with open(self.spec_path, "r", encoding="utf-8") as handle:
                    spec_text = handle.read()
        except Exception:
            return self._coverage
        key = (spec_text, store.instance_count)
        with self._obs_lock:
            if key == self._coverage_key and self._coverage is not None:
                return self._coverage
        try:
            from .core.coverage import analyze_coverage

            coverage = analyze_coverage(spec_text, store)
        except Exception:
            # an unparsable spec yields no coverage view, not a failed scan
            return self._coverage
        summary = {
            "covered_classes": len(coverage.covered),
            "uncovered_classes": len(coverage.uncovered),
            "total_classes": coverage.total_classes,
            "coverage_ratio": round(coverage.coverage_ratio, 4),
            "spec_count": coverage.spec_count,
            "dead_specs": sorted(coverage.dead_specs),
        }
        with self._obs_lock:
            self._coverage_key = key
            self._coverage = summary
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(
                "confvalley_coverage_covered_classes",
                "Configuration classes matched by at least one specification.",
            ).set(summary["covered_classes"])
            metrics.gauge(
                "confvalley_coverage_uncovered_classes",
                "Configuration classes no specification can reach.",
            ).set(summary["uncovered_classes"])
            metrics.gauge(
                "confvalley_coverage_dead_specs",
                "Specifications whose notations match no instance at all.",
            ).set(len(summary["dead_specs"]))
        return summary

    # ------------------------------------------------------------------
    # Operator endpoint surface (repro.observability.server)
    # ------------------------------------------------------------------

    def health_payload(self) -> dict:
        """The ``GET /health`` body: 503-worthy iff ``status == "FAILED"``.

        ``status`` is the last scan's health verdict (``OK`` / ``DEGRADED``
        / ``FAILED``; strict-mode scans have no health block and report
        ``OK``), or ``never-validated`` before the first scan — a service
        that has not scanned yet is *up*, not broken.
        """
        last = self.history[-1] if self.history else None
        if last is None:
            return {
                "status": "never-validated",
                "passed": None,
                "scans": self.scans,
                "validations": self._sequence,
            }
        return {
            "status": last.health.status if last.health else HealthBlock.OK,
            "passed": last.passed,
            "sequence": last.sequence,
            "scans": self.scans,
            "validations": self._sequence,
        }

    def latest_trace(self) -> Optional[dict]:
        """The most recent scan's span tree as Chrome ``trace_event`` JSON
        (None until a scan ran with tracing enabled)."""
        with self._obs_lock:
            return self._last_trace

    def start_http(self, host: str = "127.0.0.1", port: int = 0):
        """Start the live operator endpoint; returns the running server."""
        from .observability.server import ObservabilityServer

        if self._http is None:
            self._http = ObservabilityServer(self, host=host, port=port).start()
        return self._http

    def stop_http(self) -> None:
        """Stop the operator endpoint (idempotent; part of clean shutdown)."""
        http, self._http = self._http, None
        if http is not None:
            http.stop()

    def attach_jobs(self, job_service) -> None:
        """Attach a :class:`~repro.jobs.service.JobService`.

        The job service shares this service's compiled-spec cache (same
        spec hash → one compile across scans *and* jobs) and gets the
        watched spec registered under the name ``"service"`` so remote
        submitters can validate against it without shipping the text.
        """
        self.jobs = job_service
        job_service.spec_cache = self.spec_cache
        job_service.executor.spec_cache = self.spec_cache
        if self.lifecycle is not None:
            # job verdicts carry a shadow block evaluated against the
            # job's own store (see JobExecutor._attach_shadow)
            job_service.executor.shadow_provider = self.lifecycle.shadow_cpl
        try:
            if self.runtime is not None:
                spec_text = self.runtime.read_bytes(self.spec_path).decode("utf-8")
            else:
                with open(self.spec_path, "r", encoding="utf-8") as handle:
                    spec_text = handle.read()
        except Exception:
            return  # an unreadable spec just skips the registration
        job_service.register_spec("service", spec_text)

    @property
    def http(self):
        """The running operator endpoint, or None."""
        return self._http

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe service status: health, cache, and scan history.

        This is the payload behind ``confvalley stats`` and the
        ``--metrics-file`` snapshot — everything an operator needs to read
        a degraded scan without attaching a debugger.
        """
        status = self.current_status
        with self._obs_lock:
            coverage = dict(self._coverage) if self._coverage else None
        return {
            "scans": self.scans,
            "validations": self._sequence,
            "analytics": (
                self.analytics.to_dict() if self.analytics is not None else None
            ),
            "drift": (
                self.analytics.drift() if self.analytics is not None else None
            ),
            "coverage": coverage,
            "status": (
                "never-validated"
                if status is None
                else ("passing" if status else "failing")
            ),
            "cache": self.spec_cache.stats.as_dict(),
            "delta": self._delta.stats() if self._delta is not None else None,
            "workflow": (
                self.workflow_engine.stats()
                if self.workflow_engine is not None
                else None
            ),
            "quarantined_sources": (
                self.source_supervisor.quarantined()
                if self.source_supervisor is not None
                else []
            ),
            "breakers": (
                self.breaker.snapshot() if self.breaker is not None else []
            ),
            "jobs": self.jobs.stats() if self.jobs is not None else None,
            "lifecycle": (
                self.lifecycle.stats() if self.lifecycle is not None else None
            ),
            "history": list(self.scan_records),
        }

    @property
    def current_status(self) -> Optional[bool]:
        """True = passing, False = failing, None = never validated."""
        if not self.history:
            return None
        return self.history[-1].passed

    @property
    def cache_stats(self) -> SpecCacheStats:
        """Compiled-spec cache counters across this service's scans."""
        return self.spec_cache.stats
