"""Continuous validation service (paper §3.2, §5.1).

"[validation scenarios] require different tools such as … a validation
service that runs continuously on the configuration repository"; the batch
mode "(re)validates … continuously as configuration specifications or data
are updated."

:class:`ValidationService` watches a specification file and a set of
configuration sources by modification time.  Each :meth:`scan` call checks
for changes, revalidates when anything changed, records the run in an
in-memory history, and reports transitions (pass→fail is the page-the-
operator moment).  The service is poll-driven — the caller owns the
schedule (cron, a loop, a test) — and each scan's *evaluation* can fan out
across a thread or process pool via the ``executor`` option
(:mod:`repro.parallel`); the sharded engine merges per-shard reports back
into the exact order serial evaluation would produce, so reports, history
and pass/fail transitions stay deterministic regardless of executor.

Steady-state scans also skip recompilation: the service owns a
:class:`~repro.parallel.SpecCache`, so when only configuration *data*
changed, the spec file's parse + compiler rewrites are reused from cache
(see ``docs/PERFORMANCE.md`` for the invalidation semantics).
"""

from __future__ import annotations

import os
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from .core.policy import ValidationPolicy
from .core.report import HealthBlock, ValidationReport
from .core.session import ValidationSession
from .errors import DriverError
from .observability import get_logger, get_metrics, get_tracer, write_snapshot
from .observability.analytics import SpecAnalytics
from .parallel.cache import SpecCache, SpecCacheStats
from .resilience import ResiliencePolicy, SourceSupervisor, SpecCircuitBreaker
from .runtime import RuntimeProvider

__all__ = ["SourceSpec", "ScanResult", "ValidationService"]

_log = get_logger("service")


@dataclass(frozen=True)
class SourceSpec:
    """One watched configuration source."""

    format_name: str
    path: str
    scope: str = ""


@dataclass
class ScanResult:
    """Outcome of one service scan that actually revalidated."""

    sequence: int
    report: ValidationReport
    changed_paths: list[str]
    transitioned: bool    # pass/fail status differs from the previous run
    #: the report's health block, surfaced for resilient-mode scans
    #: (None in strict mode, where any fault raises instead)
    health: Optional[HealthBlock] = None

    @property
    def passed(self) -> bool:
        # a FAILED scan (spec unreadable, every source quarantined) never
        # counts as passing, no matter how empty its violation list is
        if self.health is not None and self.health.status == HealthBlock.FAILED:
            return False
        return self.report.passed


class ValidationService:
    """Revalidates a spec file against sources whenever either changes."""

    def __init__(
        self,
        spec_path: str,
        sources: list[SourceSpec],
        runtime: Optional[RuntimeProvider] = None,
        policy: Optional[ValidationPolicy] = None,
        on_transition: Optional[Callable[[ScanResult], None]] = None,
        history_limit: int = 100,
        executor: Optional[str] = None,
        spec_cache: Optional[SpecCache] = None,
        resilience: Optional[ResiliencePolicy] = None,
        metrics_file: Optional[str] = None,
        analytics: bool = True,
    ):
        self.spec_path = spec_path
        self.sources = list(sources)
        self.runtime = runtime
        self.policy = policy
        self.on_transition = on_transition
        self.history: list[ScanResult] = []
        self.history_limit = history_limit
        #: evaluation strategy per scan: None = serial, or
        #: "auto"/"serial"/"thread"/"process" via repro.parallel
        self.executor = executor
        #: compiled-spec cache shared across scans (hits when only data changed)
        self.spec_cache = spec_cache if spec_cache is not None else SpecCache()
        #: None = strict mode (PR-1 behavior: any fault raises);
        #: a ResiliencePolicy switches scans to supervised mode — source
        #: quarantine, spec circuit breakers, shard supervision, health
        #: blocks (see repro.resilience)
        self.resilience = resilience
        if resilience is not None:
            self.source_supervisor = SourceSupervisor(resilience)
            self.breaker = SpecCircuitBreaker(
                threshold=resilience.quarantine_threshold,
                probe_interval=resilience.probe_interval,
            )
        else:
            self.source_supervisor = None
            self.breaker = None
        #: observability snapshot target: atomically rewritten after every
        #: scan that validated (see repro.observability.snapshot)
        self.metrics_file = metrics_file
        #: bounded ring of per-scan summary records (plain dicts, JSON-safe)
        #: — the queryable scan history behind `confvalley stats`
        self.scan_records: "deque[dict]" = deque(maxlen=history_limit)
        self.scans = 0
        self._mtimes: dict[str, float] = {}
        self._sequence = 0
        #: scan-over-scan per-spec analytics (hot specs, dead specs, drift);
        #: None turns per-statement attribution off entirely, and
        #: report fingerprints are byte-identical either way
        self.analytics: Optional[SpecAnalytics] = (
            SpecAnalytics() if analytics else None
        )
        #: guards the published trace/coverage state: the scan loop is the
        #: only writer, endpoint readers copy under the lock — so a reader
        #: never blocks a scan for longer than a dict swap
        self._obs_lock = threading.Lock()
        self._last_trace: Optional[dict] = None
        #: coverage summary of the last scan, cached on
        #: (spec text, instance count) so steady-state scans skip reanalysis
        self._coverage: Optional[dict] = None
        self._coverage_key: Optional[tuple] = None
        #: live operator endpoint (started via start_http / CLI --http)
        self._http = None
        #: attached asynchronous job service (repro.jobs) — enables the
        #: POST /jobs submission API on the operator endpoint and the
        #: "jobs" block in stats(); see attach_jobs()
        self.jobs = None

    # ------------------------------------------------------------------

    def watched_paths(self) -> list[str]:
        return [self.spec_path] + [source.path for source in self.sources]

    def _changed_paths(self) -> list[str]:
        changed = []
        for path in self.watched_paths():
            try:
                mtime = os.stat(path).st_mtime_ns
            except OSError:
                mtime = -1.0
            if self._mtimes.get(path) != mtime:
                self._mtimes[path] = mtime
                changed.append(path)
        return changed

    # ------------------------------------------------------------------

    def scan(self, force: bool = False) -> Optional[ScanResult]:
        """Check for changes; revalidate when needed.

        Returns the :class:`ScanResult` when a validation ran, ``None`` when
        nothing changed (the common steady-state case).
        """
        self.scans += 1
        changed = self._changed_paths()
        # resilient mode fires scheduled scans of its own: quarantined-source
        # retries and half-open breaker probes must run even when no watched
        # file changed, or recovery would never be attempted
        probe_due = self.resilience is not None and (
            self.source_supervisor.retry_due() or self.breaker.probe_due()
        )
        if not changed and not force and not probe_due:
            return None
        if not changed and probe_due:
            changed = ["<probe>"]
        return self._run(changed)

    def run_once(self) -> ScanResult:
        """Unconditional validation (service start-up, manual trigger)."""
        changed = self._changed_paths()
        return self._run(changed or ["<manual>"])

    # ------------------------------------------------------------------

    def _run(self, changed: list[str]) -> ScanResult:
        tracer = get_tracer()
        with tracer.span(
            "scan", scan=self.scans, changed=len(changed)
        ) as span:
            if self.resilience is not None:
                result = self._run_resilient(changed)
            else:
                result = self._run_strict(changed)
            span.set(
                passed=result.passed,
                violations=len(result.report.violations),
                health=result.health.status if result.health else "",
            )
            scan_span_id = span.span_id
        if tracer.enabled and scan_span_id:
            self._capture_trace(tracer, scan_span_id)
        return result

    def _capture_trace(self, tracer, scan_span_id: str) -> None:
        """Publish the finished scan's span tree for ``GET /traces/latest``
        and discard the consumed spans so tracer memory stays bounded."""
        spans = tracer.subtree(scan_span_id)
        if not spans:
            return
        trace = tracer.to_chrome_trace(spans)
        with self._obs_lock:
            self._last_trace = trace
        tracer.discard(span["span_id"] for span in spans)

    def _run_strict(self, changed: list[str]) -> ScanResult:
        session = ValidationSession(
            runtime=self.runtime,
            policy=self.policy,
            base_dir=os.path.dirname(self.spec_path) or ".",
            executor=self.executor,
            spec_cache=self.spec_cache,
            analytics=self.analytics is not None,
        )
        tracer = get_tracer()
        with tracer.span("discover", sources=len(self.sources)):
            for source in self.sources:
                with tracer.span("load[source]", path=source.path):
                    session.load_source(
                        source.format_name, source.path, source.scope
                    )
        report = session.validate_file(self.spec_path)
        return self._record(report, changed, health=None, store=session.store)

    def _run_resilient(self, changed: list[str]) -> ScanResult:
        """One supervised scan: quarantine faults, always produce a result.

        The supervised pipeline, per ISSUE layers 1–4: attempt each
        non-quarantined source and convert failures into structured records
        (layer 1); evaluate under a breaker guard with shard supervision
        (layers 2–3); and ship the evidence in the report's health block
        (layer 4).  This method never raises on source/spec faults — the
        worst outcome is a ``FAILED`` health status.
        """
        policy = self.resilience
        self.source_supervisor.begin_scan()
        guard = self.breaker.begin_scan()
        session = ValidationSession(
            runtime=self.runtime,
            policy=self.policy,
            base_dir=os.path.dirname(self.spec_path) or ".",
            executor=self.executor,
            spec_cache=self.spec_cache,
            spec_guard=guard,
            shard_timeout=policy.shard_timeout,
            shard_retries=policy.shard_retries,
            analytics=self.analytics is not None,
        )
        source_failures: list[dict] = []
        retries_this_scan = 0
        loaded = 0
        tracer = get_tracer()
        with tracer.span("discover", sources=len(self.sources)):
            for source in self.sources:
                mtime = self._mtimes.get(source.path)
                if not self.source_supervisor.should_attempt(source.path, mtime):
                    continue
                retrying = self.source_supervisor.is_quarantined(source.path)
                try:
                    with tracer.span("load[source]", path=source.path):
                        session.load_source(
                            source.format_name, source.path, source.scope
                        )
                except DriverError as exc:
                    kind, error = "parse", str(exc)
                except FileNotFoundError as exc:
                    # the file can vanish between the mtime check and the read
                    kind, error = "missing", str(exc)
                except OSError as exc:
                    kind, error = "io", str(exc)
                else:
                    loaded += 1
                    self.source_supervisor.record_success(source.path)
                    continue
                if retrying:
                    retries_this_scan += 1
                failure = self.source_supervisor.record_failure(
                    source.path,
                    source.format_name,
                    source.scope,
                    kind,
                    error,
                    mtime,
                )
                source_failures.append(failure.to_dict())
        try:
            report = session.validate_file(self.spec_path)
        except Exception as exc:
            # the spec file itself is broken (unreadable, unparsable): no
            # meaningful report is possible, but the scan still completes
            report = ValidationReport()
            report.health.fatal = (
                f"spec validation failed: {type(exc).__name__}: {exc}"
            )
        health = report.health
        health.source_failures.extend(source_failures)
        health.quarantined_sources.extend(self.source_supervisor.quarantined())
        health.retries += retries_this_scan
        if self.sources and loaded == 0 and not health.fatal:
            health.fatal = "every configuration source is quarantined"
        if not health.fatal:
            # advance the breaker state machines on the statement outcomes
            # this scan observed (a fatal scan ran no statements — treating
            # it as "all clean" would wrongly close every breaker)
            self.breaker.observe(report)
        health.finalize()
        return self._record(report, changed, health=health, store=session.store)

    def _record(
        self,
        report: ValidationReport,
        changed: list[str],
        health: Optional[HealthBlock],
        store=None,
    ) -> ScanResult:
        if self.analytics is not None:
            coverage = self._analyze_coverage(store)
            self.analytics.record_scan(
                report,
                coverage_dead=coverage["dead_specs"] if coverage else None,
            )
        previous = self.history[-1] if self.history else None
        self._sequence += 1
        result = ScanResult(
            sequence=self._sequence,
            report=report,
            changed_paths=changed,
            transitioned=False,
            health=health,
        )
        result.transitioned = (
            previous is not None and previous.passed != result.passed
        )
        self.history.append(result)
        if len(self.history) > self.history_limit:
            del self.history[: len(self.history) - self.history_limit]
        self.scan_records.append(self._summarize(result))
        self._observe_scan(result)
        if result.transitioned and self.on_transition is not None:
            self.on_transition(result)
        if self.metrics_file:
            write_snapshot(self.metrics_file, self.stats(), get_metrics())
        return result

    def _summarize(self, result: ScanResult) -> dict:
        """One JSON-safe ring-buffer record: outcome, perf and health deltas."""
        report = result.report
        previous = self.scan_records[-1] if self.scan_records else None
        record = {
            "sequence": result.sequence,
            "passed": result.passed,
            "transitioned": result.transitioned,
            "violations": len(report.violations),
            "violations_delta": len(report.violations)
            - (previous["violations"] if previous else 0),
            "specs_evaluated": report.specs_evaluated,
            "specs_skipped": report.specs_skipped,
            "instances_checked": report.instances_checked,
            "elapsed_seconds": round(report.elapsed_seconds, 6),
            "executor": report.executor,
            "shards_run": report.shards_run,
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "changed_paths": list(result.changed_paths),
            "health": result.health.status if result.health else None,
        }
        if result.health is not None:
            record["quarantined_sources"] = len(result.health.quarantined_sources)
            record["quarantined_specs"] = len(result.health.quarantined_specs)
            record["shard_failures"] = len(result.health.shard_failures)
            record["retries"] = result.health.retries
        return record

    def _observe_scan(self, result: ScanResult) -> None:
        metrics = get_metrics()
        metrics.counter(
            "confvalley_scans_total",
            "Service scans that revalidated, by outcome.",
        ).inc(outcome="pass" if result.passed else "fail")
        if result.health is not None:
            metrics.counter(
                "confvalley_scan_health_total",
                "Resilient-mode scans, by health status.",
            ).inc(status=result.health.status)
        log = _log.warning if result.transitioned else _log.info
        log(
            "scan completed",
            extra={
                "sequence": result.sequence,
                "passed": result.passed,
                "transitioned": result.transitioned,
                "violations": len(result.report.violations),
                "health": result.health.status if result.health else None,
                "elapsed_seconds": round(result.report.elapsed_seconds, 6),
            },
        )

    def _analyze_coverage(self, store) -> Optional[dict]:
        """Coverage summary of the current (spec text, store) pair.

        Cached on (spec text, instance count): steady-state scans where
        neither the spec nor the store shape changed reuse the previous
        analysis.  Returns the last known summary when the spec file is
        unreadable (a FAILED scan should not erase coverage history), and
        feeds the coverage gauges.
        """
        if store is None:
            return self._coverage
        try:
            if self.runtime is not None:
                spec_text = self.runtime.read_bytes(self.spec_path).decode("utf-8")
            else:
                with open(self.spec_path, "r", encoding="utf-8") as handle:
                    spec_text = handle.read()
        except Exception:
            return self._coverage
        key = (spec_text, store.instance_count)
        with self._obs_lock:
            if key == self._coverage_key and self._coverage is not None:
                return self._coverage
        try:
            from .core.coverage import analyze_coverage

            coverage = analyze_coverage(spec_text, store)
        except Exception:
            # an unparsable spec yields no coverage view, not a failed scan
            return self._coverage
        summary = {
            "covered_classes": len(coverage.covered),
            "uncovered_classes": len(coverage.uncovered),
            "total_classes": coverage.total_classes,
            "coverage_ratio": round(coverage.coverage_ratio, 4),
            "spec_count": coverage.spec_count,
            "dead_specs": sorted(coverage.dead_specs),
        }
        with self._obs_lock:
            self._coverage_key = key
            self._coverage = summary
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(
                "confvalley_coverage_covered_classes",
                "Configuration classes matched by at least one specification.",
            ).set(summary["covered_classes"])
            metrics.gauge(
                "confvalley_coverage_uncovered_classes",
                "Configuration classes no specification can reach.",
            ).set(summary["uncovered_classes"])
            metrics.gauge(
                "confvalley_coverage_dead_specs",
                "Specifications whose notations match no instance at all.",
            ).set(len(summary["dead_specs"]))
        return summary

    # ------------------------------------------------------------------
    # Operator endpoint surface (repro.observability.server)
    # ------------------------------------------------------------------

    def health_payload(self) -> dict:
        """The ``GET /health`` body: 503-worthy iff ``status == "FAILED"``.

        ``status`` is the last scan's health verdict (``OK`` / ``DEGRADED``
        / ``FAILED``; strict-mode scans have no health block and report
        ``OK``), or ``never-validated`` before the first scan — a service
        that has not scanned yet is *up*, not broken.
        """
        last = self.history[-1] if self.history else None
        if last is None:
            return {
                "status": "never-validated",
                "passed": None,
                "scans": self.scans,
                "validations": self._sequence,
            }
        return {
            "status": last.health.status if last.health else HealthBlock.OK,
            "passed": last.passed,
            "sequence": last.sequence,
            "scans": self.scans,
            "validations": self._sequence,
        }

    def latest_trace(self) -> Optional[dict]:
        """The most recent scan's span tree as Chrome ``trace_event`` JSON
        (None until a scan ran with tracing enabled)."""
        with self._obs_lock:
            return self._last_trace

    def start_http(self, host: str = "127.0.0.1", port: int = 0):
        """Start the live operator endpoint; returns the running server."""
        from .observability.server import ObservabilityServer

        if self._http is None:
            self._http = ObservabilityServer(self, host=host, port=port).start()
        return self._http

    def stop_http(self) -> None:
        """Stop the operator endpoint (idempotent; part of clean shutdown)."""
        http, self._http = self._http, None
        if http is not None:
            http.stop()

    def attach_jobs(self, job_service) -> None:
        """Attach a :class:`~repro.jobs.service.JobService`.

        The job service shares this service's compiled-spec cache (same
        spec hash → one compile across scans *and* jobs) and gets the
        watched spec registered under the name ``"service"`` so remote
        submitters can validate against it without shipping the text.
        """
        self.jobs = job_service
        job_service.spec_cache = self.spec_cache
        job_service.executor.spec_cache = self.spec_cache
        try:
            if self.runtime is not None:
                spec_text = self.runtime.read_bytes(self.spec_path).decode("utf-8")
            else:
                with open(self.spec_path, "r", encoding="utf-8") as handle:
                    spec_text = handle.read()
        except Exception:
            return  # an unreadable spec just skips the registration
        job_service.register_spec("service", spec_text)

    @property
    def http(self):
        """The running operator endpoint, or None."""
        return self._http

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe service status: health, cache, and scan history.

        This is the payload behind ``confvalley stats`` and the
        ``--metrics-file`` snapshot — everything an operator needs to read
        a degraded scan without attaching a debugger.
        """
        status = self.current_status
        with self._obs_lock:
            coverage = dict(self._coverage) if self._coverage else None
        return {
            "scans": self.scans,
            "validations": self._sequence,
            "analytics": (
                self.analytics.to_dict() if self.analytics is not None else None
            ),
            "drift": (
                self.analytics.drift() if self.analytics is not None else None
            ),
            "coverage": coverage,
            "status": (
                "never-validated"
                if status is None
                else ("passing" if status else "failing")
            ),
            "cache": self.spec_cache.stats.as_dict(),
            "quarantined_sources": (
                self.source_supervisor.quarantined()
                if self.source_supervisor is not None
                else []
            ),
            "breakers": (
                self.breaker.snapshot() if self.breaker is not None else []
            ),
            "jobs": self.jobs.stats() if self.jobs is not None else None,
            "history": list(self.scan_records),
        }

    @property
    def current_status(self) -> Optional[bool]:
        """True = passing, False = failing, None = never validated."""
        if not self.history:
            return None
        return self.history[-1].passed

    @property
    def cache_stats(self) -> SpecCacheStats:
        """Compiled-spec cache counters across this service's scans."""
        return self.spec_cache.stats
