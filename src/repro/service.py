"""Continuous validation service (paper §3.2, §5.1).

"[validation scenarios] require different tools such as … a validation
service that runs continuously on the configuration repository"; the batch
mode "(re)validates … continuously as configuration specifications or data
are updated."

:class:`ValidationService` watches a specification file and a set of
configuration sources by modification time.  Each :meth:`scan` call checks
for changes, revalidates when anything changed, records the run in an
in-memory history, and reports transitions (pass→fail is the page-the-
operator moment).  The service is poll-driven — the caller owns the
schedule (cron, a loop, a test) — and each scan's *evaluation* can fan out
across a thread or process pool via the ``executor`` option
(:mod:`repro.parallel`); the sharded engine merges per-shard reports back
into the exact order serial evaluation would produce, so reports, history
and pass/fail transitions stay deterministic regardless of executor.

Steady-state scans also skip recompilation: the service owns a
:class:`~repro.parallel.SpecCache`, so when only configuration *data*
changed, the spec file's parse + compiler rewrites are reused from cache
(see ``docs/PERFORMANCE.md`` for the invalidation semantics).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from .core.policy import ValidationPolicy
from .core.report import ValidationReport
from .core.session import ValidationSession
from .parallel.cache import SpecCache, SpecCacheStats
from .runtime import RuntimeProvider

__all__ = ["SourceSpec", "ScanResult", "ValidationService"]


@dataclass(frozen=True)
class SourceSpec:
    """One watched configuration source."""

    format_name: str
    path: str
    scope: str = ""


@dataclass
class ScanResult:
    """Outcome of one service scan that actually revalidated."""

    sequence: int
    report: ValidationReport
    changed_paths: list[str]
    transitioned: bool    # pass/fail status differs from the previous run

    @property
    def passed(self) -> bool:
        return self.report.passed


class ValidationService:
    """Revalidates a spec file against sources whenever either changes."""

    def __init__(
        self,
        spec_path: str,
        sources: list[SourceSpec],
        runtime: Optional[RuntimeProvider] = None,
        policy: Optional[ValidationPolicy] = None,
        on_transition: Optional[Callable[[ScanResult], None]] = None,
        history_limit: int = 100,
        executor: Optional[str] = None,
        spec_cache: Optional[SpecCache] = None,
    ):
        self.spec_path = spec_path
        self.sources = list(sources)
        self.runtime = runtime
        self.policy = policy
        self.on_transition = on_transition
        self.history: list[ScanResult] = []
        self.history_limit = history_limit
        #: evaluation strategy per scan: None = serial, or
        #: "auto"/"serial"/"thread"/"process" via repro.parallel
        self.executor = executor
        #: compiled-spec cache shared across scans (hits when only data changed)
        self.spec_cache = spec_cache if spec_cache is not None else SpecCache()
        self.scans = 0
        self._mtimes: dict[str, float] = {}
        self._sequence = 0

    # ------------------------------------------------------------------

    def watched_paths(self) -> list[str]:
        return [self.spec_path] + [source.path for source in self.sources]

    def _changed_paths(self) -> list[str]:
        changed = []
        for path in self.watched_paths():
            try:
                mtime = os.stat(path).st_mtime_ns
            except OSError:
                mtime = -1.0
            if self._mtimes.get(path) != mtime:
                self._mtimes[path] = mtime
                changed.append(path)
        return changed

    # ------------------------------------------------------------------

    def scan(self, force: bool = False) -> Optional[ScanResult]:
        """Check for changes; revalidate when needed.

        Returns the :class:`ScanResult` when a validation ran, ``None`` when
        nothing changed (the common steady-state case).
        """
        self.scans += 1
        changed = self._changed_paths()
        if not changed and not force:
            return None
        return self._run(changed)

    def run_once(self) -> ScanResult:
        """Unconditional validation (service start-up, manual trigger)."""
        changed = self._changed_paths()
        return self._run(changed or ["<manual>"])

    # ------------------------------------------------------------------

    def _run(self, changed: list[str]) -> ScanResult:
        session = ValidationSession(
            runtime=self.runtime,
            policy=self.policy,
            base_dir=os.path.dirname(self.spec_path) or ".",
            executor=self.executor,
            spec_cache=self.spec_cache,
        )
        for source in self.sources:
            session.load_source(source.format_name, source.path, source.scope)
        report = session.validate_file(self.spec_path)
        previous = self.history[-1] if self.history else None
        transitioned = previous is not None and previous.passed != report.passed
        self._sequence += 1
        result = ScanResult(
            sequence=self._sequence,
            report=report,
            changed_paths=changed,
            transitioned=transitioned,
        )
        self.history.append(result)
        if len(self.history) > self.history_limit:
            del self.history[: len(self.history) - self.history_limit]
        if transitioned and self.on_transition is not None:
            self.on_transition(result)
        return result

    # ------------------------------------------------------------------

    @property
    def current_status(self) -> Optional[bool]:
        """True = passing, False = failing, None = never validated."""
        if not self.history:
            return None
        return self.history[-1].passed

    @property
    def cache_stats(self) -> SpecCacheStats:
        """Compiled-spec cache counters across this service's scans."""
        return self.spec_cache.stats
