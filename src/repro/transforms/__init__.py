"""CPL transformation functions and the plug-in registry (paper §4.2.1)."""

from .base import (
    TransformSpec,
    get_transform,
    is_transform,
    register_transform,
    transform_names,
)
from .collection import register_collection_transforms
from .numeric import register_numeric_transforms
from .strings import register_string_transforms

register_string_transforms()
register_numeric_transforms()
register_collection_transforms()

__all__ = [
    "TransformSpec",
    "get_transform",
    "is_transform",
    "register_transform",
    "transform_names",
]
