"""Collection transformation functions (reduce-like and list-shaping).

``union`` is the paper's example of a reduce-like transform ("the union of
all range-type members"); ``flatten`` spreads split-produced lists back into
individual domain members so later steps iterate elements.
"""

from __future__ import annotations

from .base import register_transform

__all__ = ["register_collection_transforms"]


def _union(values) -> list:
    """Distinct members of the whole domain, order-preserving."""
    seen = set()
    out = []
    for value in values:
        items = value if isinstance(value, list) else [value]
        for item in items:
            if item not in seen:
                seen.add(item)
                out.append(item)
    return out


def _distinct(values) -> list:
    return _union(values)


def _flatten(values) -> list:
    out = []
    for value in values:
        if isinstance(value, list):
            out.extend(value)
        else:
            out.append(value)
    return out


def _sort(values) -> list:
    from ..predicates.relational import coerce_scalar

    flat = _flatten(values)
    try:
        return sorted(flat, key=lambda v: coerce_scalar(str(v)))
    except TypeError:
        return sorted(flat, key=str)


def _first(values):
    return values[0] if values else ""


def _last(values):
    return values[-1] if values else ""


def _join(values, separator=",") -> str:
    flat = _flatten(values)
    return str(separator).join(str(v) for v in flat)


def register_collection_transforms() -> None:
    register_transform("union", _union, reduce=True)
    register_transform("distinct", _distinct, reduce=True)
    register_transform("flatten", _flatten, reduce=True)
    register_transform("sort", _sort, reduce=True)
    register_transform("first", _first, reduce=True)
    register_transform("last", _last, reduce=True)
    register_transform("join", _join, reduce=True)
