"""Transformation-function registry (paper §4.2.1, §4.2.6).

A transformation rewrites domain members before predicates run.  Two styles
exist, mirroring the paper:

* **map-like** — applied to each member of the domain independently
  (``split``, ``lower``); signature ``fn(value, *args) -> value``;
* **reduce-like** — applied to all members as a whole (``union``, ``count``);
  signature ``fn(values: list, *args) -> value-or-values``.

Values flowing through a pipeline are strings or lists of strings (``split``
produces lists, ``at`` indexes back into scalars).  User-defined transforms
are added as plug-ins via :func:`register_transform` without modifying the
CPL compiler — the paper's preferred extension path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import UnknownTransformError

__all__ = [
    "TransformSpec",
    "register_transform",
    "get_transform",
    "transform_names",
    "is_transform",
]


@dataclass(frozen=True)
class TransformSpec:
    name: str
    fn: Callable
    reduce: bool = False


_REGISTRY: dict[str, TransformSpec] = {}


def register_transform(name: str, fn: Callable, reduce: bool = False) -> TransformSpec:
    spec = TransformSpec(name=name, fn=fn, reduce=reduce)
    _REGISTRY[name] = spec
    return spec


def get_transform(name: str) -> TransformSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownTransformError(
            f"unknown transformation {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def transform_names() -> list[str]:
    return sorted(_REGISTRY)


def is_transform(name: str) -> bool:
    return name in _REGISTRY
