"""Numeric transformation functions.

Map-like: ``len``, ``abs``, ``negate``; reduce-like: ``sum``, ``min``,
``max``, ``count``.  The reduce-like style is the paper's "applies the
transformation to all members in the domain as a whole".
"""

from __future__ import annotations

from ..errors import EvaluationError
from ..predicates.relational import coerce_scalar
from .base import register_transform

__all__ = ["register_numeric_transforms"]


def _number(value):
    coerced = coerce_scalar(str(value))
    if not isinstance(coerced, (int, float)):
        raise EvaluationError(f"value {value!r} is not numeric")
    return coerced


def _len(value) -> str:
    if isinstance(value, list):
        return str(len(value))
    return str(len(str(value)))


def _abs(value) -> str:
    return str(abs(_number(value)))


def _negate(value) -> str:
    return str(-_number(value))


def _sum(values) -> str:
    total = sum(_number(v) for v in values)
    return str(total)


def _min(values) -> str:
    if not values:
        raise EvaluationError("min over an empty domain")
    return str(min((_number(v) for v in values)))


def _max(values) -> str:
    if not values:
        raise EvaluationError("max over an empty domain")
    return str(max((_number(v) for v in values)))


def _count(values) -> str:
    return str(len(values))


def register_numeric_transforms() -> None:
    register_transform("len", _len)
    register_transform("abs", _abs)
    register_transform("negate", _negate)
    register_transform("sum", _sum, reduce=True)
    register_transform("min", _min, reduce=True)
    register_transform("max", _max, reduce=True)
    register_transform("count", _count, reduce=True)
