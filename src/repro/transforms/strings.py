"""String transformation functions (map-like)."""

from __future__ import annotations

from ..errors import EvaluationError
from .base import register_transform

__all__ = ["register_string_transforms"]


def _as_text(value) -> str:
    if isinstance(value, list):
        raise EvaluationError("expected a scalar value, got a list; use at(i) first")
    return str(value)


def _split(value, separator=",") -> list[str]:
    """Split a scalar into parts; applied to a list, split-and-flatten each
    element (the paper's ``VipRanges -> split(';') -> split('-')`` idiom)."""
    if isinstance(value, list):
        out: list[str] = []
        for element in value:
            out.extend(_split(element, separator))
        return out
    return [part.strip() for part in str(value).split(str(separator))]


def _at(value, index) -> str:
    if not isinstance(value, list):
        raise EvaluationError("at(i) expects a list value (apply split first)")
    i = int(index)
    if not -len(value) <= i < len(value):
        raise EvaluationError(f"at({i}) out of bounds for list of {len(value)}")
    return value[i]


def _lower(value):
    return _as_text(value).lower()


def _upper(value):
    return _as_text(value).upper()


def _trim(value):
    return _as_text(value).strip()


def _replace(value, old, new):
    return _as_text(value).replace(str(old), str(new))


def _concat(value, suffix):
    return _as_text(value) + str(suffix)


def _prepend(value, prefix):
    return str(prefix) + _as_text(value)


def _substr(value, start, end=None):
    text = _as_text(value)
    stop = int(end) if end is not None else len(text)
    return text[int(start):stop]


def register_string_transforms() -> None:
    register_transform("split", _split)
    register_transform("at", _at)
    register_transform("lower", _lower)
    register_transform("upper", _upper)
    register_transform("trim", _trim)
    register_transform("replace", _replace)
    register_transform("concat", _concat)
    register_transform("prepend", _prepend)
    register_transform("substr", _substr)
