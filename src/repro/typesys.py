"""Value typing shared by CPL type predicates and the inference engine.

Configuration values arrive as strings.  This module centralizes the
parsers that decide whether a string is a boolean, integer, IP address,
CIDR block, MAC address, path, URL, GUID, … and the detector that assigns
each value its most specific type.

The inference engine's *type ordering* (paper §4.5: "we define an ordering
on types and infer the type constraint of parameter A to be the
highest-order type (list of integer)") lives in
:mod:`repro.inference.typelattice` and builds on these detectors.
"""

from __future__ import annotations

import ipaddress
import re
from typing import Optional

__all__ = [
    "parse_bool",
    "parse_int",
    "parse_float",
    "parse_duration",
    "parse_ipv4",
    "parse_ipv6",
    "parse_cidr",
    "parse_mac",
    "parse_port",
    "parse_url",
    "parse_email",
    "parse_guid",
    "parse_ip_range",
    "is_path",
    "split_list",
    "detect_type",
    "SCALAR_TYPES",
]

_TRUE_WORDS = {"true", "yes", "on", "enabled"}
_FALSE_WORDS = {"false", "no", "off", "disabled"}

_MAC_RE = re.compile(r"^(?:[0-9A-Fa-f]{2}[:-]){5}[0-9A-Fa-f]{2}$")
_GUID_RE = re.compile(
    r"^\{?[0-9A-Fa-f]{8}-[0-9A-Fa-f]{4}-[0-9A-Fa-f]{4}"
    r"-[0-9A-Fa-f]{4}-[0-9A-Fa-f]{12}\}?$"
)
_URL_RE = re.compile(r"^[A-Za-z][A-Za-z0-9+.-]*://[^\s]+$")
_EMAIL_RE = re.compile(r"^[^@\s]+@[^@\s]+\.[^@\s]+$")
_WINDOWS_PATH_RE = re.compile(r"^(?:[A-Za-z]:\\|\\\\)[^|<>\"?]*$")
_UNIX_PATH_RE = re.compile(r"^(?:/|\./|\.\./)[^\0]*$")

#: Every scalar type name :func:`detect_type` can return, most specific first.
#: (``port`` is a CPL predicate but not a detected type — ``int`` subsumes it.)
SCALAR_TYPES = (
    "bool",
    "int",
    "float",
    "duration",
    "guid",
    "ipv4",
    "ipv6",
    "cidr",
    "mac",
    "ip_range",
    "url",
    "email",
    "path",
    "string",
)


def parse_bool(value: str) -> Optional[bool]:
    lowered = value.strip().lower()
    if lowered in _TRUE_WORDS:
        return True
    if lowered in _FALSE_WORDS:
        return False
    return None


def parse_int(value: str) -> Optional[int]:
    text = value.strip()
    if not text:
        return None
    try:
        return int(text, 10)
    except ValueError:
        return None


def parse_float(value: str) -> Optional[float]:
    text = value.strip()
    if not text:
        return None
    # Reject things float() accepts but no config author means as numbers.
    if text.lower() in ("nan", "inf", "-inf", "+inf", "infinity", "-infinity"):
        return None
    try:
        return float(text)
    except ValueError:
        return None


_DURATION_RE = re.compile(r"^(\d+(?:\.\d+)?)\s*(ms|s|m|h|d)$")
_DURATION_SECONDS = {"ms": 0.001, "s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def parse_duration(value: str) -> Optional[float]:
    """Parse ``30s`` / ``5m`` / ``1.5h`` / ``250ms`` into seconds."""
    match = _DURATION_RE.match(value.strip())
    if not match:
        return None
    quantity, unit = match.groups()
    return float(quantity) * _DURATION_SECONDS[unit]


def parse_ipv4(value: str) -> Optional[ipaddress.IPv4Address]:
    try:
        return ipaddress.IPv4Address(value.strip())
    except (ipaddress.AddressValueError, ValueError):
        return None


def parse_ipv6(value: str) -> Optional[ipaddress.IPv6Address]:
    try:
        return ipaddress.IPv6Address(value.strip())
    except (ipaddress.AddressValueError, ValueError):
        return None


def parse_cidr(value: str):
    """Parse a CIDR block (requires the ``/prefix`` part)."""
    text = value.strip()
    if "/" not in text:
        return None
    try:
        return ipaddress.ip_network(text, strict=False)
    except ValueError:
        return None


def parse_mac(value: str) -> Optional[str]:
    text = value.strip()
    if _MAC_RE.match(text):
        return text.lower().replace("-", ":")
    return None


def parse_port(value: str) -> Optional[int]:
    number = parse_int(value)
    if number is not None and 0 < number <= 65535:
        return number
    return None


def parse_url(value: str) -> Optional[str]:
    text = value.strip()
    return text if _URL_RE.match(text) else None


def parse_email(value: str) -> Optional[str]:
    text = value.strip()
    return text if _EMAIL_RE.match(text) else None


def parse_guid(value: str) -> Optional[str]:
    text = value.strip()
    return text.strip("{}").lower() if _GUID_RE.match(text) else None


def parse_ip_range(value: str):
    """Parse ``startip-endip`` into an (IPv4Address, IPv4Address) pair."""
    text = value.strip()
    if text.count("-") != 1:
        return None
    start_text, end_text = text.split("-")
    start = parse_ipv4(start_text)
    end = parse_ipv4(end_text)
    if start is None or end is None:
        return None
    return (start, end)


def is_path(value: str) -> bool:
    text = value.strip()
    if not text:
        return False
    return bool(_WINDOWS_PATH_RE.match(text) or _UNIX_PATH_RE.match(text))


def split_list(value: str, separators: str = ",;") -> Optional[list[str]]:
    """Split a delimited value; None when it is not list-shaped.

    A value is list-shaped when it contains at least one separator and every
    element is nonempty after stripping.
    """
    for separator in separators:
        if separator in value:
            parts = [part.strip() for part in value.split(separator)]
            if all(parts):
                return parts
            return None
    return None


_DETECTORS = (
    ("bool", parse_bool),
    ("int", parse_int),
    ("float", parse_float),
    ("duration", parse_duration),
    ("guid", parse_guid),
    ("ipv4", parse_ipv4),
    ("ipv6", parse_ipv6),
    ("cidr", parse_cidr),
    ("mac", parse_mac),
    ("ip_range", parse_ip_range),
    ("url", parse_url),
    ("email", parse_email),
)


def detect_type(value: str, allow_list: bool = True) -> str:
    """Assign the most specific type name to a raw configuration value.

    Lists are detected structurally: ``"10.0.0.1,10.0.0.2"`` reports
    ``"list<ipv4>"``.  Everything unclassified is ``"string"`` (empty values
    included — emptiness is a separate constraint in the paper's taxonomy,
    Figure 2).
    """
    text = value.strip()
    if not text:
        return "string"
    for name, parser in _DETECTORS:
        if parser(text) is not None:
            return name
    if is_path(text):
        return "path"
    if allow_list:
        parts = split_list(text)
        if parts is not None and len(parts) > 1:
            element_types = {detect_type(part, allow_list=False) for part in parts}
            element = element_types.pop() if len(element_types) == 1 else "string"
            return f"list<{element}>"
    return "string"
