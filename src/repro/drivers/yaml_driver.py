"""YAML driver (paper §4.2.2: "some use standard INI or YAML format").

Uses :mod:`yaml` (safe loader) for parsing and the shared mapping walker for
scope extraction, so YAML and JSON sources produce identical unified keys
for structurally identical data.

Multi-document streams (k8s-style ``---`` separators) parse into distinct
compartment scopes rather than silently taking the first document: each
document is wrapped in its own scope segment, named after its ``kind`` with
``metadata.name`` as the instance qualifier when present (the Kubernetes
convention), or an ordinal ``doc`` segment otherwise::

    kind: Deployment
    metadata: {name: frontend}
    replicas: 2
    ---
    kind: Service
    metadata: {name: frontend}
    port: 8080

yields ``Deployment::frontend.replicas`` and ``Service::frontend.port``.
A single-document stream is parsed exactly as before — no wrapping — so
existing sources keep their unified keys (and report fingerprints) intact.
"""

from __future__ import annotations

import yaml

from ..errors import DriverError
from .base import Driver, register_driver, scope_segments, walk_mapping
from ..repository.keys import InstanceSegment
from ..repository.model import ConfigInstance

__all__ = ["YAMLDriver"]


class YAMLDriver(Driver):
    format_name = "yaml"

    def parse(self, text: str, source: str = "", scope: str = "") -> list[ConfigInstance]:
        try:
            documents = [doc for doc in yaml.safe_load_all(text) if doc is not None]
        except yaml.YAMLError as exc:
            raise DriverError(f"malformed YAML in {source or '<string>'}: {exc}") from exc
        prefix = scope_segments(scope)
        if not documents:
            return []
        if len(documents) == 1:
            return self._parse_document(documents[0], prefix, source)
        out: list[ConfigInstance] = []
        for ordinal, document in enumerate(documents, start=1):
            out.extend(
                self._parse_document(
                    document,
                    prefix + (self._document_segment(document, ordinal),),
                    source,
                )
            )
        return out

    @staticmethod
    def _parse_document(document, prefix, source) -> list[ConfigInstance]:
        if not isinstance(document, (dict, list)):
            raise DriverError("top-level YAML must be a mapping or sequence")
        return walk_mapping(
            document if isinstance(document, dict) else {"Item": document},
            prefix,
            source,
        )

    @staticmethod
    def _document_segment(document, ordinal: int) -> InstanceSegment:
        """Scope segment for one document of a multi-document stream."""
        if isinstance(document, dict):
            kind = document.get("kind")
            if isinstance(kind, str) and kind:
                metadata = document.get("metadata")
                name = metadata.get("name") if isinstance(metadata, dict) else None
                if isinstance(name, str) and name:
                    return InstanceSegment(kind, name)
                return InstanceSegment(kind, None, ordinal)
        return InstanceSegment("doc", None, ordinal)


register_driver(YAMLDriver())
