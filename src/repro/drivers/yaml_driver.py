"""YAML driver (paper §4.2.2: "some use standard INI or YAML format").

Uses :mod:`yaml` (safe loader) for parsing and the shared mapping walker for
scope extraction, so YAML and JSON sources produce identical unified keys
for structurally identical data.
"""

from __future__ import annotations

import yaml

from ..errors import DriverError
from .base import Driver, register_driver, scope_segments, walk_mapping
from ..repository.model import ConfigInstance

__all__ = ["YAMLDriver"]


class YAMLDriver(Driver):
    format_name = "yaml"

    def parse(self, text: str, source: str = "", scope: str = "") -> list[ConfigInstance]:
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise DriverError(f"malformed YAML in {source or '<string>'}: {exc}") from exc
        if data is None:
            return []
        if not isinstance(data, (dict, list)):
            raise DriverError("top-level YAML must be a mapping or sequence")
        return walk_mapping(data if isinstance(data, dict) else {"Item": data},
                            scope_segments(scope), source)


register_driver(YAMLDriver())
