"""Dotenv-style environment-file driver (new config surface).

Hand-parsed ``KEY=VALUE`` lines in the common dotenv dialect:

* ``#`` comment lines and blank lines are skipped; an unquoted value may
  carry a trailing ``# comment``;
* an optional ``export `` prefix is stripped (shell-sourceable files);
* single-quoted values are literal; double-quoted values honor the usual
  backslash escapes (``\\n``, ``\\t``, ``\\"``, ``\\\\``, ``\\$``);
* underscores in key names double as scope separators only when a scope is
  *not* already encoded: keys are kept verbatim — ``DATABASE_URL`` stays one
  key, matching how operators grep their env files.

Duplicate keys become multiple instances of the same class and are
disambiguated by the store's ordinal bump, mirroring "last one wins with a
visible history" rather than silently dropping earlier assignments.
"""

from __future__ import annotations

from ..errors import DriverError
from ..repository.keys import InstanceKey, InstanceSegment
from ..repository.model import ConfigInstance
from .base import Driver, register_driver, scope_segments

__all__ = ["EnvFileDriver"]

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\", "$": "$"}


def _unescape(value: str, source: str, lineno: int) -> str:
    out: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\":
            if index + 1 >= len(value):
                raise DriverError(
                    f"{source or '<string>'}:{lineno}: dangling backslash "
                    f"at end of double-quoted value"
                )
            out.append(_ESCAPES.get(value[index + 1], value[index + 1]))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


class EnvFileDriver(Driver):
    format_name = "env"

    def parse(self, text: str, source: str = "", scope: str = "") -> list[ConfigInstance]:
        prefix = scope_segments(scope)
        out: list[ConfigInstance] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("export ") or line.startswith("export\t"):
                line = line[len("export "):].lstrip()
            index = line.find("=")
            if index <= 0:
                raise DriverError(
                    f"{source or '<string>'}:{lineno}: expected 'KEY=VALUE'"
                )
            key = line[:index].rstrip()
            if not key.replace("_", "").replace(".", "").isalnum():
                raise DriverError(
                    f"{source or '<string>'}:{lineno}: invalid key {key!r}"
                )
            value = line[index + 1:].strip()
            if value.startswith('"'):
                end = self._closing_quote(value, '"', source, lineno)
                value = _unescape(value[1:end], source, lineno)
            elif value.startswith("'"):
                end = self._closing_quote(value, "'", source, lineno)
                value = value[1:end]
            else:
                comment = value.find(" #")
                if comment >= 0:
                    value = value[:comment].rstrip()
            segments = tuple(InstanceSegment(part) for part in key.split("."))
            out.append(ConfigInstance(InstanceKey(prefix + segments), value, source))
        return out

    @staticmethod
    def _closing_quote(value: str, quote: str, source: str, lineno: int) -> int:
        index = 1
        while index < len(value):
            if quote == '"' and value[index] == "\\":
                index += 2
                continue
            if value[index] == quote:
                trailer = value[index + 1:].strip()
                if trailer and not trailer.startswith("#"):
                    raise DriverError(
                        f"{source or '<string>'}:{lineno}: unexpected text "
                        f"after closing quote: {trailer!r}"
                    )
                return index
            index += 1
        raise DriverError(
            f"{source or '<string>'}:{lineno}: unterminated {quote} quote"
        )


register_driver(EnvFileDriver())
