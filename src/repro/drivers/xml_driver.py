"""Generic XML settings driver (paper Listing 1, Table 2 row 1).

Parses hierarchical XML of the Azure-style shape::

    <CloudGroup Name="East1 Production">
      <Setting Key="MonitorNodeHealth" Value="True"/>
      <Cloud Name="East1Storage1">
        <Tenant Type="A">
          <Setting Key="MonitorNodeHealth" Value="False"/>
        </Tenant>
      </Cloud>
    </CloudGroup>

Mapping rules:

* every non-``Setting`` element is a scope segment; its named qualifier is
  taken from a ``Name``/``Type``/``Id`` attribute when present, otherwise the
  1-based sibling index among same-tag siblings becomes its ordinal;
* ``<Setting Key="K" Value="V"/>`` becomes parameter ``K = V`` under the
  enclosing scope path — this realizes the paper's tree-path extraction
  (``CloudGroup.Cloud.MonitorNodeHealth``);
* other attributes of scope elements (besides the qualifier attribute)
  become parameters of that scope;
* leaf elements with text content become parameters named after the tag.

**Inheritance expansion** (``expand_inheritance=True``): paper Listing 1
notes that "``MonitorNodeHealth`` is inherited by all ``Tenant`` scopes, some
of which override the value".  With expansion on, every setting defined at an
inner scope is materialized once per *leaf* scope beneath it, with the
nearest definition along the path winning.  This is what produces the
paper's high instance:class ratios (80:1 – 14,000:1) and is how the
synthetic Azure generator replays Figure 1's duplicate-and-customize shape.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections import Counter
from dataclasses import dataclass, field

from ..errors import DriverError
from ..repository.keys import InstanceKey, InstanceSegment
from ..repository.model import ConfigInstance
from .base import Driver, register_driver, scope_segments

__all__ = ["XMLDriver"]

_NAME_ATTRS = ("Name", "name", "Type", "type", "Id", "id")
_SETTING_TAGS = {"Setting", "setting", "Parameter", "parameter", "Property", "property"}
_KEY_ATTRS = ("Key", "key", "Name", "name")
_VALUE_ATTRS = ("Value", "value")


@dataclass
class _ScopeNode:
    """Internal scope tree used for inheritance expansion."""

    segment: InstanceSegment | None  # None for the synthetic root
    settings: dict[str, str] = field(default_factory=dict)
    attributes: dict[str, str] = field(default_factory=dict)
    children: list["_ScopeNode"] = field(default_factory=list)


class XMLDriver(Driver):
    format_name = "xml"

    def parse(
        self,
        text: str,
        source: str = "",
        scope: str = "",
        expand_inheritance: bool = False,
    ) -> list[ConfigInstance]:
        # Multiple root elements are common in config fragments (paper
        # Listing 1 has two CloudGroup roots); wrap before parsing.
        try:
            element = ET.fromstring(f"<__root__>{text}</__root__>")
        except ET.ParseError as exc:
            raise DriverError(f"malformed XML in {source or '<string>'}: {exc}") from exc
        tree = self._build_tree(element)
        prefix = scope_segments(scope)
        out: list[ConfigInstance] = []
        if expand_inheritance:
            self._emit_expanded(tree, prefix, {}, source, out)
        else:
            self._emit_raw(tree, prefix, source, out)
        return out

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------

    def _build_tree(self, element: ET.Element) -> _ScopeNode:
        root = _ScopeNode(None)
        self._fill_node(element, root, is_root=True)
        return root

    def _fill_node(self, element: ET.Element, node: _ScopeNode, is_root: bool) -> None:
        if not is_root:
            qualifier_attr = self._qualifier_attr(element)
            for attr, value in element.attrib.items():
                if attr != qualifier_attr:
                    node.attributes[attr] = value
        ordinals: Counter[str] = Counter()
        for child in element:
            tag = child.tag
            if tag in _SETTING_TAGS:
                key, value = self._setting_pair(child)
                node.settings[key] = value
                continue
            ordinals[tag] += 1
            segment = InstanceSegment(tag, self._qualifier(child), ordinals[tag])
            child_node = _ScopeNode(segment)
            node.children.append(child_node)
            if len(child) == 0 and not child.attrib and child.text and child.text.strip():
                # Leaf element with bare text: treat the tag as a parameter of
                # the *enclosing* scope rather than a nested scope.
                node.children.pop()
                node.settings[tag] = child.text.strip()
                continue
            self._fill_node(child, child_node, is_root=False)

    def _qualifier(self, element: ET.Element) -> str | None:
        for attr in _NAME_ATTRS:
            if attr in element.attrib:
                return element.attrib[attr]
        return None

    def _qualifier_attr(self, element: ET.Element) -> str | None:
        for attr in _NAME_ATTRS:
            if attr in element.attrib:
                return attr
        return None

    def _setting_pair(self, element: ET.Element) -> tuple[str, str]:
        key = None
        for attr in _KEY_ATTRS:
            if attr in element.attrib:
                key = element.attrib[attr]
                break
        if key is None:
            raise DriverError(f"<{element.tag}> element without a Key attribute")
        for attr in _VALUE_ATTRS:
            if attr in element.attrib:
                return key, element.attrib[attr]
        if element.text and element.text.strip():
            return key, element.text.strip()
        return key, ""

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _emit_raw(
        self,
        node: _ScopeNode,
        prefix: tuple[InstanceSegment, ...],
        source: str,
        out: list[ConfigInstance],
    ) -> None:
        path = prefix if node.segment is None else prefix + (node.segment,)
        for key, value in {**node.attributes, **node.settings}.items():
            out.append(
                ConfigInstance(InstanceKey(path + (InstanceSegment(key),)), value, source)
            )
        for child in node.children:
            self._emit_raw(child, path, source, out)

    def _emit_expanded(
        self,
        node: _ScopeNode,
        prefix: tuple[InstanceSegment, ...],
        inherited: dict[str, str],
        source: str,
        out: list[ConfigInstance],
    ) -> None:
        path = prefix if node.segment is None else prefix + (node.segment,)
        effective = {**inherited, **node.settings}
        # Attributes are identity-like (never inherited): emit at their scope.
        for key, value in node.attributes.items():
            out.append(
                ConfigInstance(InstanceKey(path + (InstanceSegment(key),)), value, source)
            )
        if node.children:
            for child in node.children:
                self._emit_expanded(child, path, effective, source, out)
        else:
            for key, value in effective.items():
                out.append(
                    ConfigInstance(
                        InstanceKey(path + (InstanceSegment(key),)), value, source
                    )
                )


register_driver(XMLDriver())
