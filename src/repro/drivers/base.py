"""Driver protocol and registry (paper Figure 3, Table 2).

A driver converts one configuration representation into the unified form: a
flat list of :class:`~repro.repository.model.ConfigInstance` objects.  The
paper maps language-level scopes onto sources in three ways (§4.2.2):

1. scopes already encoded in parameter names (key-value sources),
2. hierarchical formats parsed into tree-path scopes (XML, JSON, YAML),
3. an optional user-supplied scope prefixed to every parameter
   (the ``load 'source' as 'scope'`` form in CPL).

All drivers honor (3) through the ``scope`` argument.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

from ..errors import DriverError, UnknownDriverError
from ..observability import get_metrics
from ..repository.keys import InstanceKey, InstanceSegment, parse_pattern
from ..repository.model import ConfigInstance
from ..runtime import clock as _clock

__all__ = [
    "Driver",
    "register_driver",
    "get_driver",
    "driver_names",
    "scope_segments",
    "walk_mapping",
]

_REGISTRY: dict[str, "Driver"] = {}


class Driver:
    """Base class for configuration-format drivers."""

    #: Registry name, e.g. ``"xml"``.
    format_name = ""

    def parse(self, text: str, source: str = "", scope: str = "") -> list[ConfigInstance]:
        """Convert source text into unified configuration instances.

        ``source`` labels provenance in reports; ``scope`` optionally
        prefixes every produced key (paper §4.2.2 way 3).
        """
        raise NotImplementedError

    def parse_file(self, path: str, scope: str = "") -> list[ConfigInstance]:
        with open(path, "rb") as handle:
            return self.parse_bytes(handle.read(), source=path, scope=scope)

    def parse_bytes(
        self, raw: bytes, source: str = "", scope: str = ""
    ) -> list[ConfigInstance]:
        """Decode and parse raw bytes, converting every failure into a
        structured :class:`~repro.errors.DriverError`.

        This is the supervised entry point used by sessions and the
        continuous-validation service: truncated files, wrong encodings and
        binary garbage come back as typed errors carrying the source path,
        the driver format, and (for decode failures) the byte offset —
        never as a raw ``UnicodeDecodeError`` or a parser-internal crash.
        """
        metrics = get_metrics()
        started = _clock.now() if metrics.enabled else 0.0
        try:
            try:
                text = raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise DriverError(
                    f"source is not valid UTF-8 text ({exc.reason})",
                    path=source or None,
                    format_name=self.format_name,
                    offset=exc.start,
                ) from exc
            try:
                instances = self.parse(text, source=source, scope=scope)
            except DriverError as exc:
                raise exc.with_context(
                    path=source or None, format_name=self.format_name
                )
            except Exception as exc:
                raise DriverError(
                    f"unhandled {type(exc).__name__} while parsing: {exc}",
                    path=source or None,
                    format_name=self.format_name,
                ) from exc
        except DriverError:
            if metrics.enabled:
                metrics.counter(
                    "confvalley_driver_parse_errors_total",
                    "Source parse failures, by driver format.",
                ).inc(format=self.format_name)
            raise
        if metrics.enabled:
            metrics.histogram(
                "confvalley_driver_parse_seconds",
                "Per-source parse latency, by driver format (paper Table 2).",
            ).observe(_clock.now() - started, format=self.format_name)
        return instances


def register_driver(driver: Driver) -> Driver:
    """Register (or replace) a driver under its ``format_name``."""
    if not driver.format_name:
        raise DriverError("driver must declare a format_name")
    _REGISTRY[driver.format_name] = driver
    return driver


def get_driver(format_name: str) -> Driver:
    """Look up a registered driver; raises :class:`UnknownDriverError`."""
    try:
        return _REGISTRY[format_name]
    except KeyError:
        raise UnknownDriverError(
            f"no driver registered for format {format_name!r}; "
            f"known formats: {sorted(_REGISTRY)}"
        ) from None


def driver_names() -> list[str]:
    """All registered driver format names, sorted."""
    return sorted(_REGISTRY)


def scope_segments(scope: str) -> tuple[InstanceSegment, ...]:
    """Parse a user-supplied scope prefix into concrete instance segments."""
    if not scope:
        return ()
    pattern = parse_pattern(scope)
    segments = []
    for p in pattern.segments:
        if p.variables or "*" in p.name:
            raise DriverError(f"scope prefix cannot contain wildcards: {scope!r}")
        if p.kind == "named":
            segments.append(InstanceSegment(p.name, str(p.qualifier)))
        elif p.kind == "ordinal":
            segments.append(InstanceSegment(p.name, None, int(p.qualifier)))
        else:
            segments.append(InstanceSegment(p.name))
    return tuple(segments)


def _scalar(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def walk_mapping(
    data: Mapping,
    prefix: tuple[InstanceSegment, ...],
    source: str,
    name_attrs: Sequence[str] = ("name", "Name", "id", "Id"),
) -> list[ConfigInstance]:
    """Flatten nested mapping/list data into unified instances.

    Shared by the JSON, YAML and REST drivers.  Nested mappings become scope
    segments; lists of mappings become ordinal sibling scopes, using a
    name-ish attribute as the named qualifier when present; lists of scalars
    become multiple instances of the same key (the store disambiguates them
    by ordinal).
    """
    out: list[ConfigInstance] = []
    _walk_value(data, prefix, source, tuple(name_attrs), out)
    return out


def _walk_value(
    value: object,
    prefix: tuple[InstanceSegment, ...],
    source: str,
    name_attrs: tuple[str, ...],
    out: list[ConfigInstance],
) -> None:
    if isinstance(value, Mapping):
        for raw_key, child in value.items():
            key = str(raw_key)
            _walk_child(key, child, prefix, source, name_attrs, out)
    elif isinstance(value, (list, tuple)):
        for item in value:
            _walk_value(item, prefix, source, name_attrs, out)
    else:
        if not prefix:
            raise DriverError("top-level scalar has no key")
        out.append(ConfigInstance(InstanceKey(prefix), _scalar(value), source))


def _walk_child(
    key: str,
    child: object,
    prefix: tuple[InstanceSegment, ...],
    source: str,
    name_attrs: tuple[str, ...],
    out: list[ConfigInstance],
) -> None:
    if isinstance(child, Mapping):
        qualifier = None
        for attr in name_attrs:
            if attr in child:
                qualifier = str(child[attr])
                break
        scope = prefix + (InstanceSegment(key, qualifier),)
        _walk_value(child, scope, source, name_attrs, out)
    elif isinstance(child, (list, tuple)) and any(
        isinstance(item, Mapping) for item in child
    ):
        for ordinal, item in enumerate(child, start=1):
            if isinstance(item, Mapping):
                qualifier = None
                for attr in name_attrs:
                    if attr in item:
                        qualifier = str(item[attr])
                        break
                scope = prefix + (InstanceSegment(key, qualifier, ordinal),)
                _walk_value(item, scope, source, name_attrs, out)
            else:
                scope = prefix + (InstanceSegment(key, None, ordinal),)
                out.append(ConfigInstance(InstanceKey(scope), _scalar(item), source))
    else:
        _walk_value(child, prefix + (InstanceSegment(key),), source, name_attrs, out)
