"""JSON driver: nested objects become scope paths.

Lists of objects become ordinal sibling scopes (named when the object has a
name-ish attribute); lists of scalars become multiple instances of the same
configuration class, disambiguated by the store.
"""

from __future__ import annotations

import json

from ..errors import DriverError
from .base import Driver, register_driver, scope_segments, walk_mapping
from ..repository.model import ConfigInstance

__all__ = ["JSONDriver"]


class JSONDriver(Driver):
    format_name = "json"

    def parse(self, text: str, source: str = "", scope: str = "") -> list[ConfigInstance]:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DriverError(f"malformed JSON in {source or '<string>'}: {exc}") from exc
        if not isinstance(data, (dict, list)):
            raise DriverError("top-level JSON must be an object or array")
        return walk_mapping(data if isinstance(data, dict) else {"Item": data},
                            scope_segments(scope), source)


register_driver(JSONDriver())
