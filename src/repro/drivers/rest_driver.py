"""Simulated REST driver (paper §4.2.2: "key-value stores or REST APIs").

The paper's CPL example loads live endpoints::

    load 'runninginstance' '10.119.64.74:443'

This environment has no network, so the driver resolves URLs against an
in-process endpoint registry (DESIGN.md substitution table).  Payloads are
JSON-shaped Python objects; the shared mapping walker converts them exactly
as the JSON driver would, so the validation engine sees no difference
between a registered fake endpoint and a real one.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import DriverError
from ..repository.model import ConfigInstance
from .base import Driver, register_driver, scope_segments, walk_mapping

__all__ = ["RESTDriver", "register_endpoint", "clear_endpoints"]

_ENDPOINTS: dict[str, object] = {}


def register_endpoint(url: str, payload: object) -> None:
    """Publish a JSON-shaped payload at a fake endpoint URL."""
    _ENDPOINTS[url] = payload


def clear_endpoints() -> None:
    _ENDPOINTS.clear()


class RESTDriver(Driver):
    format_name = "rest"

    def parse(self, text: str, source: str = "", scope: str = "") -> list[ConfigInstance]:
        """``text`` is the endpoint URL (what follows ``load`` in CPL)."""
        url = text.strip()
        if url not in _ENDPOINTS:
            raise DriverError(
                f"endpoint {url!r} is not registered; "
                "use repro.drivers.register_endpoint() first"
            )
        payload = _ENDPOINTS[url]
        if not isinstance(payload, (Mapping, list)):
            raise DriverError(f"endpoint {url!r} payload must be an object or array")
        data = payload if isinstance(payload, Mapping) else {"Item": payload}
        return walk_mapping(data, scope_segments(scope), source or url)

    def parse_file(self, path: str, scope: str = "") -> list[ConfigInstance]:
        # For the REST driver the "path" is the endpoint URL itself.
        return self.parse(path, source=path, scope=scope)


register_driver(RESTDriver())
