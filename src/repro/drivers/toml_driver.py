"""TOML driver (new config surface; ConfEx-style multi-format discovery).

Uses the stdlib :mod:`tomllib` parser and the shared mapping walker, so TOML
tables produce the same unified keys as structurally identical JSON/YAML::

    [service.frontend]
    port = 8080

yields ``service.frontend.port``.  Arrays of tables become ordinal sibling
scopes (with a name-ish attribute promoted to the qualifier when present),
exactly like lists of mappings in the JSON and YAML drivers.
"""

from __future__ import annotations

import tomllib

from ..errors import DriverError
from ..repository.model import ConfigInstance
from .base import Driver, register_driver, scope_segments, walk_mapping

__all__ = ["TOMLDriver"]


class TOMLDriver(Driver):
    format_name = "toml"

    def parse(self, text: str, source: str = "", scope: str = "") -> list[ConfigInstance]:
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise DriverError(
                f"malformed TOML in {source or '<string>'}: {exc}"
            ) from exc
        return walk_mapping(data, scope_segments(scope), source)


register_driver(TOMLDriver())
