"""Flat key-value driver (paper §4.2.2 way 1: scopes encoded in names).

Parses ``a.b.c = value`` lines where the dotted key already encodes the
scope path — the driver "directly extracts the scope information" as the
paper describes.  Instance qualifiers may appear inline using CPL notation
(``Fabric::inst1.RecoveryAttempts = 3``).  Lines starting with ``#`` or
``//`` are comments; blank lines are ignored.  CloudStack's global settings
table is this shape.
"""

from __future__ import annotations

from ..errors import DriverError
from ..repository.keys import InstanceKey
from ..repository.model import ConfigInstance
from .base import Driver, register_driver, scope_segments

__all__ = ["KeyValueDriver"]


class KeyValueDriver(Driver):
    format_name = "keyvalue"

    def parse(self, text: str, source: str = "", scope: str = "") -> list[ConfigInstance]:
        prefix = scope_segments(scope)
        out: list[ConfigInstance] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#") or line.startswith("//"):
                continue
            index = line.find("=")
            if index <= 0:
                raise DriverError(
                    f"{source or '<string>'}:{lineno}: expected 'key = value'"
                )
            key_text = line[:index].strip()
            value = line[index + 1:].strip()
            segments = scope_segments(key_text)
            out.append(ConfigInstance(InstanceKey(prefix + segments), value, source))
        return out


register_driver(KeyValueDriver())
