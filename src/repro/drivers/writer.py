"""Writers: serialize the unified representation back to source formats.

Drivers read diverse formats *into* the unified representation; writers go
the other way, which the branch tooling needs (persisting a repaired
snapshot, exporting a branch for review) and which gives tests a strong
round-trip property: ``parse(write(store)) == store``.

The key-value format is the only one that can represent every unified key
losslessly (named qualifiers, ordinals, arbitrary depth), so it is the
canonical writer.  The INI writer handles the two-level subset and refuses
anything deeper.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from ..errors import DriverError
from ..repository.model import ConfigInstance
from ..repository.store import ConfigStore

__all__ = ["to_keyvalue", "to_ini"]


def _instances(source) -> list[ConfigInstance]:
    if isinstance(source, ConfigStore):
        return list(source.instances())
    return list(source)


def to_keyvalue(source) -> str:
    """Render a store (or instance iterable) as canonical key-value lines.

    Lossless: ``get_driver('keyvalue').parse(to_keyvalue(store))`` rebuilds
    the same keys and values (ordinal-only segments round-trip through the
    store's duplicate-key handling).
    """
    lines = []
    for instance in _instances(source):
        value = instance.value
        if "\n" in value:
            raise DriverError(
                f"key-value format cannot hold multi-line value at {instance.key}"
            )
        rendered = instance.key.render()
        # the key-value reader splits at the first '=', so the key side
        # (including quoted qualifiers) must not contain one
        if "=" in rendered or "\n" in rendered:
            raise DriverError(
                f"key-value format cannot represent key {rendered!r}"
            )
        lines.append(f"{rendered} = {value}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_ini(source) -> str:
    """Render a store as INI, grouping by the scope path.

    Only representable stores are accepted: every key must have at least a
    leaf name, scope qualifiers join into the section header using CPL
    notation (the INI driver parses it back), and leaf names must be unique
    within a section.
    """
    sections: dict[str, list[tuple[str, str]]] = defaultdict(list)
    for instance in _instances(source):
        scope_segments = instance.key.segments[:-1]
        section = ".".join(segment.render() for segment in scope_segments)
        leaf = instance.key.segments[-1]
        if leaf.qualifier is not None or leaf.ordinal != 1:
            raise DriverError(
                f"INI cannot represent qualified leaf {instance.key.render()!r}"
            )
        if "\n" in instance.value:
            raise DriverError(
                f"INI cannot hold multi-line value at {instance.key}"
            )
        sections[section].append((leaf.name, instance.value))
    lines = []
    for section in sorted(sections):
        pairs = sections[section]
        names = [name for name, __ in pairs]
        if len(set(names)) != len(names):
            raise DriverError(
                f"INI section {section!r} would hold duplicate keys"
            )
        if section:
            lines.append(f"[{section}]")
        for name, value in pairs:
            lines.append(f"{name} = {value}")
    return "\n".join(lines) + ("\n" if lines else "")
