"""Configuration-format drivers producing the unified representation."""

from .base import Driver, driver_names, get_driver, register_driver
from .csv_driver import CSVDriver
from .env_driver import EnvFileDriver
from .ini_driver import INIDriver
from .json_driver import JSONDriver
from .keyvalue_driver import KeyValueDriver
from .rest_driver import RESTDriver, clear_endpoints, register_endpoint
from .toml_driver import TOMLDriver
from .writer import to_ini, to_keyvalue
from .xml_driver import XMLDriver
from .yaml_driver import YAMLDriver

__all__ = [
    "Driver",
    "driver_names",
    "get_driver",
    "register_driver",
    "XMLDriver",
    "INIDriver",
    "KeyValueDriver",
    "JSONDriver",
    "YAMLDriver",
    "TOMLDriver",
    "EnvFileDriver",
    "CSVDriver",
    "RESTDriver",
    "register_endpoint",
    "clear_endpoints",
    "to_keyvalue",
    "to_ini",
]
