"""CSV driver: tabular configuration exports.

Header row gives parameter names; every data row becomes one ordinal record
scope (default name ``Record``, overridable by the ``scope`` argument's last
segment when it ends with ``[]``, e.g. ``scope="LoadBalancer[]"``).  When a
column is literally named ``Name`` its value becomes the record's named
qualifier — this matches how device inventories (e.g. load-balancer tables,
paper Listing 3) are exported.
"""

from __future__ import annotations

import csv
import io

from ..errors import DriverError
from ..repository.keys import InstanceKey, InstanceSegment
from ..repository.model import ConfigInstance
from .base import Driver, register_driver, scope_segments

__all__ = ["CSVDriver"]


class CSVDriver(Driver):
    format_name = "csv"

    def parse(self, text: str, source: str = "", scope: str = "") -> list[ConfigInstance]:
        record_name = "Record"
        if scope.endswith("[]"):
            scope, __, record_name = scope[:-2].rpartition(".")
            if not record_name:
                raise DriverError("empty record scope")
        prefix = scope_segments(scope)
        reader = csv.reader(io.StringIO(text))
        try:
            rows = [row for row in reader if row and any(cell.strip() for cell in row)]
        except csv.Error as exc:
            raise DriverError(
                f"malformed CSV in {source or '<string>'}: {exc}"
            ) from exc
        if not rows:
            return []
        header = [cell.strip() for cell in rows[0]]
        name_column = header.index("Name") if "Name" in header else None
        out: list[ConfigInstance] = []
        for ordinal, row in enumerate(rows[1:], start=1):
            if len(row) != len(header):
                raise DriverError(
                    f"{source or '<string>'}: row {ordinal} has {len(row)} cells, "
                    f"expected {len(header)}"
                )
            qualifier = row[name_column].strip() if name_column is not None else None
            record = prefix + (InstanceSegment(record_name, qualifier, ordinal),)
            for column, cell in zip(header, row):
                out.append(
                    ConfigInstance(
                        InstanceKey(record + (InstanceSegment(column),)),
                        cell.strip(),
                        source,
                    )
                )
        return out


register_driver(CSVDriver())
