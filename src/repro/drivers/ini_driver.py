"""INI driver (paper §4.2.2: "some use standard INI or YAML format").

Hand-parsed rather than :mod:`configparser` so key case is preserved (Azure
parameter names are CamelCase) and so dotted section names can expand into
multi-segment scopes::

    [fabric.controller]
    RecoveryAttempts = 3

yields ``fabric.controller.RecoveryAttempts``.  A section may also carry an
instance qualifier using CPL notation (``[Cloud::East1]``).  Keys before any
section header live at top level (under the optional user scope).
Duplicate keys in one section become multiple instances of the same class —
OpenStack's ``MultiStrOpt`` behaves this way.
"""

from __future__ import annotations

from ..errors import DriverError
from ..repository.keys import InstanceKey, InstanceSegment
from ..repository.model import ConfigInstance
from .base import Driver, register_driver, scope_segments

__all__ = ["INIDriver"]


class INIDriver(Driver):
    format_name = "ini"

    def parse(self, text: str, source: str = "", scope: str = "") -> list[ConfigInstance]:
        prefix = scope_segments(scope)
        section: tuple[InstanceSegment, ...] = ()
        out: list[ConfigInstance] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith(("#", ";")):
                continue
            if line.startswith("["):
                if not line.endswith("]"):
                    raise DriverError(
                        f"{source or '<string>'}:{lineno}: unterminated section header"
                    )
                section = scope_segments(line[1:-1].strip())
                continue
            for separator in ("=", ":"):
                index = line.find(separator)
                if index > 0:
                    key = line[:index].strip()
                    value = line[index + 1:].strip()
                    break
            else:
                raise DriverError(
                    f"{source or '<string>'}:{lineno}: expected 'key = value'"
                )
            key_segments = tuple(InstanceSegment(part) for part in key.split("."))
            out.append(
                ConfigInstance(
                    InstanceKey(prefix + section + key_segments), value, source
                )
            )
        return out


register_driver(INIDriver())
