"""Inferred constraint objects and their CPL rendering (paper §4.5).

"The constraints we can currently infer include data types, non-emptiness,
value range, enumeration elements, equality among multiple parameters,
uniqueness, and consistency."

Each constraint knows the configuration class it applies to and renders
itself as one CPL specification line, so the inference engine's output is a
plain ``.cpl`` file that feeds straight into a validation session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

__all__ = [
    "Constraint",
    "TypeConstraint",
    "NonEmptyConstraint",
    "RangeConstraint",
    "EnumConstraint",
    "UniquenessConstraint",
    "ConsistencyConstraint",
    "EqualityConstraint",
    "KIND_NAMES",
]

#: Table 5 column labels, in paper order.
KIND_NAMES = ("type", "nonempty", "range", "equality", "consistency", "uniqueness", "enum")


def _notation(class_key: tuple[str, ...]) -> str:
    return "$" + ".".join(class_key)


def _quote(value: str) -> str:
    return "'" + str(value).replace("\\", "\\\\").replace("'", "\\'") + "'"


@dataclass(frozen=True)
class Constraint:
    """Base class: a mined property of one configuration class."""

    class_key: tuple[str, ...]

    kind = "constraint"

    def to_cpl(self) -> str:
        raise NotImplementedError


#: CPL predicate names for detected types (scalar and list forms).
_TYPE_TO_PREDICATE = {
    "bool": "bool",
    "int": "int",
    "float": "float",
    "duration": "duration",
    "guid": "guid",
    "ipv4": "ip",
    "ipv6": "ipv6",
    "cidr": "cidr",
    "mac": "mac",
    "ip_range": "iprange",
    "url": "url",
    "email": "email",
    "path": "path",
}


@dataclass(frozen=True)
class TypeConstraint(Constraint):
    type_name: str = "string"
    #: the training sample contained empty values: typing only applies to
    #: nonempty instances (emptiness is a separate constraint, Figure 2)
    allow_empty: bool = False

    kind = "type"

    def predicate_name(self) -> str:
        name = self.type_name
        if name.startswith("list<") and name.endswith(">"):
            element = name[5:-1]
            mapped = _TYPE_TO_PREDICATE.get(element)
            return f"list_{mapped}" if mapped else "string"
        return _TYPE_TO_PREDICATE.get(name, "string")

    def to_cpl(self) -> str:
        predicate = self.predicate_name()
        if self.allow_empty:
            predicate = f"~nonempty | {predicate}"
        return f"{_notation(self.class_key)} -> {predicate}"


@dataclass(frozen=True)
class NonEmptyConstraint(Constraint):
    kind = "nonempty"

    def to_cpl(self) -> str:
        return f"{_notation(self.class_key)} -> nonempty"


@dataclass(frozen=True)
class RangeConstraint(Constraint):
    low: Union[int, float] = 0
    high: Union[int, float] = 0

    kind = "range"

    def to_cpl(self) -> str:
        return f"{_notation(self.class_key)} -> [{self.low}, {self.high}]"


@dataclass(frozen=True)
class EnumConstraint(Constraint):
    values: tuple[str, ...] = ()

    kind = "enum"

    def to_cpl(self) -> str:
        members = ", ".join(_quote(v) for v in sorted(self.values))
        return f"{_notation(self.class_key)} -> {{{members}}}"


@dataclass(frozen=True)
class UniquenessConstraint(Constraint):
    kind = "uniqueness"

    def to_cpl(self) -> str:
        return f"{_notation(self.class_key)} -> unique"


@dataclass(frozen=True)
class ConsistencyConstraint(Constraint):
    kind = "consistency"

    def to_cpl(self) -> str:
        return f"{_notation(self.class_key)} -> consistent"


@dataclass(frozen=True)
class EqualityConstraint(Constraint):
    """``class_key``'s values must stay within ``other``'s value set.

    Rendered as set membership (``$A -> {$B}``) rather than ``== $B``: the
    two classes were clustered because their *distinct value sets* coincide,
    and membership is the strongest constraint that the clustered training
    data itself satisfies when those sets have more than one element.
    """

    other: tuple[str, ...] = ()

    kind = "equality"

    def to_cpl(self) -> str:
        return f"{_notation(self.class_key)} -> {{{_notation(self.other)}}}"
