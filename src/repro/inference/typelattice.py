"""Type ordering for inference (paper §4.5).

"Some instances of parameter A may be integer values while other instances
are comma-separated list of integers.  In this case, we define an ordering
on types and infer the type constraint of parameter A to be the
highest-order type (list of integer)."

The lattice is the least-upper-bound closure of:

* ``int ⊑ float`` (every int parses as a float),
* ``T ⊑ list<T>`` (a scalar is a one-element list),
* everything ⊑ ``string`` (the top / default type),

with ``lub`` joining along those edges.  ``lub`` is idempotent, commutative
and associative (property-tested), so folding it over a noisy instance
sample is order-independent.
"""

from __future__ import annotations

from functools import reduce
from typing import Iterable

from ..typesys import detect_type

__all__ = ["lub", "join_all", "infer_value_type", "is_list_type", "element_type"]

#: scalar widenings: child -> parent (single step)
_WIDENS_TO = {
    "int": "float",
    "bool": "string",
    "float": "string",
    "duration": "string",
    "guid": "string",
    "ipv4": "string",
    "ipv6": "string",
    "cidr": "string",
    "mac": "string",
    "ip_range": "string",
    "url": "string",
    "email": "string",
    "path": "string",
}


def is_list_type(name: str) -> bool:
    return name.startswith("list<") and name.endswith(">")


def element_type(name: str) -> str:
    return name[5:-1] if is_list_type(name) else name


def _scalar_lub(a: str, b: str) -> str:
    if a == b:
        return a
    # walk each up the widening chain; meet at the first common ancestor
    ancestors_of_a = {a}
    cursor = a
    while cursor in _WIDENS_TO:
        cursor = _WIDENS_TO[cursor]
        ancestors_of_a.add(cursor)
    cursor = b
    while True:
        if cursor in ancestors_of_a:
            return cursor
        if cursor not in _WIDENS_TO:
            return "string"
        cursor = _WIDENS_TO[cursor]


def lub(a: str, b: str) -> str:
    """Least upper bound of two detected type names."""
    if a == b:
        return a
    if is_list_type(a) or is_list_type(b):
        return f"list<{_scalar_lub(element_type(a), element_type(b))}>"
    return _scalar_lub(a, b)


def join_all(types: Iterable[str]) -> str:
    """Fold :func:`lub` over a collection (``string`` for an empty one)."""
    items = list(types)
    if not items:
        return "string"
    return reduce(lub, items)


def infer_value_type(values: Iterable[str]) -> str:
    """The highest-order type covering every sampled value.

    Empty values are excluded from typing — emptiness is a separate
    constraint (nonempty) in the paper's taxonomy.
    """
    return join_all(detect_type(v) for v in values if v.strip())
