"""White-box constraint extraction from application source code.

Paper §4.5 contrasts black-box mining with white-box approaches that "use
static analysis to infer configuration constraints from source code
[SPEX, Rabkin & Katz]" — more accurate, but hard to scale — and §6.3 plans
"to explore whether the heavy-weight white-box solutions can be efficiently
combined in our inference component to improve accuracy."

This module implements that combination for Python application code.  The
extractor walks a module's AST looking for configuration reads and the
guards the application itself enforces:

* **reads** — ``config["Key"]``, ``config.get("Key")``,
  ``config.get("Key", default)`` (any receiver name containing ``conf`` or
  ``cfg`` or ``settings``); a cast wrapping the read (``int(…)``,
  ``float(…)``) contributes a type constraint, as does a typed default;
* **guards** — within the same function, comparisons between a variable
  bound to a config read and literals:

  - ``assert expr`` → ``expr`` must hold (the constraint itself),
  - ``if expr: raise …`` → ``expr`` is the *failure* condition, so the
    constraint is its negation,

  yielding range bounds (``<``, ``<=``, ``>``, ``>=``), enumerations
  (``in ("a", "b")``, ``== "x"``) and non-emptiness (``not v`` failing).

The result is a set of :class:`~repro.inference.constraints.Constraint`
objects keyed by parameter name; :func:`combine` merges them into a
black-box :class:`~repro.inference.engine.InferenceResult`, with the
code-derived constraint *winning* on conflicts — code bounds are
authoritative where observed data merely samples (the paper's inferred-
range false positives come exactly from under-sampled observations).
"""

from __future__ import annotations

import ast as pyast
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from .constraints import (
    Constraint,
    EnumConstraint,
    NonEmptyConstraint,
    RangeConstraint,
    TypeConstraint,
)
from .engine import InferenceResult

__all__ = ["WhiteBoxExtractor", "extract_constraints", "combine"]

_CONFIG_RECEIVERS = ("conf", "cfg", "settings", "options", "params")
_CASTS = {"int": "int", "float": "float", "str": "string", "bool": "bool"}


def _is_config_receiver(node: pyast.expr) -> bool:
    name = ""
    if isinstance(node, pyast.Name):
        name = node.id
    elif isinstance(node, pyast.Attribute):
        name = node.attr
    return any(marker in name.lower() for marker in _CONFIG_RECEIVERS)


def _config_key_of(node: pyast.expr) -> Optional[tuple[str, Optional[str]]]:
    """If ``node`` reads a config key, return (key, default-type)."""
    # config["Key"]
    if isinstance(node, pyast.Subscript) and _is_config_receiver(node.value):
        index = node.slice
        if isinstance(index, pyast.Constant) and isinstance(index.value, str):
            return index.value, None
    # config.get("Key"[, default])
    if (
        isinstance(node, pyast.Call)
        and isinstance(node.func, pyast.Attribute)
        and node.func.attr == "get"
        and _is_config_receiver(node.func.value)
        and node.args
        and isinstance(node.args[0], pyast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        default_type = None
        if len(node.args) > 1 and isinstance(node.args[1], pyast.Constant):
            default = node.args[1].value
            if isinstance(default, bool):
                default_type = "bool"
            elif isinstance(default, int):
                default_type = "int"
            elif isinstance(default, float):
                default_type = "float"
        return node.args[0].value, default_type
    return None


@dataclass
class _KeyFacts:
    """Constraints accumulated for one configuration key."""

    type_name: Optional[str] = None
    low: Optional[float] = None
    high: Optional[float] = None
    enum: Optional[tuple] = None
    nonempty: bool = False
    is_list: bool = False  # code splits the value: its true type is a list

    def to_constraints(self, class_key: tuple[str, ...]) -> list[Constraint]:
        out: list[Constraint] = []
        if self.is_list:
            # element type unknown statically; `combine` refines it using
            # the black-box element observation (the paper's scalar-vs-list
            # false-positive mechanism, resolved by code evidence)
            out.append(TypeConstraint(class_key, "list<unknown>"))
        elif self.type_name and self.type_name != "string":
            out.append(TypeConstraint(class_key, self.type_name))
        if self.nonempty:
            out.append(NonEmptyConstraint(class_key))
        if self.low is not None and self.high is not None:
            low, high = self.low, self.high
            if self.type_name == "int":
                low, high = int(low), int(high)
            out.append(RangeConstraint(class_key, low, high))
        if self.enum is not None:
            out.append(EnumConstraint(class_key, tuple(sorted(map(str, self.enum)))))
        return out


class WhiteBoxExtractor:
    """Extracts configuration constraints from Python application source."""

    def __init__(self) -> None:
        self.facts: dict[str, _KeyFacts] = {}

    # ------------------------------------------------------------------

    def extract(self, source: str, filename: str = "<source>") -> None:
        tree = pyast.parse(source, filename=filename)
        for function in [
            node
            for node in pyast.walk(tree)
            if isinstance(node, (pyast.FunctionDef, pyast.AsyncFunctionDef, pyast.Module))
        ]:
            self._extract_scope(function)

    def constraints(self) -> list[Constraint]:
        out: list[Constraint] = []
        for key, facts in sorted(self.facts.items()):
            out.extend(facts.to_constraints((key,)))
        return out

    # ------------------------------------------------------------------

    def _facts(self, key: str) -> _KeyFacts:
        return self.facts.setdefault(key, _KeyFacts())

    def _extract_scope(self, scope) -> None:
        bindings: dict[str, str] = {}  # local var -> config key
        body = getattr(scope, "body", [])
        for statement in body:
            self._scan_statement(statement, bindings)

    def _scan_statement(self, statement, bindings: dict[str, str]) -> None:
        if isinstance(statement, pyast.Assign) and len(statement.targets) == 1:
            target = statement.targets[0]
            if isinstance(target, pyast.Name):
                self._record_read(statement.value, target.id, bindings)
        elif isinstance(statement, pyast.For):
            # `for x in cfg["K"].split(",")`: the value's true type is a list
            self._record_split(statement.iter)
        elif isinstance(statement, pyast.Assert):
            self._record_guard(statement.test, bindings, holds=True)
        elif isinstance(statement, pyast.If) and _raises(statement.body):
            self._record_guard(statement.test, bindings, holds=False)
        # recurse through simple control flow so guards in branches count
        for child_list in ("body", "orelse", "finalbody"):
            for child in getattr(statement, child_list, []) or []:
                if isinstance(child, pyast.stmt):
                    self._scan_statement(child, bindings)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def _record_split(self, node) -> None:
        if (
            isinstance(node, pyast.Call)
            and isinstance(node.func, pyast.Attribute)
            and node.func.attr == "split"
        ):
            read = _config_key_of(node.func.value)
            if read is not None:
                self._facts(read[0]).is_list = True

    def _record_read(self, value, var_name: str, bindings: dict[str, str]) -> None:
        self._record_split(value)
        cast = None
        node = value
        if (
            isinstance(node, pyast.Call)
            and isinstance(node.func, pyast.Name)
            and node.func.id in _CASTS
            and node.args
        ):
            cast = _CASTS[node.func.id]
            node = node.args[0]
        read = _config_key_of(node)
        if read is None:
            return
        key, default_type = read
        bindings[var_name] = key
        facts = self._facts(key)
        type_name = cast or default_type
        if type_name:
            facts.type_name = type_name

    # ------------------------------------------------------------------
    # guards
    # ------------------------------------------------------------------

    def _record_guard(self, test, bindings: dict[str, str], holds: bool) -> None:
        """Record ``test`` (or its negation when ``holds`` is False)."""
        if isinstance(test, pyast.UnaryOp) and isinstance(test.op, pyast.Not):
            self._record_guard(test.operand, bindings, holds=not holds)
            return
        if isinstance(test, pyast.BoolOp) and isinstance(test.op, pyast.And) and holds:
            for value in test.values:
                self._record_guard(value, bindings, holds=True)
            return
        if isinstance(test, pyast.BoolOp) and isinstance(test.op, pyast.Or) and not holds:
            # `if a or b: raise` → neither may hold → record ¬a and ¬b
            for value in test.values:
                self._record_guard(value, bindings, holds=False)
            return
        if isinstance(test, pyast.Name):
            # `assert v` / `if not v: raise` (holds=True after Not-flip):
            # the config value must be truthy → nonempty
            if holds and test.id in bindings:
                self._facts(bindings[test.id]).nonempty = True
            return
        if isinstance(test, pyast.Compare) and len(test.ops) == 1:
            self._record_comparison(
                test.left, test.ops[0], test.comparators[0], bindings, holds
            )
            return
        if isinstance(test, pyast.Compare) and len(test.ops) == 2 and holds:
            # lo <= v <= hi
            left, middle, right = test.left, test.comparators[0], test.comparators[1]
            self._record_comparison(left, test.ops[0], middle, bindings, True)
            self._record_comparison(middle, test.ops[1], right, bindings, True)

    def _record_comparison(self, left, op, right, bindings, holds: bool) -> None:
        key, literal, flipped = self._key_and_literal(left, right, bindings)
        if key is None:
            return
        facts = self._facts(key)
        # normalize to: <var> OP <literal>
        if not holds:
            negated = _NEGATED.get(type(op))
            if negated is None:
                return
            op = negated()
        if flipped:
            flipped_op = _FLIPPED.get(type(op))
            if flipped_op is None:
                return
            op = flipped_op()
        if isinstance(op, (pyast.In,)) and isinstance(literal, (tuple, list, set, frozenset)):
            facts.enum = tuple(literal)
            return
        if isinstance(op, pyast.Eq) and isinstance(literal, str):
            existing = set(facts.enum or ())
            existing.add(literal)
            facts.enum = tuple(existing)
            return
        if not isinstance(literal, (int, float)) or isinstance(literal, bool):
            return
        if isinstance(op, pyast.LtE):
            facts.high = literal if facts.high is None else min(facts.high, literal)
        elif isinstance(op, pyast.Lt):
            facts.high = literal - 1 if facts.high is None else min(facts.high, literal - 1)
        elif isinstance(op, pyast.GtE):
            facts.low = literal if facts.low is None else max(facts.low, literal)
        elif isinstance(op, pyast.Gt):
            facts.low = literal + 1 if facts.low is None else max(facts.low, literal + 1)

    def _key_and_literal(self, left, right, bindings):
        """Resolve (config key, literal value, flipped?) from a comparison."""
        key = self._resolve_key(left, bindings)
        if key is not None and isinstance(right, (pyast.Constant, pyast.Tuple,
                                                  pyast.List, pyast.Set)):
            return key, _literal_value(right), False
        key = self._resolve_key(right, bindings)
        if key is not None and isinstance(left, pyast.Constant):
            return key, _literal_value(left), True
        return None, None, False

    def _resolve_key(self, node, bindings) -> Optional[str]:
        if isinstance(node, pyast.Name):
            return bindings.get(node.id)
        if (
            isinstance(node, pyast.Call)
            and isinstance(node.func, pyast.Name)
            and node.func.id in _CASTS
            and node.args
        ):
            return self._resolve_key(node.args[0], bindings)
        read = _config_key_of(node)
        return read[0] if read else None


_NEGATED = {
    pyast.Lt: pyast.GtE,
    pyast.LtE: pyast.Gt,
    pyast.Gt: pyast.LtE,
    pyast.GtE: pyast.Lt,
    pyast.NotIn: pyast.In,
    pyast.NotEq: pyast.Eq,
}

_FLIPPED = {
    pyast.Lt: pyast.Gt,
    pyast.LtE: pyast.GtE,
    pyast.Gt: pyast.Lt,
    pyast.GtE: pyast.LtE,
    pyast.Eq: pyast.Eq,
    pyast.In: pyast.In,
}


def _literal_value(node):
    if isinstance(node, pyast.Constant):
        return node.value
    if isinstance(node, (pyast.Tuple, pyast.List, pyast.Set)):
        values = []
        for element in node.elts:
            if not isinstance(element, pyast.Constant):
                return None
            values.append(element.value)
        return tuple(values)
    return None


def _raises(body) -> bool:
    return any(isinstance(statement, (pyast.Raise, pyast.Return)) for statement in body)


# ---------------------------------------------------------------------------
# Public helpers
# ---------------------------------------------------------------------------


def extract_constraints(sources: Union[str, Iterable[str]]) -> list[Constraint]:
    """Extract constraints from one or many Python source texts."""
    extractor = WhiteBoxExtractor()
    if isinstance(sources, str):
        sources = [sources]
    for index, source in enumerate(sources):
        extractor.extract(source, filename=f"<source {index}>")
    return extractor.constraints()


def combine(
    blackbox: InferenceResult, whitebox: Iterable[Constraint]
) -> InferenceResult:
    """Merge white-box constraints into a black-box inference result.

    White-box constraints are keyed by bare parameter name; they attach to
    every black-box class whose leaf matches.  On a conflict for the same
    (class, kind), the code-derived constraint replaces the observed one —
    code bounds are authoritative, observation merely samples.
    """
    by_leaf: dict[str, list[Constraint]] = {}
    for constraint in whitebox:
        by_leaf.setdefault(constraint.class_key[-1], []).append(constraint)

    kept: list[Constraint] = []
    replaced: set[tuple[tuple[str, ...], str]] = set()
    additions: list[Constraint] = []
    leaf_classes: dict[str, set[tuple[str, ...]]] = {}
    for constraint in blackbox.constraints:
        leaf_classes.setdefault(constraint.class_key[-1], set()).add(
            constraint.class_key
        )

    blackbox_types = {
        c.class_key: c.type_name
        for c in blackbox.constraints
        if isinstance(c, TypeConstraint)
    }

    for leaf, code_constraints in by_leaf.items():
        for class_key in sorted(leaf_classes.get(leaf, {(leaf,)})):
            for code_constraint in code_constraints:
                rekeyed = _rekey(code_constraint, class_key)
                if (
                    isinstance(rekeyed, TypeConstraint)
                    and rekeyed.type_name == "list<unknown>"
                ):
                    # refine the element type from the black-box observation
                    observed = blackbox_types.get(class_key, "string")
                    element = (
                        observed[5:-1] if observed.startswith("list<") else observed
                    )
                    rekeyed = _rekey(
                        TypeConstraint(class_key, f"list<{element}>"), class_key
                    )
                additions.append(rekeyed)
                replaced.add((class_key, rekeyed.kind))

    for constraint in blackbox.constraints:
        if (constraint.class_key, constraint.kind) in replaced:
            continue
        kept.append(constraint)

    return InferenceResult(
        constraints=kept + additions,
        classes_analyzed=blackbox.classes_analyzed,
        instances_analyzed=blackbox.instances_analyzed,
        infer_seconds=blackbox.infer_seconds,
    )


def _rekey(constraint: Constraint, class_key: tuple[str, ...]) -> Constraint:
    from dataclasses import replace

    return replace(constraint, class_key=class_key)
