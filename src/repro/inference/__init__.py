"""Automatic specification inference (paper §4.5)."""

from .constraints import (
    ConsistencyConstraint,
    Constraint,
    EnumConstraint,
    EqualityConstraint,
    KIND_NAMES,
    NonEmptyConstraint,
    RangeConstraint,
    TypeConstraint,
    UniquenessConstraint,
)
from .engine import InferenceEngine, InferenceOptions, InferenceResult
from .typelattice import infer_value_type, join_all, lub
from .whitebox import WhiteBoxExtractor, combine, extract_constraints

__all__ = [
    "Constraint",
    "TypeConstraint",
    "NonEmptyConstraint",
    "RangeConstraint",
    "EnumConstraint",
    "UniquenessConstraint",
    "ConsistencyConstraint",
    "EqualityConstraint",
    "KIND_NAMES",
    "InferenceEngine",
    "InferenceOptions",
    "InferenceResult",
    "lub",
    "join_all",
    "infer_value_type",
    "WhiteBoxExtractor",
    "extract_constraints",
    "combine",
]
