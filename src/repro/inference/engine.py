"""The black-box specification inference engine (paper §4.5).

"The inference engine in ConfValley follows the black-box approach to
provide scalability, and leverages the fact that a configuration parameter
has many instances in a cloud system…  It infers a constraint when there is
enough evidence based on the samples."

Heuristics implemented verbatim from the paper:

* **type** — the least upper bound of the detected types of all nonempty
  samples (noise-tolerant via the type ordering); only non-``string`` types
  count as inferred constraints;
* **nonempty** — every sample is nonempty;
* **range** — for numeric classes with enough distinct values, the observed
  ``[min, max]`` (deliberately narrow: the paper's inferred-range false
  positives arise exactly from incomplete observed ranges);
* **enumeration** — ``ln(values.size) >= value_set.size ∧
  value_set.size <= MAX_ENUM_VALS``;
* **equality** — classes whose distinct value sets coincide, "ignoring
  configuration values whose string-lengths are smaller than 6 and
  configuration classes that have fewer than 20 instances to avoid
  over-clustering";
* **uniqueness** — all samples distinct, with a minimum instance count;
* **consistency** — all samples equal, with a minimum instance count.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..repository.model import ConfigClass
from ..repository.store import ConfigStore
from ..runtime import clock as _clock
from .constraints import (
    ConsistencyConstraint,
    Constraint,
    EnumConstraint,
    EqualityConstraint,
    NonEmptyConstraint,
    RangeConstraint,
    TypeConstraint,
    UniquenessConstraint,
)
from .typelattice import infer_value_type

__all__ = ["InferenceEngine", "InferenceOptions", "InferenceResult"]


@dataclass
class InferenceOptions:
    """Evidence thresholds (paper §4.5 heuristics)."""

    #: enumeration: value_set.size must not exceed this
    max_enum_values: int = 10
    #: equality: ignore values shorter than this
    equality_min_value_length: int = 6
    #: equality: ignore classes with fewer instances than this
    equality_min_instances: int = 20
    #: uniqueness needs at least this many instances as evidence
    uniqueness_min_instances: int = 10
    #: consistency needs at least this many instances as evidence
    consistency_min_instances: int = 5
    #: range needs at least this many distinct numeric values
    range_min_distinct: int = 3


@dataclass
class InferenceResult:
    """All constraints mined from one snapshot, plus timing."""

    constraints: list[Constraint] = field(default_factory=list)
    classes_analyzed: int = 0
    instances_analyzed: int = 0
    infer_seconds: float = 0.0

    def by_class(self) -> dict[tuple[str, ...], list[Constraint]]:
        groups: dict[tuple[str, ...], list[Constraint]] = defaultdict(list)
        for constraint in self.constraints:
            groups[constraint.class_key].append(constraint)
        # sorted so two results over the same data render identically
        # regardless of the order the store yielded its classes
        return dict(sorted(groups.items()))

    def counts_by_kind(self) -> dict[str, int]:
        """Table 5 row: constraints per kind."""
        counts: dict[str, int] = defaultdict(int)
        for constraint in self.constraints:
            counts[constraint.kind] += 1
        return dict(sorted(counts.items()))

    def histogram(self) -> dict[int, int]:
        """Figure 5: number of classes having N inferred constraints."""
        per_class = self.by_class()
        buckets: dict[int, int] = defaultdict(int)
        counted = set(per_class)
        for class_key, constraints in per_class.items():
            buckets[len(constraints)] += 1
        buckets[0] += self.classes_analyzed - len(counted)
        return dict(sorted(buckets.items()))

    def to_cpl(self) -> str:
        """Render every constraint as one CPL specification file."""
        header = (
            "// Specifications inferred by the ConfValley inference engine\n"
            f"// {len(self.constraints)} constraints over "
            f"{self.classes_analyzed} configuration classes\n"
        )
        return header + "\n".join(c.to_cpl() for c in self.constraints) + "\n"

    def covers(self, class_key: tuple[str, ...], kind: str) -> bool:
        """True when a constraint of this kind was inferred for the class
        (used to mark expert specifications as 'inferable', Table 3)."""
        return any(
            c.class_key == class_key and c.kind == kind for c in self.constraints
        )

    def drop_misfiring(self, report) -> "InferenceResult":
        """Operator feedback loop (paper §6.3): remove constraints whose
        violations the operator has dismissed as false positives.

        ``report`` is a :class:`~repro.core.report.ValidationReport` from
        running :meth:`to_cpl` output on data the operator considers good
        apart from the reported items; every (class, constraint-kind) pair
        that produced a violation is dropped, yielding a refined result
        whose specs no longer flag that drift.
        """
        from ..repository.keys import parse_instance_key

        misfires: set[tuple[tuple[str, ...], str]] = set()
        for violation in report.violations:
            try:
                class_key = parse_instance_key(violation.key).class_key
            except Exception:
                continue
            kind = _constraint_label_to_kind(violation.constraint)
            if kind is not None:
                misfires.add((class_key, kind))
                if kind == "enum":
                    misfires.add((class_key, "equality"))
        kept = [
            c for c in self.constraints if (c.class_key, c.kind) not in misfires
        ]
        refined = InferenceResult(
            constraints=kept,
            classes_analyzed=self.classes_analyzed,
            instances_analyzed=self.instances_analyzed,
            infer_seconds=self.infer_seconds,
        )
        return refined

    def refine_against(self, store, max_rounds: int = 5):
        """Iterate validate → :meth:`drop_misfiring` until the specs accept
        ``store`` (or ``max_rounds`` is hit).

        Conjoined constraints short-circuit, so one feedback round only
        reveals the first-failing constraint per instance — exactly the
        operator's experience of re-running validation after each triage
        pass.  Returns ``(refined_result, rounds_used)``.
        """
        from ..core.session import ValidationSession

        result = self
        for round_number in range(1, max_rounds + 1):
            report = ValidationSession(store=store).validate(result.to_cpl())
            if report.passed:
                return result, round_number - 1
            smaller = result.drop_misfiring(report)
            if len(smaller.constraints) == len(result.constraints):
                return result, round_number  # nothing attributable: stop
            result = smaller
        return result, max_rounds


#: violation constraint labels → inferred-constraint kinds
_LABEL_KINDS = {
    "nonempty": "nonempty",
    "range": "range",
    "consistent": "consistency",
    "unique": "uniqueness",
}

_TYPE_LABELS = {
    "int", "float", "bool", "duration", "ip", "ipv6", "cidr", "mac", "port",
    "url", "email", "guid", "path", "iprange", "string",
}


def _constraint_label_to_kind(label: str) -> Optional[str]:
    if label in _LABEL_KINDS:
        return _LABEL_KINDS[label]
    if label in _TYPE_LABELS or label.startswith("list_"):
        return "type"
    if label == "membership":
        # both enum and equality constraints render as set membership; the
        # caller drops whichever of the two the class actually carries
        return "enum"
    return None


class InferenceEngine:
    """Mines CPL constraints from a store of known-good configuration data."""

    def __init__(self, options: Optional[InferenceOptions] = None):
        self.options = options or InferenceOptions()

    # ------------------------------------------------------------------

    def infer(self, store: ConfigStore) -> InferenceResult:
        started = _clock.now()
        result = InferenceResult()
        # canonical class order: the rendered spec (and every derived
        # dict) is identical no matter how the store was populated
        classes = sorted(store.classes(), key=lambda c: c.class_key)
        result.classes_analyzed = len(classes)
        equality_candidates: dict[tuple[str, ...], list[tuple[str, ...]]] = defaultdict(list)
        for config_class in classes:
            values = config_class.values
            result.instances_analyzed += len(values)
            result.constraints.extend(self._infer_class(config_class))
            signature = self._equality_signature(values)
            if signature is not None:
                equality_candidates[signature].append(config_class.class_key)
        result.constraints.extend(self._infer_equality(equality_candidates))
        result.infer_seconds = _clock.now() - started
        return result

    # ------------------------------------------------------------------
    # Per-class heuristics
    # ------------------------------------------------------------------

    def _infer_class(self, config_class: ConfigClass) -> list[Constraint]:
        values = config_class.values
        key = config_class.class_key
        if not values:
            return []
        out: list[Constraint] = []
        opts = self.options

        nonempty_values = [v for v in values if v.strip()]
        all_nonempty = len(nonempty_values) == len(values)
        if all_nonempty:
            out.append(NonEmptyConstraint(key))

        type_name = infer_value_type(values)
        if type_name != "string" and nonempty_values:
            out.append(TypeConstraint(key, type_name, allow_empty=not all_nonempty))

        if type_name in ("int", "float") and all_nonempty:
            numbers = [float(v) for v in nonempty_values]
            if len(set(numbers)) >= opts.range_min_distinct:
                low, high = min(numbers), max(numbers)
                if type_name == "int":
                    low, high = int(low), int(high)
                out.append(RangeConstraint(key, low, high))

        distinct = set(values)
        consistent = (
            len(distinct) == 1 and len(values) >= opts.consistency_min_instances
        )
        if consistent:
            out.append(ConsistencyConstraint(key))

        unique = (
            len(distinct) == len(values)
            and len(values) >= opts.uniqueness_min_instances
        )
        if unique:
            out.append(UniquenessConstraint(key))

        # enumeration: ln(values.size) >= value_set.size  ∧  set small enough;
        # skipped when consistency already pins a single value, and for
        # booleans whose type constraint subsumes the two-value enum.
        if (
            not consistent
            and type_name not in ("bool",)
            and all_nonempty
            and len(distinct) <= opts.max_enum_values
            and math.log(len(values)) >= len(distinct)
        ):
            out.append(EnumConstraint(key, tuple(sorted(distinct))))

        return out

    # ------------------------------------------------------------------
    # Cross-class equality
    # ------------------------------------------------------------------

    def _equality_signature(self, values: list[str]) -> Optional[tuple[str, ...]]:
        opts = self.options
        if len(values) < opts.equality_min_instances:
            return None
        distinct = sorted(set(values))
        if not distinct:
            return None
        if any(len(v) < opts.equality_min_value_length for v in distinct):
            return None
        return tuple(distinct)

    def _infer_equality(
        self, candidates: dict[tuple[str, ...], list[tuple[str, ...]]]
    ) -> list[Constraint]:
        out: list[Constraint] = []
        for __, class_keys in sorted(candidates.items()):
            if len(class_keys) < 2:
                continue
            # sort the group so the anchor (and therefore the rendered
            # spec text) does not depend on store iteration order
            class_keys = sorted(class_keys)
            anchor = class_keys[0]
            for other in class_keys[1:]:
                out.append(EqualityConstraint(other, anchor))
        return out
