#!/usr/bin/env python3
"""Quickstart: validate a small configuration with CPL.

Demonstrates the core loop from the paper's introduction:

1. load configuration sources in different formats into one unified store,
2. write declarative CPL specifications (types, ranges, consistency,
   uniqueness, compartments),
3. validate and read the report,
4. extend the language with a plug-in predicate — no compiler changes.

Run:  python examples/quickstart.py
"""

from repro import StaticRuntime, ValidationSession
from repro.predicates import register_predicate
from repro.runtime import FakeFileSystem

FABRIC_XML = """
<Cluster Name="East1">
  <Setting Key="StartIP" Value="10.10.0.1"/>
  <Setting Key="EndIP" Value="10.10.0.200"/>
  <Setting Key="ProxyIP" Value="10.10.0.50"/>
  <Setting Key="OSBuildPath" Value="\\\\share\\OS\\v2"/>
</Cluster>
<Cluster Name="West1">
  <Setting Key="StartIP" Value="10.20.0.1"/>
  <Setting Key="EndIP" Value="10.20.0.200"/>
  <Setting Key="ProxyIP" Value="10.99.0.50"/>
  <Setting Key="OSBuildPath" Value="\\\\share\\OS\\v3"/>
</Cluster>
"""

MONITOR_INI = """
[monitor]
RequestRetries = 3
AlertThreshold = 12
Endpoint = https://monitor.cloud.example.com:8443
"""

SPECS = """
// every retry/threshold setting is a bounded integer
$monitor.RequestRetries -> int & [1, 10]
$monitor.AlertThreshold -> int & [5, 15]
$monitor.Endpoint -> url & match('^https://')

// proxy addresses must fall inside their own cluster's range —
// the compartment pairs StartIP/EndIP/ProxyIP per cluster instance
compartment Cluster {
  $StartIP <= $EndIP
  $ProxyIP -> [$StartIP, $EndIP]
}

// OS build paths must exist on the (injected) filesystem
$OSBuildPath -> path & exists

// plug-in predicate registered below
$OSBuildPath -> versioned_path
"""


def is_versioned_path(value: str) -> bool:
    """A plug-in predicate: paths must end in a v<N> component."""
    last = value.replace("\\", "/").rstrip("/").rsplit("/", 1)[-1]
    return last.startswith("v") and last[1:].isdigit()


def main() -> int:
    # the fake filesystem stands in for the network share (see DESIGN.md)
    runtime = StaticRuntime(filesystem=FakeFileSystem([r"\\share\OS\v2"]))
    session = ValidationSession(runtime=runtime)

    session.load_text("xml", FABRIC_XML, source="fabric.xml")
    session.load_text("ini", MONITOR_INI, source="monitor.ini")
    print(f"loaded {session.store.instance_count} configuration instances "
          f"in {session.store.class_count} classes")

    register_predicate(
        "versioned_path",
        is_versioned_path,
        message="path {value!r} of {key} lacks a version suffix",
    )

    report = session.validate(SPECS)
    print()
    print(report.render())
    # Expected violations:
    #   - West1's ProxyIP 10.99.0.50 is outside 10.20.0.1–10.20.0.200
    #   - West1's OSBuildPath \\share\OS\v3 does not exist
    return 0 if len(report.violations) == 2 else 1


if __name__ == "__main__":
    raise SystemExit(main())
