#!/usr/bin/env python3
"""Continuous validation service (paper §3.2 / §5.1 batch scenario).

"The main usage scenario is a batch validation mode where ConfValley takes
an input specification file and (re)validates it continuously as
configuration specifications or data are updated."

This script simulates an operations timeline against a watched config
repository directory: the service scans, configuration edits land (some
good, one bad), and the pass→fail transition fires an alert callback — the
page-the-operator moment.  (The ``confvalley service`` CLI wraps the same
machinery with a sleep loop; here we drive scans explicitly so the demo is
instant and deterministic.)

Run:  python examples/continuous_service.py
"""

import os
import tempfile

from repro import SourceSpec, ValidationService

SPECS = """\
$fabric.RequestRetries -> int & [1, 10]
$fabric.ProxyIPs -> split(',') -> ip
$fabric.MonitorTenant -> bool
compartment vlan {
  $StartIP <= $EndIP
}
"""

GOOD = """\
[fabric]
RequestRetries = 3
ProxyIPs = 10.0.0.1,10.0.0.2
MonitorTenant = true
[vlan]
StartIP = 10.53.129.1
EndIP = 10.53.129.200
"""

STILL_GOOD = GOOD.replace("RequestRetries = 3", "RequestRetries = 5")

BAD = STILL_GOOD.replace(
    "EndIP = 10.53.129.200", "EndIP = 10.53.128.2"
)  # inverted VLAN range — the paper's Figure 1 parameters


def bump_mtime(path):
    stat = os.stat(path)
    os.utime(path, ns=(stat.st_atime_ns + 1_000_000, stat.st_mtime_ns + 1_000_000))


def main() -> int:
    alerts = []
    with tempfile.TemporaryDirectory() as workdir:
        spec_path = os.path.join(workdir, "specs.cpl")
        config_path = os.path.join(workdir, "prod.ini")
        with open(spec_path, "w") as handle:
            handle.write(SPECS)
        with open(config_path, "w") as handle:
            handle.write(GOOD)

        service = ValidationService(
            spec_path,
            [SourceSpec("ini", config_path)],
            on_transition=lambda result: alerts.append(
                "ALERT: validation now "
                + ("PASSING" if result.passed else "FAILING")
            ),
        )

        def tick(label):
            result = service.scan()
            if result is None:
                print(f"{label}: no change — skipped (scan #{service.scans})")
            else:
                status = "PASS" if result.passed else "FAIL"
                print(f"{label}: revalidated → {status} "
                      f"({len(result.report.violations)} violation(s))")
            for alert in alerts:
                print("  " + alert)
            alerts.clear()

        tick("t0 service start     ")
        tick("t1 steady state      ")

        with open(config_path, "w") as handle:
            handle.write(STILL_GOOD)
        bump_mtime(config_path)
        tick("t2 benign retry bump ")

        with open(config_path, "w") as handle:
            handle.write(BAD)
        bump_mtime(config_path)
        tick("t3 inverted VLAN push")

        with open(config_path, "w") as handle:
            handle.write(STILL_GOOD)
        bump_mtime(config_path)
        tick("t4 rollback          ")

        history = [(r.sequence, r.passed) for r in service.history]
        print(f"\nhistory: {history}")
        expected = [(1, True), (2, True), (3, False), (4, True)]
        return 0 if history == expected else 1


if __name__ == "__main__":
    raise SystemExit(main())
