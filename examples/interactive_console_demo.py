#!/usr/bin/env python3
"""Interactive console, scripted (paper §5.1 usage scenario 2).

"We provide an interactive console to allow practitioners to write short
(one-liner) specifications and validate production data on-the-fly."

This drives the same :class:`repro.console.Console` the ``confvalley
console`` command launches, feeding it a canned operator session: inspect a
suspicious domain with ``:get``, probe it with one-liners, define a macro,
and confirm a cross-source inconsistency — the triage flow an on-call
operator would run during an incident.

Run:  python examples/interactive_console_demo.py
"""

from repro import ValidationSession
from repro.console import Console
from repro.drivers import clear_endpoints, register_endpoint

SESSION_SCRIPT = [
    ":stats",
    # what proxies are configured right now?
    ":get ProxyIPs",
    # are they all well-formed IP lists?
    "$ProxyIPs -> split(',') -> ip",
    # is the controller's secret consistent with the auth service's copy?
    "$controller.SecretKey -> == $auth.SecretKey",
    # macros make repeated one-liners cheap
    ":let Uniq := unique & ip",
    "$controller.NodeIP -> @Uniq",
    ":quit",
]


def main() -> int:
    clear_endpoints()
    register_endpoint(
        "auth.internal:443", {"auth": {"SecretKey": "k-2f1e9c77aa0452"}}
    )
    session = ValidationSession()
    session.load_text("ini", """
[controller]
SecretKey = k-2f1e9c77aa0452
ProxyIPs = 10.0.0.1,10.0.0.2
NodeIP = 10.0.0.10
""", source="controller.ini")
    session.load_text("ini", """
[controller]
SecretKey = k-STALE-OLD-VALUE
ProxyIPs = 10.0.1.1,10.0.1.2
NodeIP = 10.0.0.11
""", source="controller-west.ini")
    session.load_source("rest", "auth.internal:443")

    transcript: list[str] = []
    console = Console(session=session, output_fn=transcript.append)

    script = iter(SESSION_SCRIPT)

    def scripted_input(prompt: str) -> str:
        line = next(script)
        print(f"{prompt}{line}")
        return line

    console.run(input_fn=scripted_input)
    print()
    print("\n".join(transcript))

    # the stale west-region secret must have been flagged
    flagged = any("FAIL" in line for line in transcript)
    print("\nstale SecretKey detected" if flagged else "\nnothing detected?!")
    return 0 if flagged else 1


if __name__ == "__main__":
    raise SystemExit(main())
