#!/usr/bin/env python3
"""Cloud-fleet validation: the paper's Microsoft Azure scenario at scale.

Generates a synthetic Azure-like fleet (Datacenter → Cluster → Rack/Blade /
LoadBalancerSet hierarchies plus component catalogs — see DESIGN.md for the
substitution rationale), derives a faulty "deployment branch" with the
misconfiguration categories the paper reports (VIP range escaping its
cluster, duplicate blade location, MAC/IP pool mismatch, empty FccDnsName,
low replica count), then runs the expert CPL corpus and shows how the
violations pinpoint the exact instances.

Run:  python examples/azure_fleet_validation.py
"""

from repro import ValidationPolicy, ValidationSession
from repro.synthetic import EXPERT_SPECS, FaultInjector, generate_type_a, score_report


def main() -> int:
    print("generating synthetic Azure-like fleet (Type A, scale 0.2) …")
    dataset = generate_type_a(scale=0.2, seed=2026)
    clean = dataset.build_store()
    print(f"  {clean.instance_count} instances, {clean.class_count} classes")

    # gate 1: the clean snapshot must pass the expert corpus
    report = ValidationSession(store=clean).validate(EXPERT_SPECS["type_a"])
    print(f"clean snapshot: {'PASS' if report.passed else 'FAIL'} "
          f"({report.specs_evaluated} specs, "
          f"{report.instances_checked} instance checks)")
    if not report.passed:
        print(report.render(limit=5))
        return 1

    # gate 2: a bad deployment branch must be rejected before rollout
    print("\ninjecting a faulty deployment branch …")
    injector = FaultInjector(dataset.parse(), seed=7)
    branch = injector.make_branch(
        "deploy-candidate",
        [
            "vip_out_of_cluster",
            "bad_blade_location",
            "mac_ip_pool_mismatch",
            "empty_required",
            "low_replica_count",
        ],
    )
    for fault in branch.faults:
        print(f"  injected: {fault.describe()}")

    policy = ValidationPolicy(
        priorities={"VipRange": 10, "FccDnsName": 9},   # critical params first
        severities={"FccDnsName": "critical"},
    )
    session = ValidationSession(store=branch.build_store(), policy=policy)
    report = session.validate(EXPERT_SPECS["type_a"])

    print(f"\nbranch validation: {len(report.violations)} violation(s)")
    for violation in report.violations:
        print(f"  [{violation.severity}] {violation.message}")

    score = score_report(report, branch)
    print(f"\nscore: {score.true_errors_caught}/{len(branch.true_error_keys)} "
          f"injected errors caught, {score.false_positives} false positives")
    ok = (
        score.true_errors_caught == len(branch.true_error_keys)
        and score.false_positives == 0
    )
    print("deployment branch REJECTED before rollout" if ok else "unexpected result")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
