#!/usr/bin/env python3
"""White-box + black-box inference (the paper's §6.3 future work, built).

Black-box inference mines constraints from configuration *data*; its false
positives come from under-sampling — "the value range inferred from the
input configuration is incomplete; the type seen in the input data is in a
simplified form" (§6.4).  The application *source code* knows better: its
guards encode the true valid ranges, and a `.split(',')` reveals a list
type even when every sample happens to hold one element.

This example extracts constraints from a service's Python reader, combines
them with black-box mining, and shows the two §6.4 false-positive
mechanisms disappearing while a real error is still caught.

Run:  python examples/whitebox_inference.py
"""

from repro import ConfigStore, InferenceEngine, ValidationSession
from repro.inference import combine, extract_constraints
from repro.repository.keys import parse_instance_key
from repro.repository.model import ConfigInstance

APPLICATION_SOURCE = '''
def load_frontend(config):
    """The service's own configuration reader, with its real guards."""
    timeout = int(config["RequestTimeout"])
    if timeout < 1 or timeout > 900:          # true valid range
        raise ValueError("RequestTimeout out of range")
    mode = config["CacheMode"]
    assert mode in ("write-through", "write-back", "off")
    upstreams = []
    for server in config["UpstreamServers"].split(","):
        upstreams.append(server.strip())      # true type: list of servers
    name = config["DisplayName"]
    if not name:
        raise ValueError("DisplayName required")
    return timeout, mode, upstreams, name
'''


def store_of(rows):
    store = ConfigStore()
    for key, value in rows:
        store.add(ConfigInstance(parse_instance_key(key), value, "demo"))
    return store


def snapshot(timeout_base, upstream, mode_pool):
    rows = []
    for i in range(24):
        rows.append((f"Frontend::F{i}.RequestTimeout", str(timeout_base + i % 4)))
        rows.append((f"Frontend::F{i}.CacheMode", mode_pool[i % len(mode_pool)]))
        rows.append((f"Frontend::F{i}.UpstreamServers", upstream))
        rows.append((f"Frontend::F{i}.DisplayName", f"frontend shard {i}"))
    return store_of(rows)


def main() -> int:
    print("== mine from a good snapshot (black-box) ==")
    good = snapshot(30, "10.0.0.8", ("write-through", "write-back"))
    blackbox = InferenceEngine().infer(good)
    for line in blackbox.to_cpl().splitlines()[2:]:
        print("   ", line)

    print("\n== extract from the application source (white-box) ==")
    code = extract_constraints(APPLICATION_SOURCE)
    for constraint in code:
        print("   ", constraint.to_cpl())

    combined = combine(blackbox, code)

    print("\n== a new branch with legitimate drift + one real error ==")
    drifted = snapshot(
        700,                      # timeouts re-tuned: fine per code, new to data
        "10.0.0.8,10.0.0.9",      # a second upstream appears: fine per code
        ("write-through", "off"), # 'off' unseen in data: fine per code
    )
    # …and one genuine misconfiguration:
    drifted.add(ConfigInstance(
        parse_instance_key("Frontend::F99.RequestTimeout"), "99999", "demo"
    ))

    for label, corpus in (("black-box only", blackbox), ("combined", combined)):
        report = ValidationSession(store=drifted).validate(corpus.to_cpl())
        real = [v for v in report.violations if v.value == "99999"]
        noise = [v for v in report.violations if v.value != "99999"]
        print(f"  {label:<16} {len(report.violations):>3} violations "
              f"({len(real)} real, {len(noise)} false alarms)")

    report = ValidationSession(store=drifted).validate(combined.to_cpl())
    real = [v for v in report.violations if v.value == "99999"]
    noise = [v for v in report.violations if v.value != "99999"]
    ok = len(real) >= 1 and len(noise) == 0
    print("\ncombined corpus: zero false alarms, real error still caught"
          if ok else "\nunexpected result")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
