#!/usr/bin/env python3
"""Pre-check-in validation gate (paper §3.2).

"Configuration validation can be carried out at different stages of the
configuration life cycle: while editing configurations, **before
checking-in to the repository**, before deployment or at runtime."

This example wires three pieces together:

* :class:`repro.ConfigRepository` — branches of configuration snapshots,
* :class:`repro.IncrementalValidator` — re-runs only the specifications a
  change set touches (cheap enough to gate every check-in),
* the expert CPL corpus for the synthetic Azure fleet.

Flow: trunk holds a validated snapshot; an operator prepares a candidate
branch with a small change; the gate diffs candidate vs trunk, validates
just the affected specs, and accepts or rejects the check-in.

Run:  python examples/precommit_gate.py
"""

from repro import ConfigRepository, IncrementalValidator
from repro.repository.model import ConfigInstance
from repro.synthetic import EXPERT_SPECS, generate_type_a


def amend(instances, key_suffix, new_value):
    """Return a copy of the snapshot with one parameter actually changed."""
    out = []
    changed = None
    for instance in instances:
        if (
            changed is None
            and instance.key.render().endswith(key_suffix)
            and instance.value != new_value
        ):
            out.append(ConfigInstance(instance.key, new_value, instance.source))
            changed = instance
        else:
            out.append(instance)
    assert changed is not None, key_suffix
    return out, changed


def gate(repo, validator, branch):
    change = repo.diff_heads("trunk", branch)
    print(f"  change set: {change.summary()}")
    report = validator.validate_change(repo.store_for(repo.head(branch)), change)
    print(f"  specs run: {validator.last_selected} of "
          f"{validator.statement_count} (skipped {validator.last_skipped})")
    if report.passed:
        print("  ✔ ACCEPTED — merging to trunk")
        repo.commit(repo.head(branch).instances, f"merge {branch}", branch="trunk")
        return True
    print(f"  ✘ REJECTED — {len(report.violations)} violation(s):")
    for violation in report.violations[:3]:
        print(f"      {violation.message}")
    return False


def main() -> int:
    print("seeding trunk with a validated fleet snapshot …")
    base = generate_type_a(scale=0.15, seed=5).parse()
    repo = ConfigRepository()
    repo.commit(base, "initial validated snapshot")
    validator = IncrementalValidator(EXPERT_SPECS["type_a"])
    assert validator.validate_full(repo.store_for(repo.head())).passed
    print(f"  trunk@1: {len(base)} instances; full corpus passes\n")

    # --- check-in 1: a legitimate replica bump ---------------------------
    print("check-in 1: bump a cluster's replica count 3 → 5")
    good, changed = amend(base, "ReplicaCountForCreateFCC", "5")
    repo.create_branch("cl-replicas")
    repo.commit(good, "bump replicas", branch="cl-replicas")
    accepted = gate(repo, validator, "cl-replicas")
    if not accepted:
        return 1

    # --- check-in 2: a fat-fingered replica count -------------------------
    print("\ncheck-in 2: fat-fingered replica count 3 → 1")
    bad, changed = amend(base, "ReplicaCountForCreateFCC", "1")
    repo.create_branch("cl-oops")
    repo.commit(bad, "oops", branch="cl-oops")
    accepted = gate(repo, validator, "cl-oops")
    if accepted:
        return 1

    print(f"\ntrunk history: {[s.message for s in repo.log('trunk')]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
