#!/usr/bin/env python3
"""Specification inference workflow (paper §4.5, §6.3, §6.4).

The paper's main operational loop for keeping specifications current:

1. mine CPL specifications from a known-good configuration snapshot
   ("the configurations have been scrutinized carefully and caused few
   incidents in the past"),
2. validate a new configuration branch against the mined specs,
3. triage: group violations by constraint — "if many configuration
   instances fail a constraint, it is likely that constraint is
   problematic" (a bad inferred spec, not bad configuration).

Run:  python examples/inference_workflow.py
"""

from repro import InferenceEngine, ValidationSession
from repro.synthetic import FaultInjector, generate_type_a, score_report


def main() -> int:
    print("== step 1: mine specifications from a good snapshot ==")
    dataset = generate_type_a(scale=0.2, seed=99)
    good = dataset.build_store()
    result = InferenceEngine().infer(good)
    print(f"  analyzed {result.classes_analyzed} classes / "
          f"{result.instances_analyzed} instances "
          f"in {result.infer_seconds:.2f}s")
    print("  constraints by kind:", dict(sorted(result.counts_by_kind().items())))
    print("  sample of generated CPL:")
    for line in result.to_cpl().splitlines()[2:8]:
        print("    " + line)

    # mined specs must be vacuously clean on their own training data
    assert ValidationSession(store=good).validate(result.to_cpl()).passed

    print("\n== step 2: validate a new branch ==")
    injector = FaultInjector(dataset.parse(), seed=31)
    branch = injector.make_branch(
        "new-branch",
        ["wrong_type", "out_of_range", "duplicate_unique", "empty_required"],
        ["range_drift", "scalar_to_list"],   # legitimate drift → FP bait
    )
    session = ValidationSession(store=branch.build_store())
    report = session.validate(result.to_cpl())
    score = score_report(report, branch)
    print(f"  {score.reported} violations reported; "
          f"{score.true_errors_caught} true errors caught, "
          f"{score.false_positives} false positives from benign drift")

    print("\n== step 3: triage by constraint ==")
    for constraint, group in sorted(report.by_constraint().items()):
        keys = ", ".join(sorted({v.key.rsplit('.', 1)[-1] for v in group}))
        print(f"  {constraint:<12} {len(group):>2} failure(s)  ({keys})")
    suspicious = report.suspicious_constraints(threshold=10)
    if suspicious:
        print(f"  suspicious constraints (likely stale specs): {suspicious}")
    else:
        print("  no constraint failed en masse — failures look like real errors;")
        print("  the benign-drift FPs appear as isolated single-instance failures")
        print("  that an operator dismisses and feeds back by re-running inference")
    return 0 if score.true_errors_caught == 4 else 1


if __name__ == "__main__":
    raise SystemExit(main())
