"""Session, CLI and driver-base edge paths not covered elsewhere."""

from __future__ import annotations

import pytest

from repro import ValidationSession
from repro.console import main
from repro.drivers import clear_endpoints, register_endpoint
from repro.drivers.base import scope_segments, walk_mapping
from repro.errors import DriverError
from repro.repository.keys import InstanceKey, InstanceSegment, parse_pattern


class TestSessionEdges:
    def test_load_command_with_as_scope(self, tmp_path):
        (tmp_path / "cfg.ini").write_text("[s]\nK = 5\n")
        session = ValidationSession(base_dir=str(tmp_path))
        report = session.validate(
            "load 'ini' 'cfg.ini' as 'Env::E1'\n$Env.s.K -> int"
        )
        assert report.passed
        assert session.store.query("Env::E1.s.K")

    def test_pick_driver_url(self):
        clear_endpoints()
        register_endpoint("http://api.internal/cfg", {"a": 1})
        session = ValidationSession()
        assert session.load_source("whatever", "http://api.internal/cfg") == 1

    def test_pick_driver_host_port(self):
        clear_endpoints()
        register_endpoint("10.1.2.3:443", {"a": 1})
        session = ValidationSession()
        assert session.load_source("runninginstance", "10.1.2.3:443") == 1

    def test_validate_line_alias(self):
        session = ValidationSession()
        session.load_text("keyvalue", "A.K = 5\n")
        assert session.validate_line("$K -> int").passed

    def test_absolute_spec_path(self, tmp_path):
        spec = tmp_path / "s.cpl"
        spec.write_text("$K -> int\n")
        session = ValidationSession(base_dir="/nonexistent")
        session.load_text("keyvalue", "A.K = 5\n")
        assert session.validate_file(str(spec)).passed

    def test_elapsed_time_recorded(self):
        session = ValidationSession()
        session.load_text("keyvalue", "A.K = 5\n")
        report = session.validate("$K -> int")
        assert report.elapsed_seconds > 0


class TestCLIMiscFlags:
    def make(self, tmp_path, value="oops"):
        # distinct predicates so the compiler cannot merge the two specs
        (tmp_path / "c.ini").write_text(f"[s]\nK = {value}\nL = {value}\n")
        (tmp_path / "spec.cpl").write_text("$s.K -> int\n$s.L -> bool\n")
        return tmp_path

    def test_stop_on_first(self, tmp_path, capsys):
        root = self.make(tmp_path)
        code = main([
            "validate", str(root / "spec.cpl"),
            "--source", f"ini:{root}/c.ini", "--stop-on-first",
        ])
        assert code == 1
        assert "1 violation(s)" in capsys.readouterr().out

    def test_no_optimize(self, tmp_path, capsys):
        root = tmp_path
        (root / "c.ini").write_text("[s]\nK = 5\nL = true\n")
        (root / "spec.cpl").write_text("$s.K -> int\n$s.L -> bool\n")
        code = main([
            "validate", str(root / "spec.cpl"),
            "--source", f"ini:{root}/c.ini", "--no-optimize",
        ])
        assert code == 0

    def test_limit(self, tmp_path, capsys):
        root = self.make(tmp_path)
        main([
            "validate", str(root / "spec.cpl"),
            "--source", f"ini:{root}/c.ini", "--limit", "1",
        ])
        assert "and 1 more" in capsys.readouterr().out

    def test_partitioned_cli_failing(self, tmp_path, capsys):
        root = self.make(tmp_path)
        code = main([
            "validate", str(root / "spec.cpl"),
            "--source", f"ini:{root}/c.ini", "--partitions", "2",
        ])
        assert code == 1
        assert "2 violation(s)" in capsys.readouterr().out


class TestDriverBase:
    def test_scope_segments_full_notation(self):
        segments = scope_segments("A::x.B[2].C")
        assert segments == (
            InstanceSegment("A", "x"),
            InstanceSegment("B", None, 2),
            InstanceSegment("C"),
        )

    def test_scope_segments_empty(self):
        assert scope_segments("") == ()

    def test_scope_segments_rejects_wildcards(self):
        with pytest.raises(DriverError):
            scope_segments("A.*")

    def test_walk_mapping_mixed_list(self):
        out = walk_mapping(
            {"items": [{"name": "a", "v": 1}, "scalar", {"name": "b", "v": 2}]},
            (), "t",
        )
        rendered = {i.key.render(): i.value for i in out}
        assert rendered["items::a.v"] == "1"
        assert rendered["items::b.v"] == "2"
        assert rendered["items[2]"] == "scalar"

    def test_walk_mapping_top_scalar_rejected(self):
        with pytest.raises(DriverError):
            walk_mapping({"": None} and 5, (), "t")  # scalar, no key

    def test_walk_mapping_bool_normalized(self):
        out = walk_mapping({"flag": False}, (), "t")
        assert out[0].value == "false"


class TestKeysEdges:
    def test_substitute_ordinal_variable(self):
        pattern = parse_pattern("Cloud[$i].K").substitute({"i": "3"})
        assert pattern.segments[0].qualifier == 3

    def test_prefixed_with(self):
        pattern = parse_pattern("k").prefixed_with(parse_pattern("a.b::x"))
        assert pattern.render() == "a.b::x.k"

    def test_is_concrete(self):
        assert parse_pattern("A.B").is_concrete
        assert not parse_pattern("A.*").is_concrete
        assert not parse_pattern("A::$v.B").is_concrete

    def test_key_child(self):
        key = InstanceKey.build("A").child(InstanceSegment("B"))
        assert key.render() == "A.B"
