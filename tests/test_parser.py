"""CPL parser: paper Listing 4 grammar and Listing 5 examples."""

from __future__ import annotations

import pytest

from repro.cpl import ast, parse, parse_predicate
from repro.errors import CPLSyntaxError


def only(program):
    assert len(program.statements) == 1
    return program.statements[0]


class TestCommands:
    def test_load(self):
        cmd = only(parse("load 'cloudsettings' '/path/to/settings'"))
        assert isinstance(cmd, ast.LoadCmd)
        assert cmd.alias == "cloudsettings"
        assert cmd.location == "/path/to/settings"
        assert cmd.scope == ""

    def test_load_with_scope(self):
        cmd = only(parse("load 'ini' 'x.ini' as 'Fabric'"))
        assert cmd.scope == "Fabric"

    def test_include(self):
        cmd = only(parse("include 'type_checks.cpl'"))
        assert isinstance(cmd, ast.IncludeCmd)
        assert cmd.path == "type_checks.cpl"

    def test_let(self):
        cmd = only(parse("let UniqueCIDR := unique & cidr"))
        assert isinstance(cmd, ast.LetCmd)
        assert cmd.name == "UniqueCIDR"
        assert isinstance(cmd.predicate, ast.And)

    def test_get(self):
        cmd = only(parse("get $Fabric.Timeout"))
        assert isinstance(cmd, ast.GetCmd)
        assert cmd.domain == ast.DomainRef("Fabric.Timeout")


class TestSpecStatements:
    def test_simple(self):
        spec = only(parse("$OSBuildPath -> path & exists"))
        assert isinstance(spec, ast.SpecStatement)
        assert spec.domain == ast.DomainRef("OSBuildPath")
        final = spec.steps[-1]
        assert isinstance(final, ast.PredicateStep)
        assert isinstance(final.predicate, ast.And)

    def test_relop_statement_sugar(self):
        # Figure 4 style: $k1 <= $k2
        spec = only(parse("$k1 <= $k2"))
        assert isinstance(spec, ast.SpecStatement)
        pred = spec.steps[0].predicate
        assert isinstance(pred, ast.RelPred)
        assert pred.op == "<="
        assert pred.operand == ast.DomainRef("k2")

    def test_union_domain_statement(self):
        spec = only(parse("$s.k1, $s.k2 -> ip & unique"))
        assert isinstance(spec.domain, ast.UnionDomain)
        assert len(spec.domain.members) == 2

    def test_inline_compartment_domain(self):
        spec = only(parse("#[Datacenter] $Machinepool.FillFactor# -> consistent"))
        assert isinstance(spec.domain, ast.CompartmentDomain)
        assert spec.domain.compartment == "Datacenter"
        assert spec.domain.inner == ast.DomainRef("Machinepool.FillFactor")

    def test_prefix_transform_domain(self):
        spec = only(parse("lower($OSPath) -> endswith('.xml')"))
        assert isinstance(spec.domain, ast.TransformDomain)
        assert spec.domain.name == "lower"

    def test_arithmetic_domain(self):
        spec = only(parse("$a + $b -> [0, 10]"))
        assert isinstance(spec.domain, ast.BinOpDomain)
        assert spec.domain.op == "+"

    def test_spec_records_text_and_line(self):
        program = parse("// hi\n$a -> int")
        spec = program.statements[0]
        assert spec.line == 2
        assert "$a -> int" in spec.text

    def test_missing_final_predicate_raises(self):
        with pytest.raises(CPLSyntaxError):
            parse("$a -> split(',')")

    def test_predicate_midpipeline_raises(self):
        with pytest.raises(CPLSyntaxError):
            parse("$a -> int -> nonempty")


class TestPredicates:
    def pred(self, text):
        return parse_predicate(text)

    def test_precedence_and_over_or(self):
        pred = self.pred("a | b & c")
        assert isinstance(pred, ast.Or)
        assert isinstance(pred.right, ast.And)

    def test_parens(self):
        pred = self.pred("(a | b) & c")
        assert isinstance(pred, ast.And)
        assert isinstance(pred.left, ast.Or)

    def test_not(self):
        pred = self.pred("~nonempty | @UniqueCIDR")
        assert isinstance(pred, ast.Or)
        assert isinstance(pred.left, ast.Not)
        assert isinstance(pred.right, ast.MacroRef)

    def test_quantified(self):
        pred = self.pred("exists nonempty")
        assert isinstance(pred, ast.Quantified)
        assert pred.quantifier == "exists"

    def test_exists_as_primitive_when_terminal(self):
        pred = self.pred("path & exists")
        assert isinstance(pred.right, ast.PrimitiveCall)
        assert pred.right.name == "exists"

    def test_range(self):
        pred = self.pred("[5, 15]")
        assert isinstance(pred, ast.RangePred)
        assert pred.low == ast.Literal(5)

    def test_range_with_domains(self):
        pred = self.pred("[$StartIP, $EndIP]")
        assert pred.low == ast.DomainRef("StartIP")

    def test_negative_number_operand(self):
        pred = self.pred("[-5, 5]")
        assert pred.low == ast.Literal(-5)

    def test_set(self):
        pred = self.pred("{'compute', 'storage'}")
        assert isinstance(pred, ast.SetPred)
        assert len(pred.members) == 2

    def test_set_with_domain_member(self):
        pred = self.pred("{$MachinePool.Name}")
        assert pred.members == (ast.DomainRef("MachinePool.Name"),)

    def test_relation(self):
        pred = self.pred("== 'LoadBalancerGateway'")
        assert isinstance(pred, ast.RelPred)
        assert pred.op == "=="

    def test_primitive_with_args(self):
        pred = self.pred("match('UtilityFabric')")
        assert isinstance(pred, ast.PrimitiveCall)
        assert pred.args == (ast.Literal("UtilityFabric"),)

    def test_if_predicate(self):
        pred = self.pred("if (nonempty) int else bool")
        assert isinstance(pred, ast.IfPred)
        assert pred.otherwise is not None

    def test_context_relation(self):
        pred = self.pred("$_ == $UfcName")
        assert isinstance(pred, ast.RelPred)
        assert pred.operand == ast.DomainRef("UfcName")


class TestBlocks:
    def test_namespace(self):
        block = only(parse("namespace r.s {\n$k1 -> int\n$k2 -> bool\n}"))
        assert isinstance(block, ast.NamespaceBlock)
        assert block.names == ("r.s",)
        assert len(block.body) == 2

    def test_multiple_namespaces(self):
        block = only(parse("namespace a, b.c {\n$k -> int\n}"))
        assert block.names == ("a", "b.c")

    def test_compartment(self):
        block = only(parse("compartment Cluster {\n$ProxyIP -> [$StartIP, $EndIP]\n}"))
        assert isinstance(block, ast.CompartmentBlock)
        assert block.name == "Cluster"

    def test_nested_blocks(self):
        block = only(parse(
            "compartment DC {\n compartment Cluster {\n $k -> int\n }\n}"
        ))
        inner = block.body[0]
        assert isinstance(inner, ast.CompartmentBlock)


class TestIfStatements:
    def test_if_with_quantified_condition(self):
        stmt = only(parse(
            "if (exists $RoutingEntry.Gateway == 'LoadBalancerGateway')\n"
            "  $LoadBalancerSet.Device -> nonempty"
        ))
        assert isinstance(stmt, ast.IfStatement)
        condition = stmt.condition.spec
        final = condition.steps[-1].predicate
        assert isinstance(final, ast.Quantified)
        assert len(stmt.then) == 1
        assert stmt.otherwise == ()

    def test_if_else_blocks(self):
        stmt = only(parse(
            "if ($CloudName -> ~match('UtilityFabric')) {\n"
            "  $Fabric::$CloudName.TenantName -> nonempty\n"
            "} else {\n"
            "  $Fabric::$CloudName.TenantName -> ~nonempty\n"
            "}"
        ))
        assert isinstance(stmt, ast.IfStatement)
        assert len(stmt.then) == 1
        assert len(stmt.otherwise) == 1


class TestPipelines:
    def test_transform_chain(self):
        spec = only(parse("$T -> split(':') -> at(0) -> $_ == $UfcName"))
        assert isinstance(spec.steps[0], ast.TransformStep)
        assert spec.steps[0].name == "split"
        assert isinstance(spec.steps[1], ast.TransformStep)
        assert isinstance(spec.steps[2], ast.PredicateStep)

    def test_foreach(self):
        spec = only(parse("$M -> foreach($Pool::$_.VipRanges) -> nonempty"))
        step = spec.steps[0]
        assert isinstance(step, ast.ForeachStep)
        assert step.domain.notation == "Pool::$_.VipRanges"

    def test_conditional_transform(self):
        spec = only(parse("$V -> if (nonempty) split('-') -> [0, 10]"))
        step = spec.steps[0]
        assert isinstance(step, ast.CondStep)
        assert isinstance(step.then, ast.TransformStep)

    def test_tuple_step_vs_range(self):
        spec = only(parse("$V -> split('-') -> [at(0), at(1)] -> exists [$lo, $hi]"))
        assert isinstance(spec.steps[1], ast.TupleStep)
        final = spec.steps[2].predicate
        assert isinstance(final, ast.Quantified)
        assert isinstance(final.operand, ast.RangePred)

    def test_full_listing5_parses(self):
        source = """
        load 'cloudsettings' '/path/to/settings'
        let UniqueCIDR := unique & cidr
        $Cluster.MachinePool -> {$MachinePool.Name}
        $Fabric.AlertFailNodesThreshold -> int & nonempty
        & [5,15]
        #[Datacenter] $Machinepool.FillFactor# -> consistent
        compartment Cluster {
          $ProxyIP -> [$StartIP, $EndIP]
          $IPv6Prefix -> ~nonempty | @UniqueCIDR
        }
        if (exists $RoutingEntry.Gateway == 'LoadBalancerGateway')
          $LoadBalancerSet.Device -> nonempty
        if ($CloudName -> ~match('UtilityFabric')) {
          $Fabric::$CloudName.TenantName
            -> split(':') -> at(0) -> $_ == $UfcName
        } else {
          $Fabric::$CloudName.TenantName -> ~nonempty
        }
        $MachinePoolName -> foreach($MachinePool::$_.LoadBalancer.VipRanges)
          -> if (nonempty) split('-')
          -> [at(0), at(1)] -> exists [$StartIP, $EndIP]
        """
        program = parse(source)
        assert len(program.statements) == 9

    def test_unicode_listing5_forms(self):
        program = parse("$Fabric.K → int & [5,15]\n∃ $a.b == 'x'\n")
        assert len(program.statements) == 2


class TestErrors:
    def test_dangling_arrow(self):
        with pytest.raises(CPLSyntaxError):
            parse("$a ->")

    def test_unknown_transform_in_pipeline(self):
        with pytest.raises(CPLSyntaxError):
            parse("$a -> frobnicate($b) -> int")

    def test_unclosed_block(self):
        with pytest.raises(CPLSyntaxError):
            parse("compartment C {\n$a -> int\n")

    def test_context_var_as_statement_domain(self):
        with pytest.raises(CPLSyntaxError):
            parse("$_ -> int")

    def test_error_carries_position(self):
        with pytest.raises(CPLSyntaxError) as info:
            parse("$a -> int\n$b ->")
        assert info.value.line == 2
