"""Value typing: parsers and detection (shared by predicates & inference)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import typesys


class TestParsers:
    @pytest.mark.parametrize("text,expected", [
        ("true", True), ("True", True), ("YES", True), ("on", True),
        ("enabled", True), ("false", False), ("off", False), ("no", False),
    ])
    def test_bool(self, text, expected):
        assert typesys.parse_bool(text) is expected

    @pytest.mark.parametrize("text", ["1", "tru", "", "y"])
    def test_bool_rejects(self, text):
        assert typesys.parse_bool(text) is None

    def test_int(self):
        assert typesys.parse_int("42") == 42
        assert typesys.parse_int("-7") == -7
        assert typesys.parse_int(" 5 ") == 5

    @pytest.mark.parametrize("text", ["4.2", "abc", "", "0x10"])
    def test_int_rejects(self, text):
        assert typesys.parse_int(text) is None

    def test_float(self):
        assert typesys.parse_float("3.14") == pytest.approx(3.14)
        assert typesys.parse_float("5") == 5.0

    @pytest.mark.parametrize("text", ["nan", "inf", "-Infinity", "abc", ""])
    def test_float_rejects(self, text):
        assert typesys.parse_float(text) is None

    def test_ipv4(self):
        assert typesys.parse_ipv4("10.0.0.1") is not None
        assert typesys.parse_ipv4("256.0.0.1") is None
        assert typesys.parse_ipv4("10.0.0") is None

    def test_ipv6(self):
        assert typesys.parse_ipv6("2001:db8::1") is not None
        assert typesys.parse_ipv6("10.0.0.1") is None

    def test_cidr_requires_prefix(self):
        assert typesys.parse_cidr("10.0.0.0/24") is not None
        assert typesys.parse_cidr("10.0.0.0") is None
        assert typesys.parse_cidr("10.0.0.0/99") is None

    def test_mac(self):
        assert typesys.parse_mac("00:1A:2b:3c:4D:5e") == "00:1a:2b:3c:4d:5e"
        assert typesys.parse_mac("00-1a-2b-3c-4d-5e") == "00:1a:2b:3c:4d:5e"
        assert typesys.parse_mac("00:1a:2b:3c:4d") is None

    def test_port(self):
        assert typesys.parse_port("443") == 443
        assert typesys.parse_port("0") is None
        assert typesys.parse_port("70000") is None

    def test_url(self):
        assert typesys.parse_url("https://x.example.com:8443/a") is not None
        assert typesys.parse_url("not a url") is None

    def test_email(self):
        assert typesys.parse_email("ops@example.com") is not None
        assert typesys.parse_email("nope") is None

    def test_guid(self):
        guid = "deadbeef-dead-beef-dead-beefdeadbeef"
        assert typesys.parse_guid(guid) == guid
        assert typesys.parse_guid("{" + guid.upper() + "}") == guid
        assert typesys.parse_guid("deadbeef") is None

    def test_ip_range(self):
        result = typesys.parse_ip_range("10.0.0.1-10.0.0.9")
        assert result is not None
        assert str(result[0]) == "10.0.0.1"
        assert typesys.parse_ip_range("10.0.0.1") is None
        assert typesys.parse_ip_range("a-b") is None

    @pytest.mark.parametrize("text,ok", [
        (r"\\share\OS\v2", True),
        (r"C:\Windows", True),
        ("/var/lib/nova", True),
        ("./relative", True),
        ("plainword", False),
        ("", False),
    ])
    def test_path(self, text, ok):
        assert typesys.is_path(text) is ok

    def test_split_list(self):
        assert typesys.split_list("a, b ,c") == ["a", "b", "c"]
        assert typesys.split_list("a;b") == ["a", "b"]
        assert typesys.split_list("solo") is None
        assert typesys.split_list("a,,b") is None


class TestDetect:
    @pytest.mark.parametrize("value,expected", [
        ("true", "bool"),
        ("42", "int"),
        ("3.14", "float"),
        ("10.0.0.1", "ipv4"),
        ("2001:db8::1", "ipv6"),
        ("10.0.0.0/24", "cidr"),
        ("00:1a:2b:3c:4d:5e", "mac"),
        ("10.0.0.1-10.0.0.5", "ip_range"),
        ("https://x.com/a", "url"),
        ("a@b.com", "email"),
        ("/var/log", "path"),
        ("deadbeef-dead-beef-dead-beefdeadbeef", "guid"),
        ("hello world", "string"),
        ("", "string"),
    ])
    def test_scalars(self, value, expected):
        assert typesys.detect_type(value) == expected

    def test_lists(self):
        assert typesys.detect_type("10.0.0.1,10.0.0.2") == "list<ipv4>"
        assert typesys.detect_type("1;2;3") == "list<int>"
        assert typesys.detect_type("a,1") == "list<string>"

    def test_list_detection_disabled(self):
        assert typesys.detect_type("1,2", allow_list=False) == "string"
