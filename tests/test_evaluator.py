"""Validation engine semantics: quantifiers, compartments, namespaces,
piping, variables, conditions (paper §4.2)."""

from __future__ import annotations

import pytest

from repro import ValidationSession, parse
from repro.core import Evaluator, ValidationReport
from repro.errors import EvaluationError, UnknownMacroError
from repro.runtime import FakeFileSystem, StaticRuntime


def session_for(make_store, pairs, **kwargs):
    return ValidationSession(store=make_store(pairs), **kwargs)


def run(session, text):
    return session.validate(text)


class TestBasicIteration:
    def test_forall_default_all_instances_checked(self, make_store):
        session = session_for(make_store, [
            ("A::1.Timeout", "5"), ("A::2.Timeout", "7"), ("A::3.Timeout", "x"),
        ])
        report = run(session, "$Timeout -> int")
        assert len(report.violations) == 1
        assert report.violations[0].key == "A::3.Timeout"

    def test_empty_domain_vacuous_pass(self, make_store):
        session = session_for(make_store, [("A.K", "v")])
        report = run(session, "$NoSuchKey -> int")
        assert report.passed

    def test_exists_quantifier(self, make_store):
        session = session_for(make_store, [("A::1.K", "x"), ("A::2.K", "5")])
        assert run(session, "$K -> exists int").passed
        assert not run(session, "$K -> exists bool").passed

    def test_exactly_one_quantifier(self, make_store):
        session = session_for(make_store, [("A::1.K", "5"), ("A::2.K", "x")])
        assert run(session, "$K -> one int").passed
        session2 = session_for(make_store, [("A::1.K", "5"), ("A::2.K", "6")])
        assert not run(session2, "$K -> one int").passed

    def test_compound_and_or_not(self, make_store):
        session = session_for(make_store, [("A.K", "")])
        assert run(session, "$K -> ~nonempty | int").passed
        assert not run(session, "$K -> nonempty & int").passed

    def test_if_predicate_with_else(self, make_store):
        session = session_for(make_store, [("A::1.K", "10"), ("A::2.K", "x")])
        # ints must be in range; non-ints must be nonempty
        assert run(session, "$K -> if (int) [5, 15] else nonempty").passed

    def test_relation_statement(self, make_store):
        session = session_for(make_store, [("A.lo", "3"), ("A.hi", "9")])
        assert run(session, "$lo <= $hi").passed
        assert not run(session, "$lo >= $hi").passed

    def test_relation_cartesian_default(self, make_store):
        # multiple operand instances: ∀ over the product by default
        session = session_for(make_store, [
            ("A.K", "5"), ("B::1.Max", "10"), ("B::2.Max", "4"),
        ])
        assert not run(session, "$K <= $Max").passed
        assert run(session, "$K -> exists <= $Max").passed

    def test_membership_in_domain_values(self, make_store):
        session = session_for(make_store, [
            ("Cluster::C1.MachinePool", "mp1"),
            ("MachinePool::1.Name", "mp1"),
            ("MachinePool::2.Name", "mp2"),
        ])
        assert run(session, "$Cluster.MachinePool -> {$MachinePool.Name}").passed
        session2 = session_for(make_store, [
            ("Cluster::C1.MachinePool", "mp9"),
            ("MachinePool::1.Name", "mp1"),
        ])
        assert not run(session2, "$Cluster.MachinePool -> {$MachinePool.Name}").passed


class TestAggregatesInEngine:
    def test_consistent(self, make_store):
        session = session_for(make_store, [
            ("A::1.F", "80"), ("A::2.F", "80"), ("A::3.F", "75"),
        ])
        report = run(session, "$F -> consistent")
        assert len(report.violations) == 1
        assert report.violations[0].key == "A::3.F"

    def test_unique(self, make_store):
        session = session_for(make_store, [
            ("A::1.IP", "10.0.0.1"), ("A::2.IP", "10.0.0.2"), ("A::3.IP", "10.0.0.1"),
        ])
        report = run(session, "$IP -> unique")
        assert len(report.violations) == 1
        assert report.violations[0].key == "A::3.IP"

    def test_aggregate_mixed_with_value_predicate(self, make_store):
        session = session_for(make_store, [
            ("A::1.P", "2001:db8::/32"), ("A::2.P", "2001:db8::/32"),
        ])
        # duplicate CIDRs: unique fails even though cidr passes
        report = run(session, "$P -> unique & cidr")
        assert len(report.violations) == 1

    def test_or_with_aggregate_saves_empty_duplicates(self, make_store):
        # paper: $IPv6Prefix -> ~nonempty | (unique & cidr)
        session = session_for(make_store, [
            ("A::1.P", ""), ("A::2.P", ""), ("A::3.P", "2001:db8::/32"),
        ])
        report = run(session, "$P -> ~nonempty | (unique & cidr)")
        assert report.passed


class TestCompartments:
    def test_paired_bounds(self, cluster_store):
        session = ValidationSession(store=cluster_store)
        report = run(session, "compartment Cluster {\n$ProxyIP -> [$StartIP, $EndIP]\n}")
        assert len(report.violations) == 1
        assert "C2" in report.violations[0].key

    def test_cartesian_without_compartment(self, cluster_store):
        # without compartments, 2 proxies × 2 ranges: C1 proxy fails C2 range etc.
        session = ValidationSession(store=cluster_store)
        report = run(session, "$ProxyIP -> [$StartIP, $EndIP]")
        assert len(report.violations) == 2

    def test_compartment_relation_statement(self, make_store):
        session = session_for(make_store, [
            ("VLAN::1.StartIP", "10.0.0.1"), ("VLAN::1.EndIP", "10.0.0.9"),
            ("VLAN::2.StartIP", "10.0.0.20"), ("VLAN::2.EndIP", "10.0.0.8"),
        ])
        report = run(session, "compartment VLAN {\n$StartIP <= $EndIP\n}")
        assert len(report.violations) == 1
        assert "VLAN::2" in report.violations[0].key

    def test_missing_domain_skips_instance(self, make_store):
        session = session_for(make_store, [
            ("VLAN::1.StartIP", "10.0.0.1"), ("VLAN::1.EndIP", "10.0.0.9"),
            ("VLAN::2.Comment", "no ips here"),
        ])
        report = run(session, "compartment VLAN {\n$StartIP <= $EndIP\n}")
        assert report.passed
        assert report.specs_skipped >= 1

    def test_uniqueness_scoped_per_compartment(self, make_store):
        # paper: blade location unique within a rack, reusable across racks
        session = session_for(make_store, [
            ("Rack::R1.Blade::B1.Location", "1"),
            ("Rack::R1.Blade::B2.Location", "2"),
            ("Rack::R2.Blade::B1.Location", "1"),
            ("Rack::R2.Blade::B2.Location", "1"),
        ])
        report = run(session, "compartment Rack {\n$Blade.Location -> unique\n}")
        assert len(report.violations) == 1
        assert "R2" in report.violations[0].key

    def test_inline_compartment_domain(self, make_store):
        session = session_for(make_store, [
            ("DC::D1.Pool::P1.FillFactor", "80"),
            ("DC::D1.Pool::P2.FillFactor", "80"),
            ("DC::D2.Pool::P1.FillFactor", "60"),
            ("DC::D2.Pool::P2.FillFactor", "70"),
        ])
        report = run(session, "#[DC] $Pool.FillFactor# -> consistent")
        assert len(report.violations) == 1
        assert "D2" in report.violations[0].key

    def test_nested_compartments(self, make_store):
        session = session_for(make_store, [
            ("DC::D1.Rack::R1.Blade::B1.Loc", "1"),
            ("DC::D1.Rack::R1.Blade::B2.Loc", "1"),
            ("DC::D2.Rack::R1.Blade::B1.Loc", "1"),
        ])
        report = run(
            session,
            "compartment DC {\ncompartment Rack {\n$Blade.Loc -> unique\n}\n}",
        )
        assert len(report.violations) == 1
        assert "D1" in report.violations[0].key

    def test_cross_reference_escapes_compartment(self, make_store):
        # a domain living entirely outside the compartment class is usable
        session = session_for(make_store, [
            ("Cluster::C1.Timeout", "5"),
            ("Cluster::C2.Timeout", "9"),
            ("Global.MaxTimeout", "10"),
        ])
        report = run(session, "compartment Cluster {\n$Timeout <= $Global.MaxTimeout\n}")
        assert report.passed


class TestNamespaces:
    def test_prefix_resolution(self, make_store):
        session = session_for(make_store, [("r.s.k1", "5")])
        assert run(session, "namespace r.s {\n$k1 -> int\n}").passed

    def test_fallback_to_bare(self, make_store):
        session = session_for(make_store, [("other.k1", "5")])
        report = run(session, "namespace r.s {\n$other.k1 -> int\n}")
        assert report.passed
        assert report.instances_checked == 1

    def test_multiple_namespaces_in_order(self, make_store):
        session = session_for(make_store, [("a.k", "1"), ("b.k", "x")])
        # namespace a wins: only a.k checked, and it is an int
        assert run(session, "namespace a, b {\n$k -> int\n}").passed


class TestVariables:
    def test_variable_expansion_binds_per_value(self, make_store):
        session = session_for(make_store, [
            ("CloudName::1.CloudName", "east"),
            ("CloudName::2.CloudName", "west"),
            ("Fabric::east.TenantName", "east:t1"),
            ("Fabric::west.TenantName", "west:t1"),
        ])
        report = run(
            session,
            "$Fabric::$CloudName.TenantName -> split(':') -> at(0) -> $_ == $CloudName",
        )
        assert report.passed

    def test_variable_mismatch_detected(self, make_store):
        session = session_for(make_store, [
            ("CloudName::1.CloudName", "east"),
            ("Fabric::east.TenantName", "WRONG:t1"),
        ])
        report = run(
            session,
            "$Fabric::$CloudName.TenantName -> split(':') -> at(0) -> $_ == $CloudName",
        )
        assert len(report.violations) == 1

    def test_unbound_variable_domain_is_vacuous(self, make_store):
        session = session_for(make_store, [("A.K", "v")])
        report = run(session, "$Fabric::$NoSuchVar.T -> nonempty")
        assert report.passed

    def test_env_pseudo_domain(self, make_store):
        runtime = StaticRuntime(environment={"os": "Linux"})
        session = session_for(make_store, [("A.K", "v")], runtime=runtime)
        assert run(session, "$env.os -> == 'Linux'").passed
        assert not run(session, "$env.os -> == 'Windows'").passed


class TestPipelines:
    def test_split_then_each_element_checked(self, make_store):
        session = session_for(make_store, [("A.IPs", "10.0.0.1,10.0.0.2")])
        assert run(session, "$IPs -> split(',') -> ip").passed
        session2 = session_for(make_store, [("A.IPs", "10.0.0.1,oops")])
        assert not run(session2, "$IPs -> split(',') -> ip").passed

    def test_at_indexing(self, make_store):
        session = session_for(make_store, [("A.Pair", "3:9")])
        assert run(session, "$Pair -> split(':') -> at(0) -> == 3").passed

    def test_conditional_transform_pass_through(self, make_store):
        session = session_for(make_store, [("A::1.V", ""), ("A::2.V", "5-7")])
        # empty values skip the split; nonempty ones must split into ints
        report = run(session, "$V -> if (nonempty) split('-') -> ~nonempty | int")
        assert report.passed

    def test_foreach_requery(self, make_store):
        session = session_for(make_store, [
            ("PoolName::1.PoolName", "p1"),
            ("Pool::p1.Vip", "10.0.0.1"),
            ("Pool::p2.Vip", "oops"),
        ])
        # only p1 is referenced by PoolName, so 'oops' is never checked
        assert run(session, "$PoolName -> foreach($Pool::$_.Vip) -> ip").passed

    def test_vip_ranges_paper_example(self, make_store):
        session = session_for(make_store, [
            ("Cluster::C1.StartIP", "10.0.0.1"),
            ("Cluster::C1.EndIP", "10.0.0.100"),
            ("Cluster::C1.VipRanges", "10.0.0.5-10.0.0.9;10.0.0.20-10.0.0.30"),
        ])
        spec = (
            "compartment Cluster {\n"
            "$VipRanges -> split(';') -> if (nonempty) split('-')\n"
            "  -> [$StartIP, $EndIP]\n"
            "}"
        )
        assert run(session, spec).passed
        session2 = session_for(make_store, [
            ("Cluster::C1.StartIP", "10.0.0.1"),
            ("Cluster::C1.EndIP", "10.0.0.100"),
            ("Cluster::C1.VipRanges", "10.0.0.5-10.0.0.9;10.9.9.1-10.9.9.2"),
        ])
        assert not run(session2, spec).passed

    def test_reduce_transform_count(self, make_store):
        session = session_for(make_store, [
            ("A::1.K", "a"), ("A::2.K", "b"), ("A::3.K", "c"),
        ])
        assert run(session, "$K -> count -> == 3").passed

    def test_tuple_step(self, make_store):
        session = session_for(make_store, [("A.R", "5-9")])
        assert run(session, "$R -> split('-') -> [at(0), at(1)] -> [1, 10]").passed


class TestDomainsAdvanced:
    def test_arithmetic_domain(self, make_store):
        session = session_for(make_store, [("A.used", "30"), ("A.free", "70")])
        assert run(session, "$used + $free -> == 100").passed

    def test_arithmetic_non_numeric_raises(self, make_store):
        session = session_for(make_store, [("A.used", "x"), ("A.free", "70")])
        with pytest.raises(EvaluationError):
            run(session, "$used - $free -> == 100")

    def test_prefix_transform_domain(self, make_store):
        session = session_for(make_store, [("A.Name", "MiXeD")])
        assert run(session, "lower($Name) -> == 'mixed'").passed

    def test_union_domain(self, make_store):
        session = session_for(make_store, [("A.k1", "1"), ("A.k2", "x")])
        report = run(session, "$k1, $k2 -> int")
        assert len(report.violations) == 1


class TestIfStatements:
    def test_condition_gates_then(self, make_store):
        session = session_for(make_store, [
            ("R::1.Gateway", "LoadBalancerGateway"),
            ("LBSet::1.Device", ""),
        ])
        spec = (
            "if (exists $R.Gateway == 'LoadBalancerGateway')\n"
            "  $LBSet.Device -> nonempty"
        )
        report = run(session, spec)
        assert len(report.violations) == 1

    def test_condition_false_skips_then(self, make_store):
        session = session_for(make_store, [
            ("R::1.Gateway", "DirectGateway"),
            ("LBSet::1.Device", ""),
        ])
        spec = (
            "if (exists $R.Gateway == 'LoadBalancerGateway')\n"
            "  $LBSet.Device -> nonempty"
        )
        assert run(session, spec).passed

    def test_else_branch(self, make_store):
        session = session_for(make_store, [("A.Flag", "false"), ("A.Alt", "")])
        spec = "if ($Flag == 'true') $Alt -> nonempty else $Alt -> ~nonempty"
        assert run(session, spec).passed

    def test_empty_condition_domain_is_false_for_exists(self, make_store):
        session = session_for(make_store, [("A.K", "v")])
        spec = "if (exists $NoSuch == 'x') $K -> int"
        assert run(session, spec).passed  # condition false → then skipped


class TestMacrosAndErrors:
    def test_macro_definition_and_use(self, make_store):
        session = session_for(make_store, [("A::1.P", "10.0.0.0/24"),
                                           ("A::2.P", "10.0.0.0/24")])
        report = run(session, "let UniqueCIDR := unique & cidr\n$P -> @UniqueCIDR")
        assert len(report.violations) == 1  # duplicate CIDR

    def test_undefined_macro_raises(self, make_store):
        session = session_for(make_store, [("A.K", "v")])
        with pytest.raises(UnknownMacroError):
            run(session, "$K -> @Nope")

    def test_error_message_mentions_key_and_value(self, make_store):
        session = session_for(make_store, [("Fabric::F1.Timeout", "oops")])
        report = run(session, "$Timeout -> int")
        violation = report.violations[0]
        assert "Fabric::F1.Timeout" in violation.message
        assert "oops" in violation.message
        assert violation.constraint == "int"

    def test_exists_runtime_predicate(self, make_store):
        runtime = StaticRuntime(filesystem=FakeFileSystem(["/share/os/v2"]))
        session = session_for(make_store, [("A.Path", "/share/os/v2")], runtime=runtime)
        assert run(session, "$Path -> path & exists").passed
        session2 = session_for(make_store, [("A.Path", "/share/os/v9")], runtime=runtime)
        assert not run(session2, "$Path -> path & exists").passed


class TestReportBookkeeping:
    def test_counts(self, make_store):
        session = session_for(make_store, [("A::1.K", "1"), ("A::2.K", "2")])
        report = run(session, "$K -> int\n$K -> [0, 10]")
        assert report.specs_evaluated >= 1
        assert report.instances_checked >= 2
        assert report.specs_failed == 0

    def test_failed_spec_counted(self, make_store):
        session = session_for(make_store, [("A.K", "x")])
        report = run(session, "$K -> int")
        assert report.specs_failed == 1
