"""Cross-feature interactions: optimizer×messages, editor×XML,
incremental×unions, service×both-changed, trie configs, printer blocks."""

from __future__ import annotations

import os

import pytest

from repro import (
    ConfigRepository,
    ConfigStore,
    IncrementalValidator,
    SourceSpec,
    ValidationService,
    ValidationSession,
)
from repro.console import EditorValidator
from repro.cpl import parse, print_program
from repro.repository import NaiveIndex, TrieIndex
from repro.repository.keys import parse_instance_key
from repro.repository.model import ConfigInstance


def inst(key, value):
    return ConfigInstance(parse_instance_key(key), value, "t")


class TestOptimizerInteractions:
    def test_union_from_parser_and_aggregation_coexist(self, make_store):
        session = ValidationSession(store=make_store([
            ("s.k1", "10.0.0.1"), ("s.k2", "10.0.0.2"), ("s.k3", "x"),
        ]))
        report = session.validate("$s.k1, $s.k2 -> ip\n$s.k3 -> ip")
        assert len(report.violations) == 1
        assert report.violations[0].key == "s.k3"

    def test_custom_message_spec_next_to_mergeable_ones(self, make_store):
        session = ValidationSession(store=make_store([("A.K", "x")]))
        report = session.validate(
            "$K -> int !! 'custom'\n$K -> nonempty\n$K -> string"
        )
        messages = {v.message for v in report.violations}
        assert "custom" in messages

    def test_optimizer_with_namespace_blocks(self, make_store):
        session = ValidationSession(store=make_store([("r.s.k", "5")]))
        report = session.validate(
            "namespace r.s {\n$k -> int\n$k -> nonempty\n$k -> [1, 9]\n}"
        )
        assert report.passed

    def test_stop_on_first_respects_priorities_across_blocks(self, make_store):
        from repro import ValidationPolicy

        policy = ValidationPolicy(
            stop_on_first_violation=True, priorities={"Critical": 5}
        )
        session = ValidationSession(
            store=make_store([("A.Minor", "x"), ("A.Critical", "y")]),
            policy=policy, optimize=False,
        )
        report = session.validate("$Minor -> int\n$Critical -> int")
        assert report.violations[0].key == "A.Critical"


class TestEditorXML:
    SPEC = "compartment Cluster {\n$StartIP <= $EndIP\n}"

    def test_xml_buffer_diagnostics(self):
        editor = EditorValidator(self.SPEC, "xml")
        bad = (
            '<Cluster Name="C1">'
            '<Setting Key="StartIP" Value="10.0.0.50"/>'
            '<Setting Key="EndIP" Value="10.0.0.9"/>'
            "</Cluster>"
        )
        diagnostics = editor.update(bad)
        assert len(diagnostics) == 1
        assert "StartIP" in diagnostics[0].key

    def test_xml_buffer_fixed(self):
        editor = EditorValidator(self.SPEC, "xml")
        good = (
            '<Cluster Name="C1">'
            '<Setting Key="StartIP" Value="10.0.0.1"/>'
            '<Setting Key="EndIP" Value="10.0.0.9"/>'
            "</Cluster>"
        )
        assert editor.update(good) == []


class TestIncrementalUnions:
    def test_union_domain_spec_selected_by_either_member(self):
        validator = IncrementalValidator("$s.k1, $s.k2 -> int")
        repo = ConfigRepository()
        old = repo.commit([inst("s.k1", "1"), inst("s.k2", "2")])
        new = repo.commit([inst("s.k1", "1"), inst("s.k2", "x")])
        change = repo.diff(old, new)
        report = validator.validate_change(repo.store_for(new), change)
        assert len(report.violations) == 1

    def test_inline_compartment_spec_selected(self):
        validator = IncrementalValidator("#[DC] $Pool.F# -> consistent")
        repo = ConfigRepository()
        old = repo.commit([
            inst("DC::D1.Pool::P1.F", "80"), inst("DC::D1.Pool::P2.F", "80"),
        ])
        new = repo.commit([
            inst("DC::D1.Pool::P1.F", "80"), inst("DC::D1.Pool::P2.F", "70"),
        ])
        report = validator.validate_change(repo.store_for(new), repo.diff(old, new))
        assert len(report.violations) == 1


class TestServiceBothChanged:
    def test_spec_and_data_change_in_one_scan(self, tmp_path):
        spec = tmp_path / "s.cpl"
        config = tmp_path / "c.ini"
        spec.write_text("$s.K -> int\n")
        config.write_text("[s]\nK = 5\n")
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        assert service.scan().passed

        spec.write_text("$s.K -> int & [1, 3]\n")
        config.write_text("[s]\nK = 9\n")
        for path in (spec, config):
            stat = os.stat(path)
            os.utime(path, ns=(stat.st_atime_ns + 10**6, stat.st_mtime_ns + 10**6))
        result = service.scan()
        assert result is not None
        assert not result.passed
        assert len(result.changed_paths) == 2


class TestIndexConfigurations:
    def test_store_with_naive_index(self):
        store = ConfigStore(index=NaiveIndex())
        store.add(inst("A::1.K", "v"))
        store.add(inst("A::2.K", "w"))
        assert len(store.query("K")) == 2
        session = ValidationSession(store=store)
        assert session.validate("$K -> nonempty").passed

    def test_trie_cache_disabled(self):
        trie = TrieIndex(cache_size=0)
        store = ConfigStore(index=trie)
        store.add(inst("A.K", "v"))
        assert len(store.query("K")) == 1
        assert len(store.query("K")) == 1
        assert trie.cache_hits == 0


class TestPrinterBlocks:
    def test_if_statement_with_else_prints_and_reparses(self):
        source = (
            "if ($C -> ~match('UF')) {\n"
            "  $F::$C.T -> nonempty\n"
            "} else {\n"
            "  $F::$C.T -> ~nonempty\n"
            "}"
        )
        printed = print_program(parse(source))
        assert "else" in printed
        reparsed = print_program(parse(printed))
        assert reparsed == printed

    def test_nested_blocks_indented(self):
        source = "compartment DC {\ncompartment Rack {\n$Loc -> unique\n}\n}"
        printed = print_program(parse(source))
        assert "  compartment Rack {" in printed
        assert "    $Loc -> unique" in printed

    def test_stdlib_prints_and_reparses(self):
        from repro.cpl.stdlib import STDLIB_CPL

        printed = print_program(parse(STDLIB_CPL))
        assert print_program(parse(printed)) == printed


class TestRepairIntegration:
    def test_repair_then_commit_workflow(self, make_store):
        from repro.core import apply_repairs, suggest_repairs

        store = make_store([
            ("Cluster::C1.Pool", "comput"),
            ("Cluster::C2.Pool", "storage"),
        ])
        spec = "$Pool -> {'compute', 'storage'}"
        report = ValidationSession(store=store).validate(spec)
        repairs = suggest_repairs(report, store)
        repaired = apply_repairs(store.instances(), repairs)

        repo = ConfigRepository()
        repo.commit(list(store.instances()), "broken")
        snapshot = repo.commit(repaired, "auto-repaired")
        assert ValidationSession(store=repo.store_for(snapshot)).validate(spec).passed
        assert len(repo.diff(*repo.log()[-2:]).modified) == 1
