"""Incremental delta-validation: equivalence with full scans (ISSUE-6).

The central acceptance criterion is *byte-identical reports*: a service
running with ``delta=True`` must produce, for every scan, a report whose
``fingerprint()`` equals the one a full-scan twin produces from the same
files.  The twin harness below drives both services through adversarial
change sequences — ``$var``-widened foreach targets, free-variable pool
patterns, aggregate predicates, emptied and deleted sources, and changes
landing while a spec circuit breaker is open — asserting parity at every
step.

Also covered here: the probe-token change detector (same-mtime rewrites
must be seen), watch mode, delta jobs (including the full-fallback arm
and submission validation), and the module doctests the documentation
satellites added.
"""

from __future__ import annotations

import doctest
import os

import pytest

from repro import (
    ResiliencePolicy,
    SourceSpec,
    ValidationService,
)
from repro.core.report import HealthBlock
from repro.jobs import JobService, JobState
from repro.predicates import register_predicate

# ---------------------------------------------------------------------------
# Twin harness
# ---------------------------------------------------------------------------

RICH_SPEC = (
    "let SmallInt := int & [1, 60]\n"
    "$Cluster.Timeout -> @SmallInt\n"
    "$Cluster.Mode -> {'fast', 'safe'}\n"
    "$*Port* -> port\n"
    "$PoolName -> foreach($Pool::$_.Vip) -> ip\n"
    "$node.Replicas -> count -> == 1\n"
)

CLUSTER_INI = "[Cluster]\nTimeout = 30\nMode = fast\n"
POOLS_INI = (
    "[PoolName::1]\nPoolName = p1\n"
    "[Pool::p1]\nVip = 10.0.0.1\n"
    "[Pool::p2]\nVip = 10.0.0.2\n"
)
NODES_INI = "[node]\nReplicas = 3\nHttpPort = 8080\n"


def write(path, text):
    path.write_text(text)
    return str(path)


def rewrite(path, text):
    path.write_text(text)
    # strictly newer mtime even on coarse-granularity filesystems
    stat = os.stat(path)
    os.utime(path, ns=(stat.st_atime_ns + 1_000_000, stat.st_mtime_ns + 1_000_000))


class Twins:
    """A full-scan service and a delta service watching the same files."""

    def __init__(self, tmp_path, spec_text=RICH_SPEC, resilience=None):
        self.tmp_path = tmp_path
        self.spec = tmp_path / "spec.cpl"
        write(self.spec, spec_text)
        self.files = {}
        for name, text in (
            ("cluster.ini", CLUSTER_INI),
            ("pools.ini", POOLS_INI),
            ("nodes.ini", NODES_INI),
        ):
            self.files[name] = tmp_path / name
            write(self.files[name], text)
        sources = [SourceSpec("ini", str(p)) for p in self.files.values()]

        def policy():
            return None if resilience is None else ResiliencePolicy(**resilience)

        self.full = ValidationService(str(self.spec), sources, resilience=policy())
        self.delta = ValidationService(
            str(self.spec), sources, resilience=policy(), delta=True
        )

    def step(self, expect_mode=...):
        """Run both services once; assert fingerprint parity; return the
        delta twin's result.  ``expect_mode`` checks the scoping decision:
        "bootstrap"/"delta" for an incremental scan, ``None`` for a
        full-path fallback, ``...`` for "don't care"."""
        full = self.full.run_once()
        incr = self.delta.run_once()
        assert incr.report.fingerprint() == full.report.fingerprint()
        assert incr.passed == full.passed
        if full.health is not None or incr.health is not None:
            assert incr.health.status == full.health.status
        if expect_mode is None:
            assert incr.delta is None
        elif expect_mode is not ...:
            assert incr.delta is not None
            assert incr.delta["mode"] == expect_mode
        return incr

    def change(self, name, text):
        rewrite(self.files[name], text)


# ---------------------------------------------------------------------------
# Strict-mode equivalence under adversarial change sets
# ---------------------------------------------------------------------------


class TestStrictEquivalence:
    def test_bootstrap_then_single_key_change_is_scoped(self, tmp_path):
        twins = Twins(tmp_path)
        first = twins.step(expect_mode="bootstrap")
        assert first.passed
        twins.change("cluster.ini", "[Cluster]\nTimeout = 45\nMode = fast\n")
        second = twins.step(expect_mode="delta")
        assert second.passed
        # the point of delta: a one-key change re-runs a strict subset
        assert 0 < second.delta["selected"] < second.delta["statements_total"]

    def test_unchanged_rescan_selects_nothing(self, tmp_path):
        twins = Twins(tmp_path)
        twins.step(expect_mode="bootstrap")
        result = twins.step(expect_mode="delta")  # forced, nothing changed
        assert result.delta["selected"] == 0

    def test_violation_introduced_by_delta_scan(self, tmp_path):
        twins = Twins(tmp_path)
        twins.step()
        twins.change("cluster.ini", "[Cluster]\nTimeout = 999\nMode = fast\n")
        result = twins.step(expect_mode="delta")
        assert not result.passed

    def test_foreach_target_change_is_selected(self, tmp_path):
        # $PoolName -> foreach($Pool::$_.Vip) -> ip: the foreach requeries
        # $Pool::<value>.Vip, so the index must widen the $var qualifier
        # and re-run the statement when ANY Pool instance moves.
        twins = Twins(tmp_path)
        twins.step()
        twins.change(
            "pools.ini",
            "[PoolName::1]\nPoolName = p1\n"
            "[Pool::p1]\nVip = oops\n"
            "[Pool::p2]\nVip = 10.0.0.2\n",
        )
        result = twins.step(expect_mode="delta")
        assert not result.passed

    def test_var_widened_unreferenced_pool_change(self, tmp_path):
        # Changing the pool the foreach does NOT reference must still keep
        # parity (conservative selection may re-run it; the verdict and
        # fingerprint must match the full twin either way).
        twins = Twins(tmp_path)
        twins.step()
        twins.change(
            "pools.ini",
            "[PoolName::1]\nPoolName = p1\n"
            "[Pool::p1]\nVip = 10.0.0.1\n"
            "[Pool::p2]\nVip = not-an-ip\n",
        )
        result = twins.step(expect_mode="delta")
        assert result.passed  # p2 is never dereferenced

    def test_free_variable_pool_retarget(self, tmp_path):
        # Repointing PoolName at the now-bad pool flips the verdict.
        twins = Twins(tmp_path)
        twins.step()
        twins.change(
            "pools.ini",
            "[PoolName::1]\nPoolName = p2\n"
            "[Pool::p1]\nVip = 10.0.0.1\n"
            "[Pool::p2]\nVip = not-an-ip\n",
        )
        result = twins.step(expect_mode="delta")
        assert not result.passed

    def test_aggregate_predicate_sees_cardinality_change(self, tmp_path):
        # count aggregates over every matching instance: a duplicate key
        # (second node.Replicas instance) must re-run the aggregate.
        twins = Twins(tmp_path)
        assert twins.step().passed
        twins.change(
            "nodes.ini",
            "[node]\nReplicas = 3\nReplicas = 5\nHttpPort = 8080\n",
        )
        result = twins.step(expect_mode="delta")
        assert not result.passed  # count == 1 now fails (two instances)

    def test_wildcard_pattern_change(self, tmp_path):
        twins = Twins(tmp_path)
        twins.step()
        twins.change("nodes.ini", "[node]\nReplicas = 3\nHttpPort = 99999\n")
        result = twins.step(expect_mode="delta")
        assert not result.passed  # $*Port* -> port

    def test_emptied_source(self, tmp_path):
        twins = Twins(tmp_path)
        twins.step()
        twins.change("pools.ini", "")
        result = twins.step(expect_mode="delta")
        # removals flow through the index like additions; both twins now
        # simply have no pool instances to check
        assert result.passed == twins.full.history[-1].passed

    def test_spec_change_forces_bootstrap(self, tmp_path):
        twins = Twins(tmp_path)
        twins.step(expect_mode="bootstrap")
        rewrite(twins.spec, RICH_SPEC + "$Cluster.Timeout -> <= 50\n")
        twins.step(expect_mode="bootstrap")
        twins.change("cluster.ini", "[Cluster]\nTimeout = 55\nMode = fast\n")
        result = twins.step(expect_mode="delta")
        assert not result.passed

    def test_many_scan_soak_stays_in_lockstep(self, tmp_path):
        twins = Twins(tmp_path)
        timeouts = [30, 2, 61, 59, 1, 30]
        for index, timeout in enumerate(timeouts):
            twins.change(
                "cluster.ini", f"[Cluster]\nTimeout = {timeout}\nMode = fast\n"
            )
            result = twins.step()
            assert result.passed == (1 <= timeout <= 60)
        stats = twins.delta.stats()["delta"]
        assert stats["scans"] == len(timeouts)
        assert stats["fallbacks"] == 0


# ---------------------------------------------------------------------------
# Resilient-mode equivalence: faults while delta is active
# ---------------------------------------------------------------------------

BOMB = {"armed": False}


def _denotate(value, *args):
    if BOMB["armed"]:
        raise RuntimeError("injected spec fault")
    return True


register_predicate("denotate", _denotate)

RESILIENT_SPEC = (
    "$Cluster.Timeout -> denotate\n"
    "$Cluster.Timeout -> int & [1, 60]\n"
    "$node.Replicas -> int\n"
)


class TestResilientEquivalence:
    RESILIENCE = {"quarantine_threshold": 1, "probe_interval": 2}

    def twins(self, tmp_path, **overrides):
        options = dict(self.RESILIENCE)
        options.update(overrides)
        return Twins(tmp_path, spec_text=RESILIENT_SPEC, resilience=options)

    def test_source_deletion_falls_back_and_recovers(self, tmp_path):
        twins = self.twins(tmp_path)
        twins.step(expect_mode="bootstrap")
        os.remove(twins.files["nodes.ini"])
        degraded = twins.step(expect_mode=None)  # full path, never raises
        assert degraded.health.status == HealthBlock.DEGRADED
        assert degraded.health.source_failures[0]["kind"] == "missing"
        # restored file: quarantine lifts, then delta mode resumes
        rewrite(twins.files["nodes.ini"], NODES_INI)
        recovered = twins.step()
        assert recovered.health.status == HealthBlock.OK
        twins.change("cluster.ini", "[Cluster]\nTimeout = 31\nMode = fast\n")
        resumed = twins.step()
        assert resumed.delta is not None  # incremental path is active again
        assert twins.delta.stats()["delta"]["fallbacks"] >= 1

    def test_change_during_open_breaker(self, tmp_path):
        twins = self.twins(tmp_path)
        twins.step(expect_mode="bootstrap")
        BOMB["armed"] = True
        try:
            # the fault arrives WITH a change to its input, so the delta
            # scan selects the statement, errors, and trips the breaker
            # (threshold=1) in lockstep with the full twin
            twins.change("cluster.ini", "[Cluster]\nTimeout = 31\nMode = fast\n")
            tripped = twins.step(expect_mode="delta")
            assert tripped.health.status == HealthBlock.DEGRADED
            assert tripped.health.spec_errors
            # breaker now open: a change landing while it is open must take
            # the full path (a delta scan skipping the broken statement
            # would otherwise close the breaker without re-running it)
            twins.change("cluster.ini", "[Cluster]\nTimeout = 32\nMode = fast\n")
            skipped = twins.step(expect_mode=None)
            assert skipped.health.quarantined_specs
        finally:
            BOMB["armed"] = False
        # cause fixed: scans stay on the full path (and in parity) until the
        # half-open probe closes the breaker and health returns to OK
        for __ in range(4):
            result = twins.step(expect_mode=None)
            if result.health.status == HealthBlock.OK:
                break
        assert result.health.status == HealthBlock.OK
        # healthy again: the next change goes back through the delta path
        twins.change("cluster.ini", "[Cluster]\nTimeout = 33\nMode = fast\n")
        resumed = twins.step(expect_mode="bootstrap")  # state was reset
        assert resumed.passed
        twins.change("cluster.ini", "[Cluster]\nTimeout = 34\nMode = fast\n")
        twins.step(expect_mode="delta")


# ---------------------------------------------------------------------------
# Probe-token change detection (same-mtime rewrites)
# ---------------------------------------------------------------------------


class TestProbeTokens:
    def test_same_mtime_same_size_rewrite_is_detected(self, tmp_path):
        spec = write(tmp_path / "spec.cpl", "$fabric.Timeout -> int & [1, 60]\n")
        config = tmp_path / "prod.ini"
        write(config, "[fabric]\nTimeout = 30\n")
        service = ValidationService(spec, [SourceSpec("ini", str(config))])
        assert service.scan().passed
        stat = os.stat(config)
        # adversarial rewrite: same byte length, mtime pinned back — only
        # the content hash in the probe token can catch this
        config.write_text("[fabric]\nTimeout = 99\n")
        os.utime(config, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        result = service.scan()
        assert result is not None, "same-mtime rewrite was missed"
        assert not result.passed

    def test_deletion_and_steady_absence(self, tmp_path):
        spec = write(tmp_path / "spec.cpl", "$fabric.Timeout -> int\n")
        config = tmp_path / "prod.ini"
        write(config, "[fabric]\nTimeout = 30\n")
        service = ValidationService(spec, [SourceSpec("ini", str(config))])
        service._changed_paths()               # prime the probe tokens
        os.remove(config)
        assert str(config) in service._changed_paths()  # deletion = change
        # the None token is itself stable: steady absence must NOT keep
        # registering as a change scan over scan
        assert service._changed_paths() == []


# ---------------------------------------------------------------------------
# Watch mode
# ---------------------------------------------------------------------------


class TestWatch:
    def test_watch_validates_then_stops_at_max_scans(self, tmp_path):
        spec = write(tmp_path / "spec.cpl", "$fabric.Timeout -> int & [1, 60]\n")
        config = tmp_path / "prod.ini"
        write(config, "[fabric]\nTimeout = 30\n")
        service = ValidationService(
            spec, [SourceSpec("ini", str(config))], delta=True
        )
        seen = []
        ticks = {"count": 0}

        def sleeper(interval):
            # between polls, an editor rewrites the config
            ticks["count"] += 1
            rewrite(config, f"[fabric]\nTimeout = {30 + ticks['count']}\n")

        results = service.watch(
            interval=0.01, max_scans=3, on_result=seen.append, sleep=sleeper
        )
        # max_scans counts VALIDATIONS, not polls
        assert len(results) == 3
        assert seen == results
        assert results[0].delta["mode"] == "bootstrap"
        assert all(r.delta["mode"] == "delta" for r in results[1:])

    def test_watch_idle_polls_do_not_validate(self, tmp_path):
        spec = write(tmp_path / "spec.cpl", "$fabric.Timeout -> int\n")
        config = tmp_path / "prod.ini"
        write(config, "[fabric]\nTimeout = 30\n")
        service = ValidationService(spec, [SourceSpec("ini", str(config))])
        polls = {"count": 0}

        def sleeper(interval):
            polls["count"] += 1
            if polls["count"] == 5:
                rewrite(config, "[fabric]\nTimeout = 31\n")

        results = service.watch(max_scans=2, sleep=sleeper)
        assert len(results) == 2               # bootstrap + the one change
        assert polls["count"] >= 5             # idle polls in between
        assert len(service.history) == 2


# ---------------------------------------------------------------------------
# Delta jobs
# ---------------------------------------------------------------------------

JOB_SPEC = "$s.Timeout -> int & [1, 60]\n$s.Flag -> bool\n$s.Name -> nonempty\n"
BASELINE_INI = "[s]\nTimeout = 30\nFlag = true\nName = web\n"
CHANGED_INI = "[s]\nTimeout = 999\nFlag = true\nName = web\n"


def inline(text):
    return [{"format": "ini", "text": text, "source": "inline.ini"}]


class TestDeltaJobs:
    def run_job(self, tmp_path, **submission):
        service = JobService(workers=1, journal_path=str(tmp_path / "j.jsonl"))
        try:
            job, __ = service.submit(**submission)
            return service.wait(job.id, timeout=30)
        finally:
            service.close()

    def test_delta_job_scopes_to_the_change(self, tmp_path):
        done = self.run_job(
            tmp_path,
            spec=JOB_SPEC,
            sources=inline(CHANGED_INI),
            baseline_sources=inline(BASELINE_INI),
            mode="delta",
        )
        assert done.state == JobState.DONE
        assert done.result["verdict"] == "reject"
        delta = done.result["delta"]
        assert delta["mode"] == "delta"
        assert delta["statements_total"] == 3
        assert delta["selected"] == 1          # only the Timeout statement
        assert delta["skipped"] == 2
        assert done.result["violations"] == 1

    def test_delta_job_with_identical_sources_selects_nothing(self, tmp_path):
        done = self.run_job(
            tmp_path,
            spec=JOB_SPEC,
            sources=inline(BASELINE_INI),
            baseline_sources=inline(BASELINE_INI),
            mode="delta",
        )
        assert done.state == JobState.DONE
        assert done.result["verdict"] == "admit"
        assert done.result["delta"]["selected"] == 0

    def test_unsound_program_takes_full_fallback(self, tmp_path):
        # a let nested in a block defeats sharded (and therefore delta)
        # evaluation: the job must fall back to a full run and say so
        spec = (
            "compartment s {\n"
            "let T := int & [1, 60]\n"
            "$Timeout -> @T\n"
            "}\n"
        )
        done = self.run_job(
            tmp_path,
            spec=spec,
            sources=inline(CHANGED_INI),
            baseline_sources=inline(BASELINE_INI),
            mode="delta",
        )
        assert done.state == JobState.DONE
        assert done.result["verdict"] == "reject"
        assert done.result["delta"]["mode"] == "full-fallback"
        assert "soundly" in done.result["delta"]["reason"]

    def test_submit_rejects_malformed_delta_requests(self):
        service = JobService(workers=0)
        try:
            with pytest.raises(ValueError):
                service.submit(spec=JOB_SPEC, mode="sideways")
            with pytest.raises(ValueError):
                # baseline without delta mode is a contradiction
                service.submit(
                    spec=JOB_SPEC, baseline_sources=inline(BASELINE_INI)
                )
            with pytest.raises(ValueError):
                service.submit_payload(
                    {"spec": JOB_SPEC, "mode": "delta",
                     "baseline_sources": "not-a-list"}
                )
            with pytest.raises(ValueError):
                service.submit_payload({"spec": JOB_SPEC, "mode": 7})
        finally:
            service.close()

    def test_payload_round_trip(self):
        service = JobService(workers=0)
        try:
            job, created = service.submit_payload(
                {
                    "spec": JOB_SPEC,
                    "mode": "delta",
                    "sources": [
                        {"format": "ini", "text": CHANGED_INI,
                         "source": "inline.ini"}
                    ],
                    "baseline_sources": [
                        {"format": "ini", "text": BASELINE_INI,
                         "source": "inline.ini"}
                    ],
                }
            )
            assert created
            assert job.mode == "delta"
            assert job.summary()["mode"] == "delta"
            assert job.to_dict()["baseline_sources"]
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Documentation satellites: module doctests must actually run
# ---------------------------------------------------------------------------


class TestModuleDoctests:
    @pytest.mark.parametrize(
        "module_name",
        ["repro.core.incremental", "repro.repository.versioned"],
    )
    def test_doctests_pass_and_exist(self, module_name):
        module = __import__(module_name, fromlist=["__name__"])
        results = doctest.testmod(module)
        assert results.failed == 0
        assert results.attempted > 0, f"{module_name} carries no doctests"

    @pytest.mark.parametrize(
        "module_name",
        ["repro.core.incremental", "repro.repository.versioned"],
    )
    def test_all_exports_resolve(self, module_name):
        module = __import__(module_name, fromlist=["__name__"])
        assert module.__all__, f"{module_name} must declare __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"
