"""Benchmark utilities: tables, histograms, LoC counting, spec counting."""

from __future__ import annotations

from repro.benchutil import (
    ascii_histogram,
    count_spec_statements,
    effective_loc,
    format_table,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["Name", "N"], [("alpha", 1), ("b", 100)])
        lines = text.splitlines()
        assert lines[0].startswith("Name")
        assert set(lines[1]) <= {"-", " "}
        assert len({line.index("1") for line in lines[2:]}) == 1

    def test_empty_rows(self):
        text = format_table(["A"], [])
        assert "A" in text


class TestHistogram:
    def test_bars_scale_to_peak(self):
        text = ascii_histogram({0: 1, 1: 10}, width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert 1 <= lines[0].count("#") <= 10

    def test_zero_count_no_bar(self):
        text = ascii_histogram({0: 0, 1: 5})
        assert text.splitlines()[0].count("#") == 0

    def test_empty(self):
        assert ascii_histogram({}) == "(empty)"

    def test_sorted_buckets(self):
        text = ascii_histogram({3: 1, 1: 1, 2: 1})
        numbers = [int(line.split()[0]) for line in text.splitlines()]
        assert numbers == [1, 2, 3]


class TestEffectiveLoc:
    def test_skips_comments_blanks_docstrings(self):
        source = '"""doc\nstring"""\n\n# comment\n// cpl comment\nx = 1\ny = 2\n'
        assert effective_loc(source) == 2

    def test_cpl_text(self):
        assert effective_loc("// c\n$a -> int\n\n$b -> bool\n") == 2


class TestCountSpecs:
    def test_counts_only_spec_statements(self):
        text = (
            "load 'ini' 'x.ini'\n"
            "let M := int\n"
            "$a -> int\n"
            "compartment C {\n$b -> @M\n$c -> bool\n}\n"
            "if ($d == 'x') $e -> int else $f -> int\n"
        )
        assert count_spec_statements(text) == 5

    def test_empty(self):
        assert count_spec_statements("// nothing\n") == 0
