"""End-to-end integration: the paper's own scenarios, driven whole."""

from __future__ import annotations

import pytest

from repro import (
    InferenceEngine,
    StaticRuntime,
    ValidationSession,
)
from repro.drivers import clear_endpoints, register_endpoint
from repro.runtime import FakeFileSystem


class TestListing5EndToEnd:
    """The complete Listing 5 program against a matching store."""

    def build_session(self, tmp_path):
        runtime = StaticRuntime(filesystem=FakeFileSystem(["/path/to/os"]))
        session = ValidationSession(runtime=runtime, base_dir=str(tmp_path))
        session.load_text("xml", """
        <Cluster Name="C1">
          <Setting Key="MachinePool" Value="mp-compute"/>
          <Setting Key="StartIP" Value="10.0.0.1"/>
          <Setting Key="EndIP" Value="10.0.0.100"/>
          <Setting Key="ProxyIP" Value="10.0.0.7"/>
          <Setting Key="IPv6Prefix" Value=""/>
        </Cluster>
        <Cluster Name="C2">
          <Setting Key="MachinePool" Value="mp-storage"/>
          <Setting Key="StartIP" Value="10.1.0.1"/>
          <Setting Key="EndIP" Value="10.1.0.100"/>
          <Setting Key="ProxyIP" Value="10.1.0.7"/>
          <Setting Key="IPv6Prefix" Value="2001:db8::/32"/>
        </Cluster>
        <MachinePool Name="mp-compute"><Setting Key="Name" Value="mp-compute"/></MachinePool>
        <MachinePool Name="mp-storage"><Setting Key="Name" Value="mp-storage"/></MachinePool>
        <Datacenter Name="D1">
          <Machinepool Name="p1"><Setting Key="FillFactor" Value="80"/></Machinepool>
          <Machinepool Name="p2"><Setting Key="FillFactor" Value="80"/></Machinepool>
        </Datacenter>
        <Fabric>
          <Setting Key="AlertFailNodesThreshold" Value="10"/>
        </Fabric>
        <RoutingEntry><Setting Key="Gateway" Value="LoadBalancerGateway"/></RoutingEntry>
        <LoadBalancerSet Name="L1"><Setting Key="Device" Value="dev-1"/></LoadBalancerSet>
        """, source="demo")
        return session

    def test_full_program_passes(self, tmp_path):
        (tmp_path / "type_checks.cpl").write_text(
            "$Fabric.AlertFailNodesThreshold -> int\n"
        )
        session = self.build_session(tmp_path)
        report = session.validate("""
        include 'type_checks.cpl'
        let UniqueCIDR := unique & cidr

        $Cluster.MachinePool -> {$MachinePool.Name}
        $Fabric.AlertFailNodesThreshold -> int & nonempty & [5,15]
        #[Datacenter] $Machinepool.FillFactor# -> consistent
        compartment Cluster {
          $ProxyIP -> [$StartIP, $EndIP]
          $IPv6Prefix -> ~nonempty | @UniqueCIDR
        }
        if (exists $RoutingEntry.Gateway == 'LoadBalancerGateway')
          $LoadBalancerSet.Device -> nonempty
        """)
        assert report.passed, report.render()

    def test_violations_pinpoint_instances(self, tmp_path):
        (tmp_path / "type_checks.cpl").write_text("")
        session = self.build_session(tmp_path)
        session.load_text("xml", """
        <Cluster Name="C3">
          <Setting Key="MachinePool" Value="mp-gpu"/>
          <Setting Key="StartIP" Value="10.2.0.1"/>
          <Setting Key="EndIP" Value="10.2.0.100"/>
          <Setting Key="ProxyIP" Value="10.9.0.7"/>
          <Setting Key="IPv6Prefix" Value=""/>
        </Cluster>
        """, source="update")
        report = session.validate("""
        $Cluster.MachinePool -> {$MachinePool.Name}
        compartment Cluster { $ProxyIP -> [$StartIP, $EndIP] }
        """)
        keys = {v.key for v in report.violations}
        assert "Cluster::C3.MachinePool" in keys
        assert "Cluster::C3.ProxyIP" in keys
        assert len(report.violations) == 2


class TestCrossSourceValidation:
    """Paper §4.2.2: cross-validating different configuration sources."""

    def test_controller_vs_auth_secret_keys(self):
        clear_endpoints()
        register_endpoint(
            "auth.internal:443", {"auth": {"SecretKey": "s3cr3t-value-01"}}
        )
        session = ValidationSession()
        session.load_text("ini", "[controller]\nSecretKey = s3cr3t-value-01\n")
        session.load_source("rest", "auth.internal:443")
        report = session.validate("$controller.SecretKey -> == $auth.SecretKey")
        assert report.passed

    def test_cross_source_mismatch_detected(self):
        clear_endpoints()
        register_endpoint("auth.internal:443", {"auth": {"SecretKey": "other"}})
        session = ValidationSession()
        session.load_text("ini", "[controller]\nSecretKey = s3cr3t-value-01\n")
        session.load_source("rest", "auth.internal:443")
        report = session.validate("$controller.SecretKey -> == $auth.SecretKey")
        assert len(report.violations) == 1

    def test_mixed_formats_unified(self):
        session = ValidationSession()
        session.load_text("xml", "<A><Setting Key='Timeout' Value='30'/></A>")
        session.load_text("ini", "[B]\nTimeout = 30\n")
        session.load_text("json", '{"C": {"Timeout": 30}}')
        session.load_text("yaml", "D:\n  Timeout: 30\n")
        report = session.validate("$Timeout -> int & consistent")
        assert report.passed
        assert report.instances_checked == 4


class TestInferThenValidateWorkflow:
    """The paper's main loop: mine specs from good data, validate updates."""

    def test_workflow(self):
        good = ValidationSession()
        lines = []
        for index in range(30):
            lines.append(f"Cluster::C{index}.Timeout = {20 + index % 10}")
            lines.append(f"Cluster::C{index}.Mode = {'fast' if index % 2 else 'safe'}")
        good.load_text("keyvalue", "\n".join(lines))
        inferred = InferenceEngine().infer(good.store)

        update = ValidationSession()
        update.load_text(
            "keyvalue",
            "Cluster::C0.Timeout = 9999\nCluster::C1.Mode = fsat\n"
            "Cluster::C2.Timeout = 25\nCluster::C3.Mode = safe\n",
        )
        report = update.validate(inferred.to_cpl())
        assert len(report.violations) == 2
        constraints = {v.constraint for v in report.violations}
        assert "range" in constraints
        assert "membership" in constraints

    def test_report_grouping_flags_bad_inferred_spec(self):
        """§6.3: a constraint failed by many instances is suspicious."""
        good = ValidationSession()
        good.load_text(
            "keyvalue", "\n".join(f"A::{i}.Port = {8000 + i % 3}" for i in range(30))
        )
        inferred = InferenceEngine().infer(good.store)

        # new snapshot where the port range legitimately moved
        update = ValidationSession()
        update.load_text(
            "keyvalue", "\n".join(f"A::{i}.Port = {9000 + i % 3}" for i in range(30))
        )
        report = update.validate(inferred.to_cpl())
        assert report.suspicious_constraints(threshold=10)
