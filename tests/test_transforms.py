"""Transformation functions: map-like and reduce-like (paper §4.2.1)."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError, UnknownTransformError
from repro.transforms import get_transform, is_transform, register_transform, transform_names


class TestRegistry:
    def test_paper_count_at_least_13(self):
        # paper §5: "13 transformation functions"
        assert len(transform_names()) >= 13

    def test_unknown_raises(self):
        with pytest.raises(UnknownTransformError):
            get_transform("frobnicate")

    def test_plugin_registration(self):
        register_transform("reverse_test", lambda v: str(v)[::-1])
        assert get_transform("reverse_test").fn("abc") == "cba"

    def test_is_transform(self):
        assert is_transform("split")
        assert not is_transform("consistent")


class TestStringTransforms:
    def test_split_default_comma(self):
        assert get_transform("split").fn("a, b,c") == ["a", "b", "c"]

    def test_split_custom_separator(self):
        assert get_transform("split").fn("a-b", "-") == ["a", "b"]

    def test_split_flattens_lists(self):
        # paper idiom: split(';') then split('-') over the parts
        assert get_transform("split").fn(["a-b", "c-d"], "-") == ["a", "b", "c", "d"]

    def test_at(self):
        assert get_transform("at").fn(["x", "y"], 0) == "x"
        assert get_transform("at").fn(["x", "y"], -1) == "y"

    def test_at_requires_list(self):
        with pytest.raises(EvaluationError):
            get_transform("at").fn("scalar", 0)

    def test_at_out_of_bounds(self):
        with pytest.raises(EvaluationError):
            get_transform("at").fn(["x"], 5)

    def test_case_and_trim(self):
        assert get_transform("lower").fn("AbC") == "abc"
        assert get_transform("upper").fn("abc") == "ABC"
        assert get_transform("trim").fn("  x ") == "x"

    def test_replace_concat_prepend_substr(self):
        assert get_transform("replace").fn("a-b", "-", ":") == "a:b"
        assert get_transform("concat").fn("a", ".vhd") == "a.vhd"
        assert get_transform("prepend").fn("path", "/root/") == "/root/path"
        assert get_transform("substr").fn("abcdef", 1, 3) == "bc"
        assert get_transform("substr").fn("abcdef", 2) == "cdef"


class TestNumericTransforms:
    def test_len_of_string_and_list(self):
        assert get_transform("len").fn("abcd") == "4"
        assert get_transform("len").fn(["a", "b"]) == "2"

    def test_abs_negate(self):
        assert get_transform("abs").fn("-5") == "5"
        assert get_transform("negate").fn("5") == "-5"

    def test_abs_non_numeric_raises(self):
        with pytest.raises(EvaluationError):
            get_transform("abs").fn("word")

    def test_reduces(self):
        assert get_transform("sum").fn(["1", "2", "3"]) == "6"
        assert get_transform("min").fn(["5", "2", "9"]) == "2"
        assert get_transform("max").fn(["5", "2", "9"]) == "9"
        assert get_transform("count").fn(["a", "b"]) == "2"

    def test_min_empty_raises(self):
        with pytest.raises(EvaluationError):
            get_transform("min").fn([])

    def test_reduce_flags(self):
        assert get_transform("sum").reduce is True
        assert get_transform("lower").reduce is False


class TestCollectionTransforms:
    def test_union_flattens_and_dedups(self):
        assert get_transform("union").fn([["a", "b"], "b", "c"]) == ["a", "b", "c"]

    def test_distinct(self):
        assert get_transform("distinct").fn(["x", "x", "y"]) == ["x", "y"]

    def test_flatten(self):
        assert get_transform("flatten").fn([["a"], "b"]) == ["a", "b"]

    def test_sort_numeric(self):
        assert get_transform("sort").fn(["10", "2", "1"]) == ["1", "2", "10"]

    def test_first_last(self):
        assert get_transform("first").fn(["a", "b"]) == "a"
        assert get_transform("last").fn(["a", "b"]) == "b"
        assert get_transform("first").fn([]) == ""

    def test_join(self):
        assert get_transform("join").fn([["a", "b"], "c"], ";") == "a;b;c"
