"""Public API hygiene: exports resolve, carry docstrings, version sane."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.cpl",
    "repro.predicates",
    "repro.transforms",
    "repro.repository",
    "repro.drivers",
    "repro.inference",
    "repro.lifecycle",
    "repro.runtime",
    "repro.console",
    "repro.synthetic",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    module = importlib.import_module(package_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_documented(package_name):
    module = importlib.import_module(package_name)
    assert module.__doc__ and module.__doc__.strip()


def test_top_level_classes_documented():
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"repro.{name} lacks a docstring"


def test_version():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_public_entry_points_importable():
    from repro import (  # noqa: F401
        ChangeSet,
        ConfigRepository,
        ConfigStore,
        Evaluator,
        IncrementalValidator,
        InferenceEngine,
        ValidationPolicy,
        ValidationService,
        ValidationSession,
    )
    from repro.console import Console, EditorValidator, main  # noqa: F401
    from repro.core import analyze_coverage, suggest_repairs  # noqa: F401
    from repro.inference import combine, extract_constraints  # noqa: F401
    from repro.lifecycle import (  # noqa: F401
        LifecycleJournal,
        PromotionPolicy,
        ReInferencer,
        ShadowLane,
        SpecLifecycleManager,
        SpecRecord,
        SpecState,
        constraint_spec_id,
        fold,
    )


def test_cli_entry_point_help(capsys):
    from repro.console import build_parser

    parser = build_parser()
    for command in ("validate", "infer", "console", "service", "gate",
                    "coverage", "fmt", "specs"):
        assert command in parser.format_help()


def test_promotion_policy_doctests():
    """The lifecycle policy docstring is an executable state-machine spec."""
    import doctest

    import repro.lifecycle.policy as policy_module

    results = doctest.testmod(policy_module)
    assert results.attempted > 0
    assert results.failed == 0
