"""Predicate primitives and the plug-in registry (paper §4.2.1, §4.2.6)."""

from __future__ import annotations

import pytest

from repro.errors import UnknownPredicateError
from repro.predicates import (
    compare,
    get_predicate,
    in_range,
    is_registered,
    predicate_names,
    register_aggregate,
    register_predicate,
)
from repro.predicates.relational import coerce_pair, coerce_scalar
from repro.runtime import FakeFileSystem, StaticRuntime


class TestRegistry:
    def test_paper_count_at_least_19_primitives(self):
        # paper §5: "CPL provides 19 predicate primitives"
        core = [n for n in predicate_names() if not n.startswith("list_")]
        assert len(core) >= 19

    def test_unknown_predicate_raises(self):
        with pytest.raises(UnknownPredicateError):
            get_predicate("no_such_predicate")

    def test_plugin_registration(self):
        register_predicate("is_even_test", lambda v: int(v) % 2 == 0)
        spec = get_predicate("is_even_test")
        assert spec.fn("4") is True
        assert spec.fn("3") is False

    def test_plugin_aggregate_registration(self):
        def all_same_length(values):
            lengths = {len(v) for v in values}
            if len(lengths) <= 1:
                return [], ""
            majority = max(lengths, key=lambda l: sum(len(v) == l for v in values))
            return [i for i, v in enumerate(values) if len(v) != majority], "length"

        register_aggregate("same_length_test", all_same_length)
        spec = get_predicate("same_length_test")
        offenders, __ = spec.fn(["aa", "bb", "c"])
        assert offenders == [2]

    def test_is_registered(self):
        assert is_registered("int")
        assert not is_registered("frobnicate")


class TestTypePredicates:
    @pytest.mark.parametrize("name,good,bad", [
        ("int", "5", "five"),
        ("float", "5.5", "x"),
        ("bool", "true", "2"),
        ("ip", "10.0.0.1", "10.0.0"),
        ("ipv6", "::1", "10.0.0.1"),
        ("cidr", "10.0.0.0/8", "10.0.0.0"),
        ("mac", "aa:bb:cc:dd:ee:ff", "aa:bb"),
        ("port", "8080", "99999"),
        ("url", "http://x.com", "x.com"),
        ("email", "a@b.co", "a@b"),
        ("guid", "deadbeef-dead-beef-dead-beefdeadbeef", "xyz"),
        ("path", "/etc/hosts", "hosts"),
        ("iprange", "10.0.0.1-10.0.0.2", "10.0.0.1"),
    ])
    def test_primitive(self, name, good, bad):
        spec = get_predicate(name)
        assert spec.fn(good) is True
        assert spec.fn(bad) is False

    def test_string_always_true(self):
        assert get_predicate("string").fn("anything") is True

    def test_list_variants(self):
        assert get_predicate("list_ip").fn("10.0.0.1,10.0.0.2") is True
        assert get_predicate("list_ip").fn("10.0.0.1,abc") is False
        assert get_predicate("list_int").fn("5") is True  # singleton list


class TestValuePredicates:
    def test_nonempty(self):
        spec = get_predicate("nonempty")
        assert spec.fn("x") and not spec.fn("") and not spec.fn("   ")

    def test_match_is_search_not_anchor(self):
        spec = get_predicate("match")
        assert spec.fn("UtilityFabric01", "UtilityFabric")
        assert spec.fn("image.vhd", r"\.vhd$")
        assert not spec.fn("image.iso", r"\.vhd$")

    def test_fullmatch(self):
        spec = get_predicate("fullmatch")
        assert spec.fn("abc", "[a-c]+")
        assert not spec.fn("abcd", "[a-c]+")

    def test_startswith_endswith(self):
        assert get_predicate("startswith").fn("slb-x", "slb-")
        assert get_predicate("endswith").fn("a.vhd", ".vhd")

    def test_range_numeric(self):
        spec = get_predicate("range")
        assert spec.fn("7", 5, 15)
        assert not spec.fn("4", 5, 15)
        assert spec.fn("5", 5, 15) and spec.fn("15", 5, 15)  # inclusive

    def test_range_ip(self):
        spec = get_predicate("range")
        assert spec.fn("10.0.0.50", "10.0.0.1", "10.0.0.100")
        assert not spec.fn("10.0.1.50", "10.0.0.1", "10.0.0.100")

    def test_in_set(self):
        spec = get_predicate("in")
        assert spec.fn("compute", "compute", "storage")
        assert not spec.fn("gpu", "compute", "storage")

    def test_length(self):
        spec = get_predicate("length")
        assert spec.fn("abcd", 1, 10)
        assert not spec.fn("", 1, 10)


class TestAggregates:
    def test_consistent_blames_minority(self):
        spec = get_predicate("consistent")
        offenders, detail = spec.fn(["80", "80", "75", "80"])
        assert offenders == [2]
        assert "80" in detail

    def test_consistent_passes(self):
        assert get_predicate("consistent").fn(["a", "a"])[0] == []
        assert get_predicate("consistent").fn(["a"])[0] == []
        assert get_predicate("consistent").fn([])[0] == []

    def test_unique_blames_later_duplicates(self):
        offenders, detail = get_predicate("unique").fn(["a", "b", "a", "a"])
        assert offenders == [2, 3]
        assert "'a'" in detail

    def test_unique_passes(self):
        assert get_predicate("unique").fn(["a", "b", "c"])[0] == []

    def test_order_asc(self):
        spec = get_predicate("order")
        assert spec.fn(["1", "2", "10"])[0] == []  # numeric, not lexicographic
        assert spec.fn(["2", "1"])[0] == [1]

    def test_order_desc(self):
        assert get_predicate("order").fn(["3", "2", "1"], "desc")[0] == []


class TestRuntimePredicates:
    def test_exists_with_fake_fs(self):
        runtime = StaticRuntime(filesystem=FakeFileSystem([r"\\share\OS\v2"]))
        spec = get_predicate("exists")
        assert spec.fn(r"\\share\OS\v2", runtime=runtime)
        assert spec.fn(r"\\share\OS", runtime=runtime)  # ancestor
        assert not spec.fn(r"\\share\OS\v3", runtime=runtime)

    def test_exists_without_runtime_fails_closed(self):
        assert get_predicate("exists").fn("/anything") is False

    def test_reachable(self):
        runtime = StaticRuntime(reachable={"10.0.0.1:443"})
        spec = get_predicate("reachable")
        assert spec.fn("10.0.0.1:443", runtime=runtime)
        assert not spec.fn("10.0.0.2:443", runtime=runtime)


class TestComparison:
    def test_numeric_coercion(self):
        assert compare("5", "<", "10")       # not lexicographic
        assert compare("5", "==", "5")
        assert compare("5.0", "==", "5")

    def test_ip_coercion(self):
        assert compare("10.0.0.2", "<", "10.0.0.10")
        assert not compare("10.0.0.2", "<", "10.0.0.1")

    def test_string_fallback(self):
        assert compare("apple", "<", "banana")
        assert compare("5", "!=", "apple")

    def test_mixed_types_compare_as_strings(self):
        left, right = coerce_pair("5", "apple")
        assert left == "5" and right == "apple"

    def test_coerce_scalar(self):
        assert coerce_scalar("42") == 42
        assert coerce_scalar("4.5") == 4.5
        assert str(coerce_scalar("10.0.0.1")) == "10.0.0.1"
        assert coerce_scalar(" word ") == "word"

    def test_in_range_helper(self):
        assert in_range("7", "5", "9")
        assert not in_range("70", "5", "9")
