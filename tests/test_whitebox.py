"""White-box inference: AST extraction, black-box combination (§6.3)."""

from __future__ import annotations

import pytest

from repro import ConfigStore, InferenceEngine, ValidationSession
from repro.inference import combine, extract_constraints
from repro.inference.constraints import RangeConstraint, TypeConstraint
from repro.repository.keys import parse_instance_key
from repro.repository.model import ConfigInstance
from repro.synthetic import generate_app_source, generate_type_a, type_a_catalog


def kinds_of(constraints, key):
    return {c.kind for c in constraints if c.class_key[-1] == key}


def one(constraints, key, kind):
    found = [c for c in constraints if c.class_key[-1] == key and c.kind == kind]
    assert len(found) == 1, (key, kind, found)
    return found[0]


class TestExtraction:
    def test_int_cast_and_raise_guard(self):
        constraints = extract_constraints(
            'def f(cfg):\n'
            '    t = int(cfg["Timeout"])\n'
            '    if t < 1 or t > 300:\n'
            '        raise ValueError("x")\n'
        )
        assert kinds_of(constraints, "Timeout") == {"type", "range"}
        bounds = one(constraints, "Timeout", "range")
        assert (bounds.low, bounds.high) == (1, 300)

    def test_assert_membership_enum(self):
        constraints = extract_constraints(
            'def f(cfg):\n'
            '    m = cfg["Mode"]\n'
            '    assert m in ("fast", "safe")\n'
        )
        enum = one(constraints, "Mode", "enum")
        assert set(enum.values) == {"fast", "safe"}

    def test_chained_compare(self):
        constraints = extract_constraints(
            'def f(cfg):\n'
            '    r = float(cfg.get("Ratio", 0.5))\n'
            '    assert 0.0 <= r <= 1.0\n'
        )
        bounds = one(constraints, "Ratio", "range")
        assert (bounds.low, bounds.high) == (0.0, 1.0)

    def test_typed_default(self):
        constraints = extract_constraints(
            'def f(cfg):\n    n = cfg.get("Workers", 4)\n'
        )
        assert one(constraints, "Workers", "type").type_name == "int"

    def test_not_guard_is_nonempty(self):
        constraints = extract_constraints(
            'def f(cfg):\n'
            '    name = cfg["Name"]\n'
            '    if not name:\n'
            '        raise ValueError("required")\n'
        )
        assert kinds_of(constraints, "Name") == {"nonempty"}

    def test_strict_inequalities_tightened(self):
        constraints = extract_constraints(
            'def f(cfg):\n'
            '    n = int(cfg["N"])\n'
            '    assert n > 0\n'
            '    assert n < 10\n'
        )
        bounds = one(constraints, "N", "range")
        assert (bounds.low, bounds.high) == (1, 9)

    def test_flipped_literal_side(self):
        constraints = extract_constraints(
            'def f(cfg):\n'
            '    n = int(cfg["N"])\n'
            '    assert 5 <= n\n'
            '    assert 20 >= n\n'
        )
        bounds = one(constraints, "N", "range")
        assert (bounds.low, bounds.high) == (5, 20)

    def test_split_marks_list(self):
        constraints = extract_constraints(
            'def f(cfg):\n'
            '    for ip in cfg["Servers"].split(","):\n'
            '        pass\n'
        )
        assert one(constraints, "Servers", "type").type_name == "list<unknown>"

    def test_equality_guard_contributes_enum(self):
        constraints = extract_constraints(
            'def f(cfg):\n'
            '    m = cfg["Kind"]\n'
            '    if m != "primary":\n'
            '        raise ValueError("x")\n'
        )
        assert set(one(constraints, "Kind", "enum").values) == {"primary"}

    def test_non_config_receivers_ignored(self):
        constraints = extract_constraints(
            'def f(data):\n'
            '    v = int(data["Key"])\n'
            '    assert v > 0\n'
        )
        assert constraints == []

    def test_guard_without_raise_ignored(self):
        constraints = extract_constraints(
            'def f(cfg):\n'
            '    t = int(cfg["T"])\n'
            '    if t > 5:\n'
            '        print("big")\n'
        )
        assert kinds_of(constraints, "T") == {"type"}

    def test_one_sided_bound_yields_no_range(self):
        # an upper bound alone is not a range constraint (needs both ends)
        constraints = extract_constraints(
            'def f(cfg):\n'
            '    assert int(cfg["Depth"]) <= 8\n'
        )
        assert "range" not in kinds_of(constraints, "Depth")

    def test_direct_read_comparison_both_ends(self):
        # comparisons on an unassigned read still resolve the key
        constraints = extract_constraints(
            'def f(cfg):\n'
            '    assert int(cfg["Depth"]) <= 8\n'
            '    assert int(cfg["Depth"]) >= 1\n'
        )
        bounds = one(constraints, "Depth", "range")
        assert (bounds.low, bounds.high) == (1, 8)


class TestCombine:
    def build_store(self):
        store = ConfigStore()
        for i in range(12):
            store.add(ConfigInstance(
                parse_instance_key(f"A::{i}.Timeout"), str(20 + i % 5), "t"
            ))
            store.add(ConfigInstance(
                parse_instance_key(f"A::{i}.Servers"), "10.0.0.8", "t"
            ))
        return store

    CODE = (
        'def f(cfg):\n'
        '    t = int(cfg["Timeout"])\n'
        '    if t < 1 or t > 600:\n'
        '        raise ValueError("x")\n'
        '    for s in cfg["Servers"].split(","):\n'
        '        pass\n'
    )

    def test_code_range_overrides_observed(self):
        store = self.build_store()
        blackbox = InferenceEngine().infer(store)
        observed = one(blackbox.constraints, "Timeout", "range")
        assert (observed.low, observed.high) == (20, 24)   # narrow sample
        combined = combine(blackbox, extract_constraints(self.CODE))
        merged = one(combined.constraints, "Timeout", "range")
        assert (merged.low, merged.high) == (1, 600)        # code wins

    def test_list_type_refined_from_observation(self):
        store = self.build_store()
        blackbox = InferenceEngine().infer(store)
        assert one(blackbox.constraints, "Servers", "type").type_name == "ipv4"
        combined = combine(blackbox, extract_constraints(self.CODE))
        merged = one(combined.constraints, "Servers", "type")
        assert merged.type_name == "list<ipv4>"

    def test_unrelated_constraints_kept(self):
        store = self.build_store()
        blackbox = InferenceEngine().infer(store)
        combined = combine(blackbox, extract_constraints(self.CODE))
        assert "nonempty" in kinds_of(combined.constraints, "Timeout")

    def test_combined_accepts_widened_values(self):
        store = self.build_store()
        blackbox = InferenceEngine().infer(store)
        combined = combine(blackbox, extract_constraints(self.CODE))

        drifted = ConfigStore()
        for i in range(12):
            drifted.add(ConfigInstance(
                parse_instance_key(f"A::{i}.Timeout"), str(500 + i % 5), "t"
            ))
            drifted.add(ConfigInstance(
                parse_instance_key(f"A::{i}.Servers"), "10.0.0.8,10.0.0.9", "t"
            ))
        assert not ValidationSession(store=drifted).validate(blackbox.to_cpl()).passed
        report = ValidationSession(store=drifted).validate(combined.to_cpl())
        assert report.passed, report.render(limit=5)


class TestAppSource:
    def test_generated_source_compiles(self):
        import ast as pyast

        for module in generate_app_source(0.05):
            pyast.parse(module)

    def test_catalog_alignment(self):
        catalog = type_a_catalog(0.05)
        store = generate_type_a(0.05).build_store()
        leafs = {c.leaf_name for c in store.classes()}
        for params in catalog.values():
            for param in params:
                assert param.name in leafs

    def test_extraction_covers_guarded_kinds(self):
        modules = generate_app_source(0.05)
        constraints = extract_constraints(modules)
        kinds = {c.kind for c in constraints}
        assert {"type", "range", "enum", "nonempty"} <= kinds
        # the fleet reader's split loop marks the DNS list
        assert any(
            c.class_key[-1] == "NodeDnsServers" and c.kind == "type"
            for c in constraints
        )
