"""Compiler rewrites (paper Figure 4): each rewrite + semantic preservation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ValidationSession, parse
from repro.core.compiler import CompilerOptions, optimize_statements, simplify_predicate
from repro.cpl import ast
from repro.cpl.parser import parse_predicate
from repro.repository import ConfigStore
from repro.repository.keys import parse_instance_key
from repro.repository.model import ConfigInstance


def specs_of(statements):
    return [s for s in statements if isinstance(s, ast.SpecStatement)]


class TestPredicateAggregation:
    def test_same_domain_specs_merge(self):
        program = parse("$s.k1 -> ip\n$s.k1 -> unique\n$s.k1 -> [1, 9]")
        out = optimize_statements(
            list(program.statements),
            CompilerOptions(aggregate_domains=False, omit_implied=False),
        )
        merged = specs_of(out)
        assert len(merged) == 1
        predicate = merged[0].steps[0].predicate
        assert isinstance(predicate, ast.And)

    def test_different_domains_not_merged(self):
        program = parse("$a -> ip\n$b -> ip")
        out = optimize_statements(
            list(program.statements),
            CompilerOptions(aggregate_domains=False, omit_implied=False),
        )
        assert len(specs_of(out)) == 2

    def test_pipelines_never_merged(self):
        program = parse("$a -> split(',') -> ip\n$a -> nonempty")
        out = optimize_statements(list(program.statements))
        assert len(specs_of(out)) == 2


class TestDomainAggregation:
    def test_same_predicate_merges_into_union(self):
        program = parse("$s.k1 -> ip\n$s.k2 -> ip")
        out = optimize_statements(
            list(program.statements),
            CompilerOptions(aggregate_predicates=False, omit_implied=False),
        )
        merged = specs_of(out)
        assert len(merged) == 1
        assert isinstance(merged[0].domain, ast.UnionDomain)

    def test_aggregate_predicates_excluded(self):
        # unique over a merged domain would be stronger; must not merge
        program = parse("$s.k1 -> unique\n$s.k2 -> unique")
        out = optimize_statements(list(program.statements))
        assert len(specs_of(out)) == 2

    def test_macro_conservatively_excluded(self):
        program = parse(
            "let M := unique & ip\n$s.k1 -> @M\n$s.k2 -> @M"
        )
        out = optimize_statements(list(program.statements))
        assert len(specs_of(out)) == 2


class TestImpliedElision:
    def test_figure_4c_example(self):
        pred = parse_predicate("string & nonempty & {'compute', 'storage'}")
        simplified = simplify_predicate(pred)
        assert isinstance(simplified, ast.SetPred)

    def test_int_implies_float_and_nonempty(self):
        simplified = simplify_predicate(parse_predicate("int & float & nonempty"))
        assert isinstance(simplified, ast.PrimitiveCall)
        assert simplified.name == "int"

    def test_duplicates_dropped(self):
        simplified = simplify_predicate(parse_predicate("ip & ip & ip"))
        assert isinstance(simplified, ast.PrimitiveCall)

    def test_no_elision_when_independent(self):
        pred = parse_predicate("ip & unique")
        assert simplify_predicate(pred) == pred

    def test_set_with_empty_literal_keeps_nonempty(self):
        pred = parse_predicate("nonempty & {'', 'a'}")
        simplified = simplify_predicate(pred)
        assert isinstance(simplified, ast.And)

    def test_or_not_touched(self):
        pred = parse_predicate("string | nonempty")
        assert simplify_predicate(pred) == pred


class TestBlocksRecursion:
    def test_optimizes_inside_compartment(self):
        program = parse("compartment C {\n$k -> ip\n$k -> nonempty\n}")
        out = optimize_statements(list(program.statements))
        block = out[0]
        assert isinstance(block, ast.CompartmentBlock)
        assert len(specs_of(block.body)) == 1  # merged + nonempty elided? no:
        # merged into one conjunction (ip & nonempty), nonempty implied → ip


# ---------------------------------------------------------------------------
# Semantic preservation: optimized and unoptimized runs report the same keys
# ---------------------------------------------------------------------------

_SPEC_POOL = [
    "$A.k1 -> int",
    "$A.k1 -> nonempty",
    "$A.k1 -> [0, 50]",
    "$A.k2 -> ip",
    "$A.k2 -> nonempty",
    "$B.k3 -> {'x', 'y'}",
    "$B.k3 -> string & nonempty",
    "$A.k1 -> int & float",
    "$B.k3 -> consistent",
    "$A.k2 -> unique",
]

_VALUE_POOL = {
    "k1": ["5", "49", "x", "", "-3"],
    "k2": ["10.0.0.1", "10.0.0.2", "oops", ""],
    "k3": ["x", "y", "z", ""],
}


@st.composite
def _stores(draw):
    store = ConfigStore()
    for scope, key in (("A", "k1"), ("A", "k2"), ("B", "k3")):
        count = draw(st.integers(min_value=0, max_value=4))
        for index in range(count):
            value = draw(st.sampled_from(_VALUE_POOL[key]))
            store.add(
                ConfigInstance(
                    parse_instance_key(f"{scope}::i{index}.{key}"), value, "t"
                )
            )
    return store


@given(_stores(), st.lists(st.sampled_from(_SPEC_POOL), min_size=1, max_size=6))
@settings(max_examples=120, deadline=None)
def test_property_optimizations_preserve_violations(store, spec_lines):
    text = "\n".join(spec_lines)
    plain = ValidationSession(store=store, optimize=False).validate(text)
    optimized = ValidationSession(store=store, optimize=True).validate(text)

    def signature(report):
        # compare distinct (key, value) pairs: deduplicating *redundant*
        # specs is the optimizer's purpose, so multiplicity may shrink
        return sorted({(v.key, v.value) for v in report.violations})

    assert signature(plain) == signature(optimized)
