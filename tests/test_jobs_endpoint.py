"""The job submission HTTP API and its CLI clients.

The contracts under test:

* **POST /jobs** — 202 with a job id and Location-style pointer, 429 with
  a structured backpressure body when admission control rejects, 400 on
  malformed JSON or unknown fields, 404 when the job service is not
  attached;
* **GET /jobs[, /jobs/<id>]** — filterable listing plus full job records,
  404 for unknown ids; **POST /jobs/<id>/cancel** — 200/404/409;
* **end-to-end parity** — a job submitted over HTTP produces a verdict
  whose fingerprint matches a direct in-process ``validate`` of the same
  spec + sources;
* **CLI** — ``confvalley submit --wait`` exits with the verdict
  (0 admit / 1 reject / 2 error), ``jobs``/``cancel`` drive the listing
  and cancellation endpoints, and every job/read command prints one
  actionable line and fails cleanly against unreachable or
  non-ConfValley URLs;
* **metrics** — submissions, rejections and per-path request counters
  flow into the registry with job ids collapsed out of the label space.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro import SourceSpec, ValidationService, observability
from repro.console import main
from repro.core.session import ValidationSession
from repro.jobs import JobService, JobState
from repro.jobs.model import report_fingerprint_digest
from repro.observability import parse_prometheus

SPEC = "$s.Timeout -> int & [1, 60]\n$s.Flag -> bool\n$s.Name -> nonempty\n"
GOOD_INI = "[s]\nTimeout = 30\nFlag = true\nName = web\n"
BAD_INI = "[s]\nTimeout = 999\nFlag = true\nName = web\n"


@pytest.fixture(autouse=True)
def pristine_observability():
    observability.disable()
    yield
    observability.disable()


@pytest.fixture
def workspace(tmp_path):
    spec = tmp_path / "spec.cpl"
    spec.write_text(SPEC)
    config = tmp_path / "good.ini"
    config.write_text(GOOD_INI)
    return tmp_path, spec, config


@pytest.fixture
def live(workspace):
    """A ValidationService with an attached JobService, served over HTTP."""
    tmp, spec, config = workspace
    service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
    jobs = JobService(journal_path=str(tmp / "journal.jsonl"), workers=1)
    service.attach_jobs(jobs)
    server = service.start_http()
    yield service, jobs, server
    service.stop_http()
    jobs.close()


def request_json(url, payload=None, method=None):
    """(status, parsed JSON body); 4xx/5xx returned, not raised."""
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers,
                                     method=method)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


def refused_port() -> int:
    """A port nothing is listening on (bound, then released)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def direct_fingerprint(config_path) -> str:
    session = ValidationSession()
    session.load_source("ini", str(config_path))
    return report_fingerprint_digest(session.validate(SPEC))


# ---------------------------------------------------------------------------
# HTTP surface
# ---------------------------------------------------------------------------


class TestJobsHttp:
    def test_submit_poll_fingerprint_parity(self, live, workspace):
        __, __, config = workspace
        service, jobs, server = live
        status, body = request_json(server.url + "/jobs", payload={
            "spec": SPEC,
            "sources": [{"format": "ini", "path": str(config)}],
        })
        assert status == 202
        assert body["deduplicated"] is False
        assert body["location"] == f"/jobs/{body['id']}"
        done = jobs.wait(body["id"], timeout=30)
        status, record = request_json(server.url + body["location"])
        assert status == 200
        assert record["state"] == JobState.DONE
        assert record["result"]["verdict"] == "admit"
        assert record["result"]["fingerprint"] == direct_fingerprint(config)
        assert record["result"]["fingerprint"] == done.result["fingerprint"]

    def test_idempotency_key_deduplicates_over_http(self, live):
        __, __, server = live
        payload = {"spec": SPEC, "idempotency_key": "k1"}
        __, first = request_json(server.url + "/jobs", payload=payload)
        status, second = request_json(server.url + "/jobs", payload=payload)
        assert status == 202
        assert second["id"] == first["id"]
        assert second["deduplicated"] is True

    def test_429_when_over_capacity(self, workspace):
        tmp, spec, config = workspace
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        # workers=0: nothing drains, so the second submission must bounce
        jobs = JobService(workers=0, queue_depth=1)
        service.attach_jobs(jobs)
        server = service.start_http()
        try:
            status, __ = request_json(server.url + "/jobs",
                                      payload={"spec": SPEC})
            assert status == 202
            status, body = request_json(server.url + "/jobs",
                                        payload={"spec": SPEC})
            assert status == 429
            assert body["error"] == "backpressure"
            assert body["reason"] == "queue-full"
            assert jobs.stats()["rejections"] == {"queue-full": 1}
        finally:
            service.stop_http()
            jobs.close()

    def test_malformed_submissions_400(self, live):
        __, __, server = live
        request = urllib.request.Request(
            server.url + "/jobs", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

        status, body = request_json(server.url + "/jobs",
                                    payload={"spec": SPEC, "bogus": 1})
        assert status == 400
        assert "unknown field" in body["error"]
        status, __ = request_json(server.url + "/jobs", payload={})
        assert status == 400  # no spec reference at all

    def test_listing_filters_and_detail_404(self, live):
        __, jobs, server = live
        submitted, __ = jobs.submit(spec=SPEC, tenant="ci")
        jobs.wait(submitted.id, timeout=30)
        status, body = request_json(server.url + "/jobs?tenant=ci&limit=10")
        assert status == 200
        assert [row["id"] for row in body["jobs"]] == [submitted.id]
        assert body["stats"]["workers"] == 1
        status, body = request_json(server.url + "/jobs?tenant=nobody")
        assert body["jobs"] == []
        status, __ = request_json(server.url + "/jobs/job-ghost")
        assert status == 404
        status, body = request_json(server.url + "/jobs?limit=zebra")
        assert status == 400

    def test_cancel_endpoint_states(self, live):
        __, jobs, server = live
        job, __ = jobs.submit(spec=SPEC)
        jobs.wait(job.id, timeout=30)  # let it finish: cancel now conflicts
        status, body = request_json(
            server.url + f"/jobs/{job.id}/cancel", payload={}
        )
        assert status == 409
        status, __ = request_json(
            server.url + "/jobs/job-ghost/cancel", payload={}
        )
        assert status == 404

    def test_jobs_endpoints_404_without_job_service(self, workspace):
        __, spec, config = workspace
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        server = service.start_http()
        try:
            status, body = request_json(server.url + "/jobs")
            assert status == 404
            assert "--jobs" in body["hint"]
            status, __ = request_json(server.url + "/jobs",
                                      payload={"spec": SPEC})
            assert status == 404
        finally:
            service.stop_http()

    def test_unknown_post_path_404_lists_write_endpoints(self, live):
        __, __, server = live
        status, body = request_json(server.url + "/metrics", payload={})
        assert status == 404
        assert "/jobs" in body["endpoints"]

    def test_jobs_block_in_service_stats(self, live):
        __, jobs, server = live
        status, stats = request_json(server.url + "/stats")
        assert status == 200
        assert stats["jobs"]["workers"] == 1
        # the watched spec is registered for spec_name submissions
        job, __ = jobs.submit(spec_name="service")
        assert jobs.wait(job.id, timeout=30).result["verdict"] == "admit"

    def test_metrics_flow_with_bounded_path_labels(self, live, workspace):
        __, __, config = workspace
        obs = observability.enable()
        __, jobs, server = live
        __, body = request_json(server.url + "/jobs", payload={
            "spec": SPEC,
            "sources": [{"format": "ini", "path": str(config)}],
        })
        jobs.wait(body["id"], timeout=30)
        request_json(server.url + body["location"])
        families = parse_prometheus(obs.metrics.to_prometheus())
        submitted = families["confvalley_jobs_submitted_total"]["samples"]
        assert any(labels["tenant"] == "default" for __, labels, __v in submitted)
        assert "confvalley_job_wait_seconds" in families
        assert "confvalley_job_run_seconds" in families
        paths = {labels["path"]
                 for __, labels, __v in
                 families["confvalley_http_requests_total"]["samples"]}
        assert "/jobs/:id" in paths  # ids collapsed out of the label space
        assert not any(path.startswith("/jobs/job-") for path in paths)


# ---------------------------------------------------------------------------
# CLI clients
# ---------------------------------------------------------------------------


class TestSubmitCli:
    def test_submit_wait_admit_exits_zero(self, live, workspace, capsys):
        __, spec, config = workspace
        __, __, server = live
        code = main([
            "submit", str(spec), "--url", server.url,
            "--source", f"ini:{config}", "--wait", "--poll", "0.05",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "submitted job-" in captured.err
        assert "verdict=admit" in captured.out

    def test_submit_wait_reject_exits_one(self, live, workspace, capsys):
        tmp, spec, __ = workspace
        __, __, server = live
        bad = tmp / "bad.ini"
        bad.write_text(BAD_INI)
        code = main([
            "submit", str(spec), "--url", server.url,
            "--inline-source", f"ini:{bad}", "--wait", "--poll", "0.05",
            "--json",
        ])
        assert code == 1
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["result"]["verdict"] == "reject"
        assert verdict["result"]["violations"] == 1

    def test_submit_without_wait_prints_id(self, live, workspace, capsys):
        __, spec, config = workspace
        __, jobs, server = live
        code = main([
            "submit", str(spec), "--url", server.url,
            "--source", f"ini:{config}", "--idempotency-key", "cli-1",
        ])
        assert code == 0
        job_id = capsys.readouterr().out.strip()
        assert jobs.get(job_id) is not None

    def test_submit_unreachable_exits_two(self, workspace, capsys):
        __, spec, config = workspace
        code = main([
            "submit", str(spec), "--url",
            f"http://127.0.0.1:{refused_port()}",
            "--source", f"ini:{config}",
        ])
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_submit_needs_exactly_one_spec(self, capsys):
        code = main(["submit", "--url", "http://127.0.0.1:1"])
        assert code == 2
        assert "--spec-name" in capsys.readouterr().err

    def test_submit_backpressure_exits_two(self, workspace, capsys):
        tmp, spec, config = workspace
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        jobs = JobService(workers=0, queue_depth=1)
        service.attach_jobs(jobs)
        server = service.start_http()
        try:
            assert main(["submit", str(spec), "--url", server.url]) == 0
            code = main(["submit", str(spec), "--url", server.url])
            assert code == 2
            assert "backpressure" in capsys.readouterr().err
        finally:
            service.stop_http()
            jobs.close()


class TestJobsAndCancelCli:
    def test_jobs_listing(self, live, capsys):
        __, jobs, server = live
        job, __ = jobs.submit(spec=SPEC, tenant="ci")
        jobs.wait(job.id, timeout=30)
        code = main(["jobs", server.url])
        out = capsys.readouterr().out
        assert code == 0
        assert job.id in out
        assert "verdict=admit" in out
        assert "1 worker(s)" in out

    def test_jobs_json_mode(self, live, capsys):
        __, jobs, server = live
        jobs.submit(spec=SPEC)
        assert main(["jobs", server.url, "--json"]) == 0
        body = json.loads(capsys.readouterr().out)
        assert "jobs" in body and "stats" in body

    def test_cancel_queued_job(self, workspace, capsys):
        tmp, spec, config = workspace
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        jobs = JobService(workers=0)
        service.attach_jobs(jobs)
        server = service.start_http()
        try:
            job, __ = jobs.submit(spec=SPEC)
            code = main(["cancel", server.url, job.id])
            assert code == 0
            assert "CANCELLED" in capsys.readouterr().out
        finally:
            service.stop_http()
            jobs.close()

    def test_cancel_unknown_job_exits_one(self, live, capsys):
        __, __, server = live
        assert main(["cancel", server.url, "job-ghost"]) == 1
        assert "cancel failed" in capsys.readouterr().err

    def test_jobs_unreachable_exits_one(self, capsys):
        code = main(["jobs", f"http://127.0.0.1:{refused_port()}"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err


class TestReadCommandsAgainstDeadUrls:
    """stats/top/coverage against unreachable or non-ConfValley URLs
    (satellite: uniform error handling, one actionable line, exit 1)."""

    def test_all_read_commands_fail_cleanly(self, capsys):
        url = f"http://127.0.0.1:{refused_port()}"
        for argv in (["stats", url], ["top", url], ["coverage", url]):
            assert main(argv) == 1, argv
            err = capsys.readouterr().err
            assert "cannot reach" in err, argv
            assert "--http" in err, argv  # actionable: how to fix it

    def test_non_confvalley_url(self, live, capsys):
        # a real HTTP server, wrong path shape: /stats 404s with JSON the
        # snapshot loader rejects → the "not ConfValley" arm, not a crash
        __, __, server = live
        assert main(["top", server.url + "/nothing-here"]) == 1
        err = capsys.readouterr().err
        assert "cannot reach" in err or "ConfValley" in err
