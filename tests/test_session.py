"""Validation sessions: load/include commands, files, partitioning (§5.1)."""

from __future__ import annotations

import os

import pytest

from repro import ValidationSession
from repro.drivers import clear_endpoints, register_endpoint
from repro.errors import DriverError


class TestLoading:
    def test_load_text(self):
        session = ValidationSession()
        count = session.load_text("ini", "[fabric]\nTimeout = 30\n")
        assert count == 1
        assert session.store.instance_count == 1

    def test_load_source_by_extension(self, tmp_path):
        path = tmp_path / "settings.ini"
        path.write_text("[s]\nK = v\n")
        session = ValidationSession(base_dir=str(tmp_path))
        assert session.load_source("cloudsettings", "settings.ini") == 1

    def test_load_source_by_format_name(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("A.K = v\n")
        session = ValidationSession(base_dir=str(tmp_path))
        assert session.load_source("keyvalue", "data.txt") == 1

    def test_load_source_rest(self):
        clear_endpoints()
        register_endpoint("10.1.1.1:443", {"state": "ok"})
        session = ValidationSession()
        assert session.load_source("runninginstance", "10.1.1.1:443") == 1

    def test_load_unknown_format_raises(self, tmp_path):
        session = ValidationSession(base_dir=str(tmp_path))
        with pytest.raises(DriverError):
            session.load_source("mystery", "data.unknownext")

    def test_load_with_scope(self):
        session = ValidationSession()
        session.load_text("ini", "[s]\nK = v\n", scope="Fabric")
        assert session.store.query("Fabric.s.K")


class TestCommands:
    def test_load_command_in_spec(self, tmp_path):
        (tmp_path / "cfg.ini").write_text("[s]\nTimeout = 30\n")
        session = ValidationSession(base_dir=str(tmp_path))
        report = session.validate(
            "load 'ini' 'cfg.ini'\n$s.Timeout -> int & [1, 60]"
        )
        assert report.passed
        assert session.store.instance_count == 1

    def test_include_command(self, tmp_path):
        (tmp_path / "types.cpl").write_text("$K -> int\n")
        session = ValidationSession(base_dir=str(tmp_path))
        session.load_text("keyvalue", "A.K = nope\n")
        report = session.validate("include 'types.cpl'\n$K -> nonempty")
        assert len(report.violations) == 1

    def test_nested_include(self, tmp_path):
        (tmp_path / "inner.cpl").write_text("$K -> int\n")
        (tmp_path / "outer.cpl").write_text("include 'inner.cpl'\n")
        session = ValidationSession(base_dir=str(tmp_path))
        session.load_text("keyvalue", "A.K = 5\n")
        report = session.validate("include 'outer.cpl'")
        assert report.passed
        assert report.specs_evaluated == 1

    def test_validate_file(self, tmp_path):
        (tmp_path / "spec.cpl").write_text("$K -> int\n")
        session = ValidationSession(base_dir=str(tmp_path))
        session.load_text("keyvalue", "A.K = 5\n")
        assert session.validate_file("spec.cpl").passed

    def test_let_survives_across_statements(self):
        session = ValidationSession()
        session.load_text("keyvalue", "A.K = 10.0.0.0/24\n")
        report = session.validate("let C := cidr\n$K -> @C")
        assert report.passed

    def test_define_macro_api(self):
        session = ValidationSession()
        session.load_text("keyvalue", "A.K = 5\n")
        session.define_macro("SmallInt", "int & [0, 9]")
        assert session.validate("$K -> @SmallInt").passed

    def test_get_api(self):
        session = ValidationSession()
        session.load_text("keyvalue", "A.K = v1\nB.K = v2\n")
        items = session.get("K")
        assert sorted(i.value for i in items) == ["v1", "v2"]


class TestPartitioning:
    def make_session(self):
        # optimization off: domain aggregation would merge the same-predicate
        # specs and change the per-partition spec counts under test
        session = ValidationSession(optimize=False)
        lines = [f"S::{i}.P{i % 7} = {i}" for i in range(50)]
        session.load_text("keyvalue", "\n".join(lines))
        return session

    def test_partitions_cover_all_specs(self):
        session = self.make_session()
        spec = "\n".join(f"$P{i} -> int" for i in range(7))
        results = session.validate_partitioned(spec, partitions=3)
        assert len(results) == 3
        total = sum(r.specs_evaluated for r, __ in results)
        assert total == 7

    def test_partition_reports_match_sequential(self):
        session = self.make_session()
        session.load_text("keyvalue", "S::x.P0 = notanint\n")
        spec = "\n".join(f"$P{i} -> int" for i in range(7))
        sequential = session.validate(spec)
        results = session.validate_partitioned(spec, partitions=4)
        partitioned = sum(len(r.violations) for r, __ in results)
        assert partitioned == len(sequential.violations) == 1

    def test_lets_visible_in_every_partition(self):
        session = self.make_session()
        spec = "let I := int\n$P0 -> @I\n$P1 -> @I\n$P2 -> @I"
        results = session.validate_partitioned(spec, partitions=3)
        assert all(r.passed for r, __ in results)

    def test_single_partition(self):
        session = self.make_session()
        results = session.validate_partitioned("$P0 -> int", partitions=1)
        assert len(results) == 1

    def test_times_are_recorded(self):
        session = self.make_session()
        results = session.validate_partitioned("$P0 -> int\n$P1 -> int", 2)
        for report, elapsed in results:
            assert elapsed >= 0
            assert report.elapsed_seconds == elapsed
