"""Editor integration: validate-as-you-type (paper §5.1 scenario 1)."""

from __future__ import annotations

import pytest

from repro import ConfigStore
from repro.console import Diagnostic, EditorValidator, check_spec_text
from repro.errors import CPLSyntaxError
from repro.repository.keys import parse_instance_key
from repro.repository.model import ConfigInstance

SPECS = """
$fabric.Timeout -> int & [1, 60]
$fabric.Endpoint -> url
$fabric.Flag -> bool
"""

GOOD_BUFFER = """[fabric]
Timeout = 30
Endpoint = https://x.example.com
Flag = true
"""

BAD_BUFFER = """[fabric]
Timeout = ninety
Endpoint = https://x.example.com
Flag = true
"""


class TestEditorValidator:
    def test_clean_buffer_no_diagnostics(self):
        editor = EditorValidator(SPECS, "ini")
        assert editor.update(GOOD_BUFFER) == []

    def test_type_error_located_on_its_line(self):
        editor = EditorValidator(SPECS, "ini")
        diagnostics = editor.update(BAD_BUFFER)
        assert len(diagnostics) == 1
        assert diagnostics[0].line == 2
        assert "ninety" in diagnostics[0].message
        assert diagnostics[0].key == "fabric.Timeout"

    def test_incremental_fix_clears_diagnostics(self):
        editor = EditorValidator(SPECS, "ini")
        assert editor.update(BAD_BUFFER)
        assert editor.update(BAD_BUFFER.replace("ninety", "45")) == []

    def test_unchanged_buffer_not_revalidated(self):
        editor = EditorValidator(SPECS, "ini")
        editor.update(GOOD_BUFFER)
        runs = editor.validations_run
        editor.update(GOOD_BUFFER)
        assert editor.validations_run == runs

    def test_malformed_buffer_is_a_diagnostic_not_a_crash(self):
        editor = EditorValidator(SPECS, "ini")
        diagnostics = editor.update("[fabric\nTimeout = 5\n")
        assert diagnostics
        assert diagnostics[0].severity == "error"
        assert diagnostics[0].line == 1

    def test_bad_spec_corpus_fails_fast(self):
        with pytest.raises(CPLSyntaxError):
            EditorValidator("$broken ->", "ini")

    def test_context_store_enables_cross_source_specs(self):
        context = ConfigStore()
        context.add(
            ConfigInstance(parse_instance_key("auth.SecretKey"), "k-123456", "auth")
        )
        editor = EditorValidator(
            "$fabric.SecretKey -> == $auth.SecretKey", "ini", context_store=context
        )
        assert editor.update("[fabric]\nSecretKey = k-123456\n") == []
        stale = editor.update("[fabric]\nSecretKey = k-OLD\n")
        assert len(stale) == 1
        assert stale[0].line == 2

    def test_diagnostic_render(self):
        diagnostic = Diagnostic(3, "error", "bad value")
        assert diagnostic.render() == "line 3: error: bad value"
        assert Diagnostic(0, "error", "x").render().startswith("buffer")


class TestSpecLinting:
    def test_valid_specs_clean(self):
        assert check_spec_text(SPECS) == []

    def test_syntax_error_reported_with_line(self):
        diagnostics = check_spec_text("$a -> int\n$b ->")
        assert len(diagnostics) == 1
        assert diagnostics[0].line == 2

    def test_undefined_macro_flagged(self):
        diagnostics = check_spec_text("$a -> @NoSuchMacro")
        assert any("NoSuchMacro" in d.message for d in diagnostics)

    def test_macro_defined_before_use_ok(self):
        assert check_spec_text("let M := int\n$a -> @M") == []

    def test_macro_used_before_definition_flagged(self):
        diagnostics = check_spec_text("$a -> @M\nlet M := int")
        assert diagnostics

    def test_unknown_predicate_flagged(self):
        diagnostics = check_spec_text("$a -> frobnicate")
        assert any("frobnicate" in d.message for d in diagnostics)

    def test_lints_inside_blocks(self):
        diagnostics = check_spec_text("compartment C {\n$a -> @Nope\n}")
        assert diagnostics
