"""Format drivers → unified representation (paper Table 2, Figure 3)."""

from __future__ import annotations

import pytest

from repro.drivers import (
    clear_endpoints,
    driver_names,
    get_driver,
    register_endpoint,
    register_driver,
)
from repro.drivers.base import Driver
from repro.errors import DriverError, UnknownDriverError


def by_key(instances):
    return {i.key.render(): i.value for i in instances}


class TestRegistry:
    def test_all_builtin_formats_registered(self):
        for name in (
            "xml", "ini", "keyvalue", "json", "yaml", "csv", "rest",
            "toml", "env",
        ):
            assert name in driver_names()

    def test_unknown_driver_raises(self):
        with pytest.raises(UnknownDriverError):
            get_driver("hocon")

    def test_custom_driver_registration(self):
        class Fake(Driver):
            format_name = "fake-fmt"

            def parse(self, text, source="", scope=""):
                return []

        register_driver(Fake())
        assert get_driver("fake-fmt").format_name == "fake-fmt"

    def test_driver_without_name_rejected(self):
        with pytest.raises(DriverError):
            register_driver(Driver())


class TestXMLDriver:
    def test_settings_under_scopes(self, listing1_instances):
        mapping = by_key(listing1_instances)
        assert mapping["CloudGroup::'East1 Production'.MonitorNodeHealth"] == "True"
        assert (
            mapping[
                "CloudGroup::'East1 Production'.Cloud::East1Storage1.Tenant::A.MonitorNodeHealth"
            ]
            == "False"
        )

    def test_setting_text_content(self):
        out = get_driver("xml").parse("<A><Setting Key='K'>v1</Setting></A>")
        assert by_key(out) == {"A.K": "v1"}

    def test_attributes_become_parameters(self):
        out = get_driver("xml").parse('<Svc Name="S" Port="80" Retries="3"/>')
        mapping = by_key(out)
        assert mapping["Svc::S.Port"] == "80"
        assert mapping["Svc::S.Retries"] == "3"

    def test_leaf_text_elements(self):
        out = get_driver("xml").parse("<Cfg><Timeout>30</Timeout></Cfg>")
        assert by_key(out) == {"Cfg.Timeout": "30"}

    def test_sibling_ordinals(self):
        out = get_driver("xml").parse(
            "<Root><Cloud><Setting Key='K' Value='1'/></Cloud>"
            "<Cloud><Setting Key='K' Value='2'/></Cloud></Root>"
        )
        mapping = by_key(out)
        assert mapping["Root.Cloud.K"] == "1"
        assert mapping["Root.Cloud[2].K"] == "2"

    def test_scope_prefix(self):
        out = get_driver("xml").parse(
            "<A><Setting Key='K' Value='v'/></A>", scope="Fabric::F1"
        )
        assert by_key(out) == {"Fabric::F1.A.K": "v"}

    def test_malformed_xml_raises(self):
        with pytest.raises(DriverError):
            get_driver("xml").parse("<A><B></A>")

    def test_setting_without_key_raises(self):
        with pytest.raises(DriverError):
            get_driver("xml").parse("<A><Setting Value='v'/></A>")

    def test_inheritance_expansion(self, listing1_expanded_store):
        # 4 tenant scopes × 2 settings each
        assert listing1_expanded_store.instance_count == 8

    def test_expansion_override_wins(self):
        out = get_driver("xml").parse(
            "<G><Setting Key='K' Value='outer'/>"
            "<T Name='t1'><Setting Key='K' Value='inner'/></T>"
            "<T Name='t2'/></G>",
            expand_inheritance=True,
        )
        mapping = by_key(out)
        assert mapping["G.T::t1.K"] == "inner"
        assert mapping["G.T::t2.K"] == "outer"


class TestINIDriver:
    def test_sections_and_keys(self):
        out = get_driver("ini").parse("[fabric]\nRecoveryAttempts = 3\nTimeout: 30\n")
        mapping = by_key(out)
        assert mapping["fabric.RecoveryAttempts"] == "3"
        assert mapping["fabric.Timeout"] == "30"

    def test_dotted_sections(self):
        out = get_driver("ini").parse("[fabric.controller]\nK = v\n")
        assert by_key(out) == {"fabric.controller.K": "v"}

    def test_section_with_qualifier(self):
        out = get_driver("ini").parse("[Cloud::East1]\nK = v\n")
        assert by_key(out) == {"Cloud::East1.K": "v"}

    def test_top_level_keys(self):
        out = get_driver("ini").parse("K = v\n")
        assert by_key(out) == {"K": "v"}

    def test_comments_and_blanks_ignored(self):
        out = get_driver("ini").parse("# c\n; c2\n\nK = v\n")
        assert len(out) == 1

    def test_case_preserved(self):
        out = get_driver("ini").parse("[S]\nCamelCaseKey = V\n")
        assert "S.CamelCaseKey" in by_key(out)

    def test_value_with_equals(self):
        out = get_driver("ini").parse("K = a=b\n")
        assert by_key(out)["K"] == "a=b"

    def test_bad_line_raises(self):
        with pytest.raises(DriverError):
            get_driver("ini").parse("not-a-kv-line\n")

    def test_unterminated_section_raises(self):
        with pytest.raises(DriverError):
            get_driver("ini").parse("[oops\n")

    def test_scope_prefix(self):
        out = get_driver("ini").parse("[S]\nK = v\n", scope="Env::E1")
        assert by_key(out) == {"Env::E1.S.K": "v"}


class TestKeyValueDriver:
    def test_dotted_scope_extraction(self):
        out = get_driver("keyvalue").parse("Fabric.RecoveryAttempts = 3\n")
        assert by_key(out) == {"Fabric.RecoveryAttempts": "3"}

    def test_inline_qualifiers(self):
        out = get_driver("keyvalue").parse("Cluster::C1.Node::N1.IP = 10.0.0.1\n")
        assert by_key(out) == {"Cluster::C1.Node::N1.IP": "10.0.0.1"}

    def test_comments(self):
        out = get_driver("keyvalue").parse("# c\n// c2\nK = v\n")
        assert len(out) == 1

    def test_bad_line_raises(self):
        with pytest.raises(DriverError):
            get_driver("keyvalue").parse("justaword\n")


class TestJSONDriver:
    def test_nested_objects(self):
        out = get_driver("json").parse('{"fabric": {"timeout": 30, "retries": 3}}')
        mapping = by_key(out)
        assert mapping["fabric.timeout"] == "30"
        assert mapping["fabric.retries"] == "3"

    def test_named_list_elements(self):
        out = get_driver("json").parse(
            '{"clouds": [{"name": "c1", "ip": "10.0.0.1"},'
            ' {"name": "c2", "ip": "10.0.0.2"}]}'
        )
        mapping = by_key(out)
        assert mapping["clouds::c1.ip"] == "10.0.0.1"
        assert mapping["clouds::c2.ip"] == "10.0.0.2"

    def test_scalar_lists_become_sibling_instances(self):
        out = get_driver("json").parse('{"ips": ["10.0.0.1", "10.0.0.2"]}')
        assert sorted(i.value for i in out) == ["10.0.0.1", "10.0.0.2"]
        assert {i.key.leaf_name for i in out} == {"ips"}

    def test_booleans_and_nulls(self):
        out = get_driver("json").parse('{"a": true, "b": null}')
        mapping = by_key(out)
        assert mapping["a"] == "true"
        assert mapping["b"] == ""

    def test_bad_json_raises(self):
        with pytest.raises(DriverError):
            get_driver("json").parse("{nope")

    def test_scalar_top_level_raises(self):
        with pytest.raises(DriverError):
            get_driver("json").parse('"just a string"')


class TestYAMLDriver:
    def test_structural_parity_with_json(self):
        yaml_out = get_driver("yaml").parse("fabric:\n  timeout: 30\n")
        json_out = get_driver("json").parse('{"fabric": {"timeout": 30}}')
        assert by_key(yaml_out) == by_key(json_out)

    def test_empty_document(self):
        assert get_driver("yaml").parse("") == []

    def test_bad_yaml_raises(self):
        with pytest.raises(DriverError):
            get_driver("yaml").parse("a: [unclosed")

    MULTI = (
        "kind: Deployment\nmetadata: {name: frontend}\nreplicas: 2\n"
        "---\n"
        "kind: Service\nmetadata: {name: frontend}\nport: 8080\n"
    )

    def test_multi_document_kind_name_scopes(self):
        mapping = by_key(get_driver("yaml").parse(self.MULTI))
        assert mapping["Deployment::frontend.replicas"] == "2"
        assert mapping["Service::frontend.port"] == "8080"

    def test_multi_document_ordinal_fallback(self):
        out = get_driver("yaml").parse("a: 1\n---\nb: 2\n---\nc: 3\n")
        mapping = by_key(out)
        assert mapping["doc.a"] == "1"
        assert mapping["doc[2].b"] == "2"
        assert mapping["doc[3].c"] == "3"

    def test_multi_document_scope_prefix(self):
        mapping = by_key(
            get_driver("yaml").parse(self.MULTI, scope="Cluster::C1")
        )
        assert mapping["Cluster::C1.Deployment::frontend.replicas"] == "2"

    def test_single_document_stream_is_not_wrapped(self):
        # keys (and hence fingerprints) of existing single-doc sources
        # must not change because multi-doc support landed
        assert by_key(get_driver("yaml").parse("---\na: 1\n")) == {"a": "1"}

    def test_empty_documents_skipped(self):
        out = get_driver("yaml").parse("---\n---\na: 1\n")
        assert by_key(out) == {"a": "1"}


class TestTOMLDriver:
    def test_tables_become_scopes(self):
        out = get_driver("toml").parse(
            "[service.frontend]\nport = 8080\ntls = true\n"
        )
        mapping = by_key(out)
        assert mapping["service.frontend.port"] == "8080"
        assert mapping["service.frontend.tls"] == "true"

    def test_structural_parity_with_json(self):
        toml_out = get_driver("toml").parse("[fabric]\ntimeout = 30\n")
        json_out = get_driver("json").parse('{"fabric": {"timeout": 30}}')
        assert by_key(toml_out) == by_key(json_out)

    def test_array_of_tables_promotes_names(self):
        out = get_driver("toml").parse(
            '[[clouds]]\nname = "c1"\nip = "10.0.0.1"\n'
            '[[clouds]]\nname = "c2"\nip = "10.0.0.2"\n'
        )
        mapping = by_key(out)
        assert mapping["clouds::c1.ip"] == "10.0.0.1"
        assert mapping["clouds::c2.ip"] == "10.0.0.2"

    def test_scope_prefix(self):
        out = get_driver("toml").parse("k = 1\n", scope="Env::E1")
        assert by_key(out) == {"Env::E1.k": "1"}

    def test_malformed_toml_raises(self):
        with pytest.raises(DriverError):
            get_driver("toml").parse("[unclosed\n")


class TestEnvFileDriver:
    def test_basic_pairs_comments_and_export(self):
        out = get_driver("env").parse(
            "# comment\n\nexport DATABASE_URL=postgres://db/app\n"
            "POOL_SIZE=10 # inline comment\n"
        )
        mapping = by_key(out)
        assert mapping["DATABASE_URL"] == "postgres://db/app"
        assert mapping["POOL_SIZE"] == "10"

    def test_underscored_keys_stay_verbatim(self):
        out = get_driver("env").parse("DATABASE_URL=x\n")
        assert out[0].key.leaf_name == "DATABASE_URL"

    def test_dotted_keys_become_scopes(self):
        out = get_driver("env").parse("db.pool.size=10\n")
        assert by_key(out) == {"db.pool.size": "10"}

    def test_double_quotes_honor_escapes(self):
        out = get_driver("env").parse(
            'MOTD="line1\\nline2 \\"quoted\\" \\$HOME"\n'
        )
        assert out[0].value == 'line1\nline2 "quoted" $HOME'

    def test_single_quotes_are_literal(self):
        out = get_driver("env").parse("TOKEN='s3\\ncr3t # not a comment'\n")
        assert out[0].value == "s3\\ncr3t # not a comment"

    def test_quoted_value_keeps_hash(self):
        out = get_driver("env").parse('PASSWORD="p#ss"\n')
        assert out[0].value == "p#ss"

    def test_scope_prefix(self):
        out = get_driver("env").parse("K=v\n", scope="Host::web1")
        assert by_key(out) == {"Host::web1.K": "v"}

    @pytest.mark.parametrize(
        "line",
        [
            "not-a-pair\n",
            "=value\n",
            "BAD KEY=v\n",
            'K="unterminated\n',
            "K='unterminated\n",
            'K="v" trailing\n',
            'K="dangling\\\n',
        ],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(DriverError):
            get_driver("env").parse(line)


class TestCSVDriver:
    CSV = "Name,Address,Location\nlb1,10.0.0.1,east\nlb2,10.0.0.2,west\n"

    def test_rows_become_records(self):
        out = get_driver("csv").parse(self.CSV)
        mapping = by_key(out)
        assert mapping["Record::lb1.Address"] == "10.0.0.1"
        assert mapping["Record::lb2.Location"] == "west"

    def test_custom_record_scope(self):
        out = get_driver("csv").parse(self.CSV, scope="LoadBalancer[]")
        assert "LoadBalancer::lb1.Address" in by_key(out)

    def test_nested_record_scope(self):
        out = get_driver("csv").parse(self.CSV, scope="Dc::D1.LB[]")
        assert "Dc::D1.LB::lb1.Address" in by_key(out)

    def test_ragged_row_raises(self):
        with pytest.raises(DriverError):
            get_driver("csv").parse("A,B\n1\n")

    def test_empty_csv(self):
        assert get_driver("csv").parse("") == []


class TestRESTDriver:
    def setup_method(self):
        clear_endpoints()

    def test_registered_endpoint(self):
        register_endpoint("10.1.2.3:443", {"status": {"state": "running"}})
        out = get_driver("rest").parse("10.1.2.3:443")
        assert by_key(out) == {"status.state": "running"}

    def test_unregistered_endpoint_raises(self):
        with pytest.raises(DriverError):
            get_driver("rest").parse("10.9.9.9:443")

    def test_parse_file_uses_url(self):
        register_endpoint("http://api/x", {"a": 1})
        out = get_driver("rest").parse_file("http://api/x")
        assert by_key(out) == {"a": "1"}
