"""CLI tooling: gate subcommand, waiver files, diff_stores helper."""

from __future__ import annotations

import pytest

from repro import ValidationSession
from repro.console import main
from repro.errors import PolicyError
from repro.core.policy import ValidationPolicy
from repro.repository.versioned import diff_stores


class TestDiffStores:
    def build(self, text):
        session = ValidationSession()
        session.load_text("keyvalue", text)
        return session.store

    def test_modification(self):
        old = self.build("A.K = 1\nA.L = x\n")
        new = self.build("A.K = 2\nA.L = x\n")
        change = diff_stores(old, new)
        assert len(change.modified) == 1 and not change.added and not change.removed

    def test_none_old_is_all_added(self):
        new = self.build("A.K = 1\n")
        change = diff_stores(None, new)
        assert len(change.added) == 1

    def test_removed(self):
        old = self.build("A.K = 1\nA.L = 2\n")
        new = self.build("A.K = 1\n")
        change = diff_stores(old, new)
        assert [i.key.render() for i in change.removed] == ["A.L"]


class TestGateSubcommand:
    def setup_files(self, tmp_path, new_timeout):
        (tmp_path / "spec.cpl").write_text(
            "$s.Timeout -> int & [1, 60]\n$s.Flag -> bool\n$s.Name -> nonempty\n"
        )
        (tmp_path / "old.ini").write_text(
            "[s]\nTimeout = 30\nFlag = true\nName = web\n"
        )
        (tmp_path / "new.ini").write_text(
            f"[s]\nTimeout = {new_timeout}\nFlag = true\nName = web\n"
        )
        return tmp_path

    def test_accepts_good_change(self, tmp_path, capsys):
        root = self.setup_files(tmp_path, 45)
        code = main([
            "gate", str(root / "spec.cpl"),
            "--old", f"ini:{root}/old.ini", "--new", f"ini:{root}/new.ini",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "ACCEPT" in out
        assert "1 of 3 statement(s) run" in out

    def test_rejects_bad_change(self, tmp_path, capsys):
        root = self.setup_files(tmp_path, 999)
        code = main([
            "gate", str(root / "spec.cpl"),
            "--old", f"ini:{root}/old.ini", "--new", f"ini:{root}/new.ini",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "REJECT" in out
        # a range violation admits an obvious clamp suggestion
        assert "suggested repairs:" in out
        assert "'999' -> '60'" in out

    def test_no_change_accepts_fast(self, tmp_path, capsys):
        root = self.setup_files(tmp_path, 30)
        code = main([
            "gate", str(root / "spec.cpl"),
            "--old", f"ini:{root}/old.ini", "--new", f"ini:{root}/new.ini",
        ])
        assert code == 0
        assert "nothing changed" in capsys.readouterr().out

    def test_full_flag_runs_everything(self, tmp_path, capsys):
        root = self.setup_files(tmp_path, 45)
        code = main([
            "gate", str(root / "spec.cpl"),
            "--old", f"ini:{root}/old.ini", "--new", f"ini:{root}/new.ini",
            "--full",
        ])
        assert code == 0
        assert "full corpus: 3 statement(s)" in capsys.readouterr().out

    def test_without_old_everything_is_new(self, tmp_path, capsys):
        root = self.setup_files(tmp_path, 30)
        code = main([
            "gate", str(root / "spec.cpl"), "--new", f"ini:{root}/new.ini",
        ])
        assert code == 0
        assert "+3" in capsys.readouterr().out


class TestGateJson:
    """``gate --json``: the machine-readable verdict shares the job-result
    schema (satellite of the async job service PR) and the documented
    exit-code contract: 0 admit / 1 reject / 2 error."""

    def setup_files(self, tmp_path, new_timeout):
        return TestGateSubcommand().setup_files(tmp_path, new_timeout)

    def run_json(self, root, capsys, extra=()):
        import json

        code = main([
            "gate", str(root / "spec.cpl"),
            "--old", f"ini:{root}/old.ini", "--new", f"ini:{root}/new.ini",
            "--json", *extra,
        ])
        captured = capsys.readouterr()
        return code, json.loads(captured.out), captured

    def test_admit_verdict(self, tmp_path, capsys):
        root = self.setup_files(tmp_path, 45)
        code, verdict, __ = self.run_json(root, capsys)
        assert code == 0
        assert verdict["verdict"] == "admit"
        assert verdict["passed"] is True
        assert verdict["statements_run"] == 1
        assert verdict["statements_total"] == 3
        # same schema as an async job result: the determinism token rides
        assert len(verdict["fingerprint"]) == 64

    def test_reject_verdict(self, tmp_path, capsys):
        root = self.setup_files(tmp_path, 999)
        code, verdict, __ = self.run_json(root, capsys)
        assert code == 1
        assert verdict["verdict"] == "reject"
        assert verdict["violations"] == 1
        assert verdict["violation_details"][0]["key"].endswith("Timeout")

    def test_no_change_admits(self, tmp_path, capsys):
        root = self.setup_files(tmp_path, 30)
        code, verdict, __ = self.run_json(root, capsys)
        assert code == 0
        assert verdict["verdict"] == "admit"
        assert verdict["statements_run"] == 0

    def test_stdout_is_pure_json(self, tmp_path, capsys):
        root = self.setup_files(tmp_path, 45)
        __, __, captured = self.run_json(root, capsys)
        assert captured.out.strip().startswith("{")
        assert "ACCEPT" not in captured.out

    def test_missing_spec_is_error_verdict_exit_two(self, tmp_path, capsys):
        root = self.setup_files(tmp_path, 45)
        (root / "spec.cpl").unlink()
        code, verdict, __ = self.run_json(root, capsys)
        assert code == 2
        assert verdict["verdict"] == "error"
        assert "FileNotFoundError" in verdict["error"]

    def test_error_without_json_prints_stderr(self, tmp_path, capsys):
        root = self.setup_files(tmp_path, 45)
        (root / "spec.cpl").unlink()
        code = main([
            "gate", str(root / "spec.cpl"),
            "--old", f"ini:{root}/old.ini", "--new", f"ini:{root}/new.ini",
        ])
        assert code == 2
        assert "gate error:" in capsys.readouterr().err


class TestWaiverFiles:
    def test_load_waivers(self, tmp_path):
        waivers = tmp_path / "waivers.txt"
        waivers.write_text(
            "# legacy parameters pending cleanup\n"
            "*LegacyTimeout int\n"
            "*Deprecated*\n"
            "\n"
        )
        policy = ValidationPolicy()
        assert policy.load_waivers(str(waivers)) == 2
        assert ("*LegacyTimeout", "int") in policy.suppressions
        assert ("*Deprecated*", "*") in policy.suppressions

    def test_malformed_waiver_line(self, tmp_path):
        waivers = tmp_path / "waivers.txt"
        waivers.write_text("too many fields here\n")
        with pytest.raises(PolicyError):
            ValidationPolicy().load_waivers(str(waivers))

    def test_cli_waivers_flag(self, tmp_path, capsys):
        (tmp_path / "c.ini").write_text("[s]\nLegacyTimeout = soon\nPort = 80\n")
        (tmp_path / "spec.cpl").write_text(
            "$s.LegacyTimeout -> int\n$s.Port -> port\n"
        )
        (tmp_path / "waivers.txt").write_text("*LegacyTimeout int\n")
        code = main([
            "validate", str(tmp_path / "spec.cpl"),
            "--source", f"ini:{tmp_path}/c.ini",
            "--waivers", str(tmp_path / "waivers.txt"),
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out
