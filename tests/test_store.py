"""ConfigStore: uniqueness, class grouping, queries (paper §4.2.2)."""

from __future__ import annotations

import pytest

from repro.errors import ConfValleyError
from repro.repository import ConfigStore, InstanceKey
from repro.repository.model import ConfigInstance


def inst(key_text, value):
    from repro.repository.keys import parse_instance_key

    return ConfigInstance(parse_instance_key(key_text), value, "test")


class TestAdd:
    def test_simple_add_and_get(self):
        store = ConfigStore()
        store.add(inst("Fabric.RecoveryAttempts", "3"))
        found = store.get("Fabric.RecoveryAttempts")
        assert found is not None
        assert found.value == "3"

    def test_duplicate_keys_get_fresh_ordinals(self):
        store = ConfigStore()
        store.add(inst("ProxyIPs", "10.0.0.1"))
        store.add(inst("ProxyIPs", "10.0.0.2"))
        store.add(inst("ProxyIPs", "10.0.0.3"))
        values = {i.value for i in store.query("ProxyIPs")}
        assert values == {"10.0.0.1", "10.0.0.2", "10.0.0.3"}
        assert store.instance_count == 3

    def test_duplicates_stay_in_one_class(self):
        store = ConfigStore()
        store.add(inst("ProxyIPs", "a"))
        store.add(inst("ProxyIPs", "b"))
        assert store.class_count == 1
        cls = store.get_class(("ProxyIPs",))
        assert len(cls) == 2

    def test_class_grouping_across_scopes(self, listing1_store):
        cls = listing1_store.get_class(("CloudGroup", "MonitorNodeHealth"))
        assert len(cls) == 2


class TestQuery:
    def test_query_string_pattern(self, cluster_store):
        assert len(cluster_store.query("StartIP")) == 2

    def test_query_named_scope(self, cluster_store):
        results = cluster_store.query("Cluster::C1.ProxyIP")
        assert len(results) == 1
        assert results[0].value == "10.0.0.50"

    def test_query_counts_queries(self, cluster_store):
        before = cluster_store.query_count
        cluster_store.query("StartIP")
        cluster_store.query("EndIP")
        assert cluster_store.query_count == before + 2

    def test_get_ambiguous_raises(self, cluster_store):
        with pytest.raises(ConfValleyError):
            cluster_store.get("StartIP")

    def test_get_missing_returns_none(self, cluster_store):
        assert cluster_store.get("NoSuchKey") is None

    def test_contains(self, cluster_store):
        assert "StartIP" in cluster_store
        assert "Nope" not in cluster_store

    def test_wildcard_query(self, cluster_store):
        assert len(cluster_store.query("*IP")) == 6

    def test_instances_iteration(self, cluster_store):
        assert len(list(cluster_store.instances())) == 6
        assert len(cluster_store) == 6


class TestListing1:
    def test_instance_counts(self, listing1_store):
        # raw (definition-site) parse: 2 group-level MonitorNodeHealth,
        # 1 tenant override, 2 group ControllerReplicas, 1 tenant override
        assert listing1_store.instance_count == 6

    def test_expanded_instance_counts(self, listing1_expanded_store):
        # paper: MonitorNodeHealth has instances in each of the 4 Tenant scopes
        results = listing1_expanded_store.query("Tenant.MonitorNodeHealth")
        assert len(results) == 4
        overridden = [i for i in results if i.value == "False"]
        assert len(overridden) == 1

    def test_expanded_override_scope(self, listing1_expanded_store):
        results = listing1_expanded_store.query(
            "Cloud::East1Storage1.Tenant::A.MonitorNodeHealth"
        )
        assert [i.value for i in results] == ["False"]
