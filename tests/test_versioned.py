"""Versioned configuration repository: branches, snapshots, diffs."""

from __future__ import annotations

import pytest

from repro import ConfigRepository
from repro.errors import ConfValleyError
from repro.repository.keys import parse_instance_key
from repro.repository.model import ConfigInstance


def inst(key_text, value):
    return ConfigInstance(parse_instance_key(key_text), value, "test")


BASE = [
    inst("Cluster::C1.Timeout", "30"),
    inst("Cluster::C1.Mode", "fast"),
    inst("Cluster::C2.Timeout", "30"),
]


class TestCommits:
    def test_commit_and_head(self):
        repo = ConfigRepository()
        snapshot = repo.commit(BASE, message="initial")
        assert repo.head() is snapshot
        assert snapshot.sequence == 1
        assert snapshot.parent_id is None
        assert len(snapshot) == 3

    def test_sequence_and_parent_chain(self):
        repo = ConfigRepository()
        first = repo.commit(BASE, "one")
        second = repo.commit(BASE + [inst("Cluster::C3.Timeout", "30")], "two")
        assert second.sequence == 2
        assert second.parent_id == first.id

    def test_ids_are_content_addressed(self):
        repo1, repo2 = ConfigRepository(), ConfigRepository()
        assert repo1.commit(BASE).id == repo2.commit(BASE).id

    def test_get_by_id(self):
        repo = ConfigRepository()
        snapshot = repo.commit(BASE)
        assert repo.get(snapshot.id) is snapshot
        with pytest.raises(ConfValleyError):
            repo.get("nope")

    def test_log(self):
        repo = ConfigRepository()
        repo.commit(BASE, "a")
        repo.commit(BASE, "b")
        assert [s.message for s in repo.log()] == ["a", "b"]


class TestBranches:
    def test_create_branch_from_head(self):
        repo = ConfigRepository()
        repo.commit(BASE, "initial")
        repo.create_branch("release", from_branch="trunk")
        head = repo.head("release")
        assert head is not None
        assert len(head) == 3

    def test_empty_branch(self):
        repo = ConfigRepository()
        repo.create_branch("feature")
        assert repo.head("feature") is None

    def test_duplicate_branch_rejected(self):
        repo = ConfigRepository()
        with pytest.raises(ConfValleyError):
            repo.create_branch("trunk")

    def test_unknown_branch_rejected(self):
        repo = ConfigRepository()
        with pytest.raises(ConfValleyError):
            repo.head("nope")


class TestDiff:
    def test_diff_against_none_is_all_added(self):
        repo = ConfigRepository()
        snapshot = repo.commit(BASE)
        change = repo.diff(None, snapshot)
        assert len(change.added) == 3
        assert not change.removed and not change.modified

    def test_modification_detected(self):
        repo = ConfigRepository()
        old = repo.commit(BASE)
        updated = [
            inst("Cluster::C1.Timeout", "45"),   # modified
            inst("Cluster::C1.Mode", "fast"),
            inst("Cluster::C2.Timeout", "30"),
        ]
        new = repo.commit(updated)
        change = repo.diff(old, new)
        assert len(change.modified) == 1
        old_i, new_i = change.modified[0]
        assert old_i.value == "30" and new_i.value == "45"
        assert not change.added and not change.removed

    def test_add_and_remove(self):
        repo = ConfigRepository()
        old = repo.commit(BASE)
        new = repo.commit(BASE[:-1] + [inst("Cluster::C3.Mode", "safe")])
        change = repo.diff(old, new)
        assert [i.key.render() for i in change.added] == ["Cluster::C3.Mode"]
        assert [i.key.render() for i in change.removed] == ["Cluster::C2.Timeout"]

    def test_identical_snapshots_empty_change(self):
        repo = ConfigRepository()
        old = repo.commit(BASE)
        new = repo.commit(BASE)
        assert repo.diff(old, new).is_empty

    def test_touched_classes(self):
        repo = ConfigRepository()
        old = repo.commit(BASE)
        new = repo.commit([
            inst("Cluster::C1.Timeout", "45"),
            inst("Cluster::C1.Mode", "fast"),
            inst("Cluster::C2.Timeout", "30"),
        ])
        change = repo.diff(old, new)
        assert change.touched_classes() == {("Cluster", "Timeout")}
        assert "~1" in change.summary()

    def test_diff_heads(self):
        repo = ConfigRepository()
        repo.commit(BASE)
        repo.create_branch("candidate", from_branch="trunk")
        repo.commit(
            [inst("Cluster::C1.Timeout", "60")] + BASE[1:], branch="candidate"
        )
        change = repo.diff_heads("trunk", "candidate")
        assert len(change.modified) == 1


class TestStoreCache:
    def test_store_for_caches(self):
        repo = ConfigRepository()
        snapshot = repo.commit(BASE)
        assert repo.store_for(snapshot) is repo.store_for(snapshot)

    def test_store_contents(self):
        repo = ConfigRepository()
        snapshot = repo.commit(BASE)
        store = repo.store_for(snapshot)
        assert store.instance_count == 3
        assert store.query("Cluster::C1.Timeout")[0].value == "30"
