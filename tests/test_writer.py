"""Store writers: lossless key-value round-trip, INI subset."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConfigStore
from repro.drivers import get_driver, to_ini, to_keyvalue
from repro.errors import DriverError
from repro.repository.keys import InstanceKey, InstanceSegment
from repro.repository.model import ConfigInstance


def store_of(instances):
    store = ConfigStore()
    store.add_all(instances)
    return store


def snapshot(store):
    return sorted((i.key.render(), i.value) for i in store.instances())


class TestKeyValueWriter:
    def test_simple_roundtrip(self):
        store = store_of([
            ConfigInstance(InstanceKey.build(("Cluster", "C1"), "Timeout"), "30"),
            ConfigInstance(InstanceKey.build("GlobalFlag"), "true"),
        ])
        text = to_keyvalue(store)
        rebuilt = store_of(get_driver("keyvalue").parse(text))
        assert snapshot(rebuilt) == snapshot(store)

    def test_quoted_qualifier_roundtrip(self):
        store = store_of([
            ConfigInstance(
                InstanceKey.build(("CloudGroup", "East1 Production"), "K"), "v"
            )
        ])
        rebuilt = store_of(get_driver("keyvalue").parse(to_keyvalue(store)))
        assert snapshot(rebuilt) == snapshot(store)

    def test_value_with_equals_roundtrips(self):
        store = store_of([ConfigInstance(InstanceKey.build("K"), "a=b=c")])
        rebuilt = store_of(get_driver("keyvalue").parse(to_keyvalue(store)))
        assert snapshot(rebuilt) == snapshot(store)

    def test_empty_store(self):
        assert to_keyvalue(ConfigStore()) == ""

    def test_multiline_value_rejected(self):
        store = store_of([ConfigInstance(InstanceKey.build("K"), "a\nb")])
        with pytest.raises(DriverError):
            to_keyvalue(store)

    def test_equals_in_qualifier_rejected(self):
        store = store_of([
            ConfigInstance(InstanceKey.build(("A", "x=y"), "K"), "v")
        ])
        with pytest.raises(DriverError):
            to_keyvalue(store)

    def test_accepts_plain_iterable(self):
        instances = [ConfigInstance(InstanceKey.build("K"), "v")]
        assert "K = v" in to_keyvalue(instances)


class TestINIWriter:
    def test_roundtrip_two_level(self):
        store = store_of([
            ConfigInstance(InstanceKey.build("fabric", "Timeout"), "30"),
            ConfigInstance(InstanceKey.build("fabric", "Retries"), "3"),
            ConfigInstance(InstanceKey.build(("Env", "E1"), "K"), "v"),
        ])
        rebuilt = store_of(get_driver("ini").parse(to_ini(store)))
        assert snapshot(rebuilt) == snapshot(store)

    def test_top_level_keys(self):
        store = store_of([ConfigInstance(InstanceKey.build("K"), "v")])
        assert to_ini(store).strip() == "K = v"

    def test_duplicate_keys_in_section_rejected(self):
        store = ConfigStore()
        store.add(ConfigInstance(InstanceKey.build("s", "K"), "a"))
        # second add dedups into K[2]: leaf ordinal != 1 → unrepresentable
        store.add(ConfigInstance(InstanceKey.build("s", "K"), "b"))
        with pytest.raises(DriverError):
            to_ini(store)

    def test_qualified_leaf_rejected(self):
        store = store_of([
            ConfigInstance(InstanceKey.build("s", ("K", "q")), "v")
        ])
        with pytest.raises(DriverError):
            to_ini(store)


# ---------------------------------------------------------------------------
# Property: write → parse → same store, for representable random stores
# ---------------------------------------------------------------------------

_names = st.sampled_from(["Cluster", "Node", "Fabric", "Timeout", "IP", "K1", "K2"])
_quals = st.one_of(st.none(), st.sampled_from(["a", "b", "East Prod", "x-1"]))
_values = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789 .,:/=-",
    max_size=20,
).map(str.strip)


@st.composite
def _stores(draw):
    count = draw(st.integers(min_value=0, max_value=12))
    store = ConfigStore()
    for __ in range(count):
        depth = draw(st.integers(min_value=1, max_value=3))
        segments = []
        for level in range(depth):
            name = draw(_names)
            qualifier = draw(_quals) if level < depth - 1 else None
            segments.append(InstanceSegment(name, qualifier))
        store.add(ConfigInstance(InstanceKey(tuple(segments)), draw(_values), "t"))
    return store


@given(_stores())
@settings(max_examples=150, deadline=None)
def test_property_keyvalue_roundtrip(store):
    text = to_keyvalue(store)
    rebuilt = store_of(get_driver("keyvalue").parse(text))
    assert snapshot(rebuilt) == snapshot(store)
