"""Fleet-wide observability (ISSUE 9): trace stitching + metrics federation.

The contracts under test:

* **trace segments** — per-process partition files tolerate a torn
  trailing line and skip corrupt middles, exactly like the job journal;
* **stitching** — re-emissions of one span id (the root is written open
  at submit, closed at webhook/terminal) merge into a single closed
  span; a lost close is healed against the trace's latest end; the
  stitched tree is single-rooted with no orphans;
* **metrics federation** — worker snapshot series re-export under a
  ``worker`` label, counters and histograms roll up into
  ``confvalley_fleet_*`` families, gauges stay per-worker, mismatched
  histogram buckets are refused, and stale snapshots are fenced out of
  the merge while staying visible in ``GET /fleet``;
* **end-to-end** — a job submitted to the coordinator and executed by a
  real ``confvalley worker`` subprocess yields one stitched trace
  covering submit → claim → parse → evaluate → report → webhook across
  both processes, and the coordinator's ``/metrics`` carries that
  worker's counters under a ``worker`` label;
* **parity** — verdict fingerprints are byte-identical with federation
  on or off, and an untraced job stays untraced;
* **CLI** — ``confvalley trace`` fetches from a live URL or stitches
  offline from a journal directory, with the uniform one-line
  cannot-reach error and exit 1.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro import SourceSpec, ValidationService, observability
from repro.console import main
from repro.core.session import ValidationSession
from repro.jobs import JobDirectory, JobService, JobState
from repro.jobs.model import report_fingerprint_digest
from repro.observability import (
    FleetView,
    MetricsRegistry,
    export_metrics_snapshot,
    merge_metrics,
    parse_prometheus,
    read_trace_segments,
    stitch_trace,
    trace_payload,
)
from repro.observability.federation import TraceSegmentWriter

SPEC = "$s.Timeout -> int & [1, 60]\n$s.Flag -> bool\n$s.Name -> nonempty\n"
GOOD_INI = "[s]\nTimeout = 30\nFlag = true\nName = web\n"


@pytest.fixture(autouse=True)
def pristine_observability():
    observability.disable()
    yield
    observability.disable()


def inline_sources(text=GOOD_INI):
    return [{"format": "ini", "text": text, "source": "inline.ini"}]


def direct_fingerprint(spec=SPEC, text=GOOD_INI) -> str:
    session = ValidationSession()
    session.load_text("ini", text, source="inline.ini")
    return report_fingerprint_digest(session.validate(spec))


def wait_until(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def span(span_id, name="s", parent="", start=1.0, end=2.0, **attrs):
    return {"span_id": span_id, "parent_id": parent, "name": name,
            "start": start, "end": end, "attrs": attrs}


def segment(trace_id, spans, source="src", recorded_at=10.0):
    return {"v": 1, "trace_id": trace_id, "source": source,
            "recorded_at": recorded_at, "spans": spans}


# ---------------------------------------------------------------------------
# Trace partitions: torn/corrupt line replay
# ---------------------------------------------------------------------------


class TestTracePartitions:
    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "traces" / "w1.jsonl")
        writer = TraceSegmentWriter(path, "w1", time_fn=lambda: 42.0)
        writer.write("t1", [span("t1:a")])
        writer.write("t2", [span("t2:a")])
        segments = read_trace_segments(path)
        assert [seg["trace_id"] for seg in segments] == ["t1", "t2"]
        assert segments[0]["source"] == "w1"
        assert segments[0]["recorded_at"] == 42.0

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "w1.jsonl"
        whole = json.dumps(segment("t1", [span("t1:a")]))
        torn = json.dumps(segment("t1", [span("t1:b")]))[:25]
        path.write_text(whole + "\n" + torn)
        segments = read_trace_segments(str(path))
        assert len(segments) == 1
        assert segments[0]["spans"][0]["span_id"] == "t1:a"

    def test_corrupt_middle_line_is_skipped(self, tmp_path):
        path = tmp_path / "w1.jsonl"
        first = json.dumps(segment("t1", [span("t1:a")]))
        last = json.dumps(segment("t1", [span("t1:c")]))
        path.write_text(first + "\n{not json}\n" + last + "\n")
        segments = read_trace_segments(str(path))
        assert [seg["spans"][0]["span_id"] for seg in segments] == ["t1:a", "t1:c"]

    def test_missing_partition_reads_empty(self, tmp_path):
        assert read_trace_segments(str(tmp_path / "absent.jsonl")) == []


# ---------------------------------------------------------------------------
# Stitching
# ---------------------------------------------------------------------------


class TestStitching:
    def test_reemitted_root_merges_open_then_closed(self):
        opened = segment("t1", [span("t1:root", name="job", start=1.0,
                                     end=None)], source="coordinator",
                         recorded_at=1.0)
        closed = segment("t1", [span("t1:root", name="job", start=1.0,
                                     end=9.0, state="DONE")],
                         source="coordinator", recorded_at=9.0)
        spans = stitch_trace("t1", [opened, closed])
        assert len(spans) == 1
        assert spans[0]["end"] == 9.0
        assert spans[0]["attrs"]["state"] == "DONE"

    def test_lost_close_heals_against_latest_end(self):
        segments = [segment("t1", [
            span("t1:root", start=1.0, end=None),
            span("t1:child", parent="t1:root", start=2.0, end=7.5),
        ])]
        spans = stitch_trace("t1", segments)
        root = next(s for s in spans if s["span_id"] == "t1:root")
        assert root["end"] == 7.5

    def test_other_traces_are_filtered_out(self):
        segments = [segment("t1", [span("t1:a")]),
                    segment("t2", [span("t2:a")])]
        assert [s["span_id"] for s in stitch_trace("t1", segments)] == ["t1:a"]

    def test_payload_reports_roots_and_orphans(self):
        segments = [segment("t1", [
            span("t1:root", start=1.0),
            span("t1:kid", parent="t1:root", start=2.0),
            span("t1:lost", parent="t1:gone", start=3.0),
        ])]
        payload = trace_payload("t1", segments)
        assert payload["roots"] == ["t1:root", "t1:lost"]
        assert payload["orphan_spans"] == ["t1:lost"]
        assert payload["segments"] == 1
        assert payload["sources"] == ["src"]
        names = {event["name"] for event in payload["traceEvents"]}
        assert names == {"s"}


# ---------------------------------------------------------------------------
# Metrics federation: merge semantics
# ---------------------------------------------------------------------------


def snapshot_row(worker, metrics, exported_at=100.0):
    return {"worker": worker, "exported_at": exported_at, "metrics": metrics,
            "stats": {}}


class TestMergeMetrics:
    def test_counters_labeled_and_rolled_up(self):
        local = MetricsRegistry()
        local.counter("confvalley_jobs_total", "jobs").inc(2.0, state="DONE")
        worker = MetricsRegistry()
        worker.counter("confvalley_jobs_total", "jobs").inc(3.0, state="DONE")
        merged = merge_metrics(
            local.to_dict(), [snapshot_row("w1", worker.to_dict())]
        )
        series = merged["confvalley_jobs_total"]["series"]
        by_labels = {tuple(sorted(s["labels"].items())): s["value"]
                     for s in series}
        assert by_labels[(("state", "DONE"),)] == 2.0
        assert by_labels[(("state", "DONE"), ("worker", "w1"))] == 3.0
        fleet = merged["confvalley_fleet_jobs_total"]["series"]
        assert fleet == [{"labels": {"state": "DONE"}, "value": 5.0}]

    def test_gauges_stay_per_worker(self):
        local = MetricsRegistry()
        local.gauge("confvalley_queue_depth", "depth").set(4)
        worker = MetricsRegistry()
        worker.gauge("confvalley_queue_depth", "depth").set(6)
        merged = merge_metrics(
            local.to_dict(), [snapshot_row("w1", worker.to_dict())]
        )
        assert "confvalley_fleet_queue_depth" not in merged
        values = {json.dumps(s["labels"], sort_keys=True): s["value"]
                  for s in merged["confvalley_queue_depth"]["series"]}
        assert values == {"{}": 4.0, '{"worker": "w1"}': 6.0}

    def test_histograms_merge_bucket_wise(self):
        local = MetricsRegistry()
        local.histogram("confvalley_latency", "lat", buckets=(1.0, 2.0)).observe(0.5)
        worker = MetricsRegistry()
        worker.histogram("confvalley_latency", "lat", buckets=(1.0, 2.0)).observe(1.5)
        merged = merge_metrics(
            local.to_dict(), [snapshot_row("w1", worker.to_dict())]
        )
        fleet = merged["confvalley_fleet_latency"]
        assert fleet["buckets"] == [1.0, 2.0]
        assert fleet["series"][0]["counts"] == [1, 1, 0]
        assert fleet["series"][0]["count"] == 2

    def test_mismatched_histogram_buckets_are_refused(self):
        local = MetricsRegistry()
        local.histogram("confvalley_latency", "lat", buckets=(1.0, 2.0)).observe(0.5)
        worker = MetricsRegistry()
        worker.histogram("confvalley_latency", "lat", buckets=(9.0,)).observe(0.5)
        merged = merge_metrics(
            local.to_dict(), [snapshot_row("w1", worker.to_dict())]
        )
        # the worker's incompatible series is dropped, not fabricated
        assert all("worker" not in (s.get("labels") or {})
                   for s in merged["confvalley_latency"]["series"])
        assert merged["confvalley_fleet_latency"]["series"][0]["count"] == 1


# ---------------------------------------------------------------------------
# Staleness fencing
# ---------------------------------------------------------------------------


class TestStalenessFencing:
    def test_stale_snapshot_fenced_from_merge_but_visible_in_fleet(self, tmp_path):
        directory = JobDirectory(str(tmp_path)).ensure()
        now = [1000.0]
        view = FleetView(directory, stale_after=5.0, time_fn=lambda: now[0])

        fresh = MetricsRegistry()
        fresh.counter("confvalley_jobs_total", "jobs").inc(1.0)
        export_metrics_snapshot(directory.metrics_snapshot("alive"), fresh,
                                time_fn=lambda: 999.0)
        dead = MetricsRegistry()
        dead.counter("confvalley_jobs_total", "jobs").inc(7.0)
        export_metrics_snapshot(directory.metrics_snapshot("dead"), dead,
                                time_fn=lambda: 100.0)

        rows = {row["worker"]: row for row in view.metric_rows()}
        assert rows["alive"]["fresh"] is True
        assert rows["dead"]["fresh"] is False
        assert rows["dead"]["metrics_age_s"] == 900.0

        merged = view.merged_families({})
        workers = {(s["labels"].get("worker"))
                   for s in merged["confvalley_jobs_total"]["series"]}
        assert workers == {"alive"}

        payload = view.fleet_payload()
        flags = {row["worker"]: row["fresh"] for row in payload["workers"]}
        assert flags == {"alive": True, "dead": False}

        meta = merged["confvalley_fleet_workers"]["series"]
        counts = {s["labels"]["state"]: s["value"] for s in meta}
        assert counts == {"fresh": 1.0, "stale": 1.0}

    def test_snapshot_refresh_unfences(self, tmp_path):
        directory = JobDirectory(str(tmp_path)).ensure()
        now = [50.0]
        view = FleetView(directory, stale_after=5.0, time_fn=lambda: now[0])
        registry = MetricsRegistry()
        registry.counter("confvalley_jobs_total", "jobs").inc(1.0)
        export_metrics_snapshot(directory.metrics_snapshot("w1"), registry,
                                time_fn=lambda: 49.0)
        assert view.metric_rows()[0]["fresh"] is True
        now[0] = 100.0
        assert view.metric_rows()[0]["fresh"] is False
        export_metrics_snapshot(directory.metrics_snapshot("w1"), registry,
                                time_fn=lambda: 99.5)
        assert view.metric_rows()[0]["fresh"] is True


# ---------------------------------------------------------------------------
# In-process tracing (no shared directory)
# ---------------------------------------------------------------------------


class TestInProcessTracing:
    def test_single_process_job_traces_without_directory(self, tmp_path):
        observability.enable()
        service = JobService(journal_path=str(tmp_path / "j.jsonl"), workers=1)
        try:
            job, __ = service.submit(spec=SPEC, sources=inline_sources())
            done = service.wait(job.id, timeout=30)
            assert done.state == JobState.DONE
            assert done.trace == {"trace_id": job.id,
                                  "span_id": f"{job.id}:root"}
            payload = service.trace(job.id)
            names = [s["name"] for s in payload["spans"]]
            assert names == ["job", "submit", "claim", "parse",
                             "evaluate", "report"]
            assert payload["roots"] == [f"{job.id}:root"]
            assert payload["orphan_spans"] == []
            assert all(s["end"] is not None for s in payload["spans"])
        finally:
            service.close()

    def test_untraced_when_observability_disabled(self, tmp_path):
        service = JobService(journal_path=str(tmp_path / "j.jsonl"), workers=1)
        try:
            job, __ = service.submit(spec=SPEC, sources=inline_sources())
            done = service.wait(job.id, timeout=30)
            assert done.state == JobState.DONE
            assert done.trace is None
            assert service.trace(job.id)["spans"] == []
        finally:
            service.close()

    def test_webhook_closes_the_root_span(self, tmp_path):
        observability.enable()
        delivered = []
        service = JobService(
            journal_path=str(tmp_path / "j.jsonl"), workers=1,
            webhook_post=lambda url, payload: delivered.append(url),
            webhook_base_delay=0.01,
        )
        try:
            job, __ = service.submit(
                spec=SPEC, sources=inline_sources(),
                callback_url="http://callback.example/hook",
            )
            service.wait(job.id, timeout=30)
            assert wait_until(
                lambda: "webhook" in
                {s["name"] for s in service.trace(job.id)["spans"]}
            )
            payload = service.trace(job.id)
            webhook = next(s for s in payload["spans"]
                           if s["name"] == "webhook")
            assert webhook["attrs"]["outcome"] == "delivered"
            root = next(s for s in payload["spans"] if s["name"] == "job")
            assert root["attrs"]["closed_by"] == "webhook"
            assert root["end"] is not None
        finally:
            service.close()


# ---------------------------------------------------------------------------
# End-to-end: a real worker subprocess
# ---------------------------------------------------------------------------


def spawn_worker(journal_dir, worker_id, **flags):
    source_root = os.path.join(os.path.dirname(__file__), "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (os.path.abspath(source_root), env.get("PYTHONPATH", ""))
        if part
    )
    command = [
        sys.executable, "-c",
        "import sys; from repro.console.cli import main; "
        "sys.exit(main(sys.argv[1:]))",
        "worker", "--journal", str(journal_dir), "--id", worker_id,
        "--lease-ttl", "1.0", "--poll", "0.02",
    ]
    for flag, value in flags.items():
        command += [f"--{flag.replace('_', '-')}", str(value)]
    return subprocess.Popen(command, env=env, stderr=subprocess.DEVNULL)


def test_subprocess_worker_yields_one_stitched_tree(tmp_path):
    """The acceptance property: POST a job, have a standalone worker run
    it, and get one stitched trace covering submit → claim → parse →
    evaluate → report → webhook across both processes."""
    observability.enable()
    delivered = []
    service = JobService(
        journal_dir=str(tmp_path / "jobsdir"), workers=0,
        lease_ttl=1.0, reaper_interval=0.05,
        webhook_post=lambda url, payload: delivered.append(payload),
        webhook_base_delay=0.01,
    )
    worker = None
    try:
        worker = spawn_worker(service.directory.root, "w1")
        job, __ = service.submit(
            spec=SPEC, sources=inline_sources(),
            callback_url="http://callback.example/hook",
        )
        done = service.wait(job.id, timeout=60)
        assert done.state == JobState.DONE
        assert done.worker == "w1"
        assert done.result["fingerprint"] == direct_fingerprint()
        assert wait_until(
            lambda: {"webhook", "report"} <=
            {s["name"] for s in service.trace(job.id)["spans"]}
        )

        payload = service.trace(job.id)
        names = {s["name"] for s in payload["spans"]}
        assert names == {"job", "submit", "claim", "parse", "evaluate",
                         "report", "webhook"}
        # one rooted tree: a single root, every parent resolves
        assert payload["roots"] == [f"{job.id}:root"]
        assert payload["orphan_spans"] == []
        assert sorted(payload["sources"]) == ["coordinator", "w1"]
        ids = {s["span_id"] for s in payload["spans"]}
        assert all((not s["parent_id"]) or s["parent_id"] in ids
                   for s in payload["spans"])
        # the worker's segment carries its identity in the span ids
        claim = next(s for s in payload["spans"] if s["name"] == "claim")
        assert claim["span_id"].startswith(f"{job.id}:w1.")

        # federation: the worker's counters surface under a worker label
        def worker_series():
            families = service.federated_metrics() or {}
            family = families.get("confvalley_worker_jobs_total") or {}
            return [s for s in family.get("series") or ()
                    if (s.get("labels") or {}).get("worker") == "w1"]

        assert wait_until(lambda: worker_series())
        assert worker_series()[0]["value"] >= 1.0
        families = service.federated_metrics()
        assert "confvalley_fleet_worker_jobs_total" in families

        fleet = service.fleet_payload()
        row = next(r for r in fleet["workers"] if r["worker"] == "w1")
        assert row["fresh"] is True
        assert row["counts"] == {"claims": 1, "done": 1}
        trace_sources = {r["source"] for r in fleet["traces"]["sources"]}
        assert {"coordinator", "w1"} <= trace_sources

        rows = service.workers_payload()["workers"]
        w1 = next(r for r in rows if r["id"] == "w1")
        assert w1["metrics_age_s"] is not None
        assert w1["last_trace_segment_at"] is not None
    finally:
        if worker is not None and worker.poll() is None:
            worker.kill()
            worker.wait(timeout=10)
        service.close(drain=False)


def test_fingerprint_parity_with_federation_on_and_off(tmp_path):
    """House invariant: the verdict fingerprint is byte-identical whether
    the job ran traced+federated or with observability off."""
    fingerprints = {}
    for mode in ("off", "on"):
        observability.disable()
        if mode == "on":
            observability.enable()
        service = JobService(
            journal_dir=str(tmp_path / f"jobsdir-{mode}"), workers=1,
            lease_ttl=5.0,
        )
        try:
            job, __ = service.submit(spec=SPEC, sources=inline_sources())
            done = service.wait(job.id, timeout=30)
            assert done.state == JobState.DONE
            fingerprints[mode] = done.result["fingerprint"]
        finally:
            service.close()
    assert fingerprints["off"] == fingerprints["on"]
    assert fingerprints["on"] == direct_fingerprint()


# ---------------------------------------------------------------------------
# HTTP surface: /fleet, /jobs/<id>/trace, federated /metrics
# ---------------------------------------------------------------------------


@pytest.fixture
def workspace(tmp_path):
    spec = tmp_path / "spec.cpl"
    spec.write_text(SPEC)
    config = tmp_path / "good.ini"
    config.write_text(GOOD_INI)
    return tmp_path, spec, config


@pytest.fixture
def live(workspace):
    tmp, spec, config = workspace
    observability.enable()
    service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
    jobs = JobService(journal_dir=str(tmp / "jobsdir"), workers=1,
                      lease_ttl=5.0)
    service.attach_jobs(jobs)
    server = service.start_http()
    yield service, jobs, server
    service.stop_http()
    jobs.close()


def request_json(url, payload=None):
    import urllib.error
    import urllib.request

    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


class TestHttpSurface:
    def test_trace_endpoint_serves_the_stitched_tree(self, live):
        __, jobs, server = live
        status, body = request_json(server.url + "/jobs", payload={
            "spec": SPEC, "sources": inline_sources(),
        })
        assert status == 202
        jobs.wait(body["id"], timeout=30)
        status, trace = request_json(server.url + f"/jobs/{body['id']}/trace")
        assert status == 200
        assert trace["trace_id"] == body["id"]
        assert trace["roots"] == [f"{body['id']}:root"]
        assert trace["orphan_spans"] == []
        assert {s["name"] for s in trace["spans"]} >= {
            "job", "submit", "claim", "evaluate"}
        assert trace["traceEvents"]

    def test_trace_endpoint_404s_unknown_job(self, live):
        __, __, server = live
        status, body = request_json(server.url + "/jobs/job-missing/trace")
        assert status == 404
        assert "job-missing" in body["error"]

    def test_trace_requests_collapse_to_one_metric_series(self, live):
        __, jobs, server = live
        status, body = request_json(server.url + "/jobs", payload={
            "spec": SPEC, "sources": inline_sources(),
        })
        jobs.wait(body["id"], timeout=30)
        request_json(server.url + f"/jobs/{body['id']}/trace")
        request_json(server.url + "/jobs/job-other/trace")
        series = observability.get_metrics().to_dict()[
            "confvalley_http_requests_total"]["series"]
        paths = {tuple(sorted(s["labels"].items())): s["value"]
                 for s in series}
        assert paths[(("path", "/jobs/:id/trace"),)] == 2.0

    def test_fleet_endpoint_on_jobs_service(self, live):
        __, __, server = live
        status, body = request_json(server.url + "/fleet")
        assert status == 200
        assert body["federation"] is True
        assert "stale_after_s" in body
        assert "traces" in body

    def test_fleet_endpoint_is_200_without_jobs(self, workspace):
        __, spec, config = workspace
        service = ValidationService(str(spec),
                                    [SourceSpec("ini", str(config))])
        server = service.start_http()
        try:
            status, body = request_json(server.url + "/fleet")
            assert status == 200
            assert body == {"federation": False, "workers": [],
                            "traces": {"sources": [], "stored_traces": 0}}
        finally:
            service.stop_http()

    def test_metrics_exposition_stays_parseable_when_federated(self, live):
        __, jobs, server = live
        import urllib.request

        with urllib.request.urlopen(server.url + "/metrics",
                                    timeout=10) as response:
            text = response.read().decode()
        families = parse_prometheus(text)
        assert "confvalley_fleet_workers" in families

    def test_stats_carries_the_fleet_block(self, live):
        __, __, server = live
        status, body = request_json(server.url + "/stats")
        assert status == 200
        assert body["jobs"]["fleet"]["federation"] is True
        assert "traces" in body["jobs"]["fleet"]


# ---------------------------------------------------------------------------
# CLI: confvalley trace
# ---------------------------------------------------------------------------


class TestTraceCli:
    def test_trace_from_live_url(self, live, capsys, tmp_path):
        __, jobs, server = live
        status, body = request_json(server.url + "/jobs", payload={
            "spec": SPEC, "sources": inline_sources(),
        })
        jobs.wait(body["id"], timeout=30)
        out_file = tmp_path / "trace.json"
        code = main(["trace", server.url, body["id"],
                     "--out", str(out_file)])
        assert code == 0
        document = json.loads(out_file.read_text())
        assert document["trace_id"] == body["id"]
        assert document["traceEvents"]

    def test_trace_stdout_without_out(self, live, capsys):
        __, jobs, server = live
        status, body = request_json(server.url + "/jobs", payload={
            "spec": SPEC, "sources": inline_sources(),
        })
        jobs.wait(body["id"], timeout=30)
        assert main(["trace", server.url, body["id"]]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["trace_id"] == body["id"]

    def test_trace_offline_from_journal_dir(self, live, capsys):
        __, jobs, server = live
        status, body = request_json(server.url + "/jobs", payload={
            "spec": SPEC, "sources": inline_sources(),
        })
        jobs.wait(body["id"], timeout=30)
        assert wait_until(
            lambda: main(["trace", jobs.directory.root, body["id"]]) == 0
        )
        capsys.readouterr()
        assert main(["trace", jobs.directory.root, body["id"]]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["trace_id"] == body["id"]
        assert document["roots"] == [f"{body['id']}:root"]

    def test_trace_unreachable_prints_one_line(self, capsys):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        code = main(["trace", f"http://127.0.0.1:{port}", "job-x"])
        assert code == 1
        err = capsys.readouterr().err.strip()
        assert err.count("\n") == 0
        assert "cannot reach" in err

    def test_trace_missing_directory_fails_cleanly(self, capsys, tmp_path):
        code = main(["trace", str(tmp_path / "nope"), "job-x"])
        assert code == 1
        assert "no job directory" in capsys.readouterr().err

    def test_trace_unknown_job_in_directory(self, capsys, tmp_path):
        directory = JobDirectory(str(tmp_path / "jobsdir")).ensure()
        code = main(["trace", directory.root, "job-x"])
        assert code == 1
        assert "no trace recorded" in capsys.readouterr().err
