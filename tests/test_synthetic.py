"""Synthetic workloads: dataset shape, fault injection, expert-spec and
imperative-baseline behaviour (DESIGN.md substitutions)."""

from __future__ import annotations

import pytest

from repro import InferenceEngine, ValidationSession
from repro.synthetic import (
    BENIGN_KINDS,
    CLOUDSTACK_SPECS,
    EXPERT_SPECS,
    FaultInjector,
    OPENSTACK_SPECS,
    TRUE_ERROR_KINDS,
    generate_cloudstack,
    generate_openstack,
    generate_type_a,
    generate_type_b,
    generate_type_c,
    imperative_loc,
    opensource_imperative_loc,
    score_report,
    spec_loc,
    validate_cloudstack,
    validate_openstack,
    validate_type_a,
    validate_type_b,
    validate_type_c,
)

SCALE_A, SCALE_B, SCALE_C = 0.1, 0.005, 0.5


@pytest.fixture(scope="module")
def type_a():
    return generate_type_a(SCALE_A)


@pytest.fixture(scope="module")
def type_a_store(type_a):
    return type_a.build_store()


class TestGenerators:
    def test_type_a_shape(self, type_a_store):
        assert type_a_store.class_count > 100
        ratio = type_a_store.instance_count / type_a_store.class_count
        assert ratio > 2

    def test_type_b_shape(self):
        store = generate_type_b(SCALE_B).build_store()
        assert store.class_count > 100
        # the node classes carry the huge fan-out
        node_ip = store.get_class(("Cluster", "Node", "NodeIP"))
        assert len(node_ip) >= 20

    def test_type_c_shape(self):
        store = generate_type_c(SCALE_C).build_store()
        assert 20 <= store.class_count <= 200
        # every environment instantiates every key
        for config_class in store.classes():
            assert len(config_class) >= 3

    def test_determinism(self):
        first = generate_type_a(0.05, seed=9).sources
        second = generate_type_a(0.05, seed=9).sources
        assert first == second

    def test_scale_changes_size(self):
        small = generate_type_a(0.02).build_store()
        large = generate_type_a(0.2).build_store()
        assert large.instance_count > small.instance_count

    def test_opensource_shapes(self):
        openstack = generate_openstack(5).build_store()
        assert openstack.instance_count == 5 * 17  # 17 options per node
        cloudstack = generate_cloudstack(4).build_store()
        assert cloudstack.class_count >= 14


class TestCleanData:
    @pytest.mark.parametrize("name,generator,imperative", [
        ("type_a", lambda: generate_type_a(SCALE_A), validate_type_a),
        ("type_b", lambda: generate_type_b(SCALE_B), validate_type_b),
        ("type_c", lambda: generate_type_c(SCALE_C), validate_type_c),
    ])
    def test_expert_specs_pass_on_clean_azure(self, name, generator, imperative):
        store = generator().build_store()
        report = ValidationSession(store=store).validate(EXPERT_SPECS[name])
        assert report.passed, report.render(limit=5)
        assert imperative(store) == []

    def test_expert_specs_pass_on_clean_opensource(self):
        openstack = generate_openstack(8).build_store()
        assert ValidationSession(store=openstack).validate(OPENSTACK_SPECS).passed
        assert validate_openstack(openstack) == []
        cloudstack = generate_cloudstack(6).build_store()
        assert ValidationSession(store=cloudstack).validate(CLOUDSTACK_SPECS).passed
        assert validate_cloudstack(cloudstack) == []

    def test_inferred_specs_pass_on_clean_data(self, type_a_store):
        result = InferenceEngine().infer(type_a_store)
        report = ValidationSession(store=type_a_store).validate(result.to_cpl())
        assert report.passed, report.render(limit=5)


class TestFaultInjection:
    def test_every_kind_injects_on_type_a(self, type_a):
        injector = FaultInjector(type_a.parse(), seed=3)
        branch = injector.make_branch("b", TRUE_ERROR_KINDS, BENIGN_KINDS)
        injected_kinds = {f.kind for f in branch.faults}
        assert set(TRUE_ERROR_KINDS) <= injected_kinds
        assert set(BENIGN_KINDS) <= injected_kinds

    def test_faults_actually_change_values(self, type_a):
        base = type_a.parse()
        injector = FaultInjector(base, seed=3)
        branch = injector.make_branch("b", TRUE_ERROR_KINDS)
        changed = {f.key: f.new_value for f in branch.faults}
        by_key = {i.key.render(): i.value for i in branch.instances}
        for key, new_value in changed.items():
            assert by_key[key] == new_value

    def test_base_not_mutated(self, type_a):
        base = type_a.parse()
        values_before = [i.value for i in base]
        FaultInjector(base, seed=3).make_branch("b", TRUE_ERROR_KINDS)
        assert [i.value for i in base] == values_before

    def test_deterministic(self, type_a):
        base = type_a.parse()
        first = FaultInjector(base, seed=5).make_branch("b", TRUE_ERROR_KINDS)
        second = FaultInjector(base, seed=5).make_branch("b", TRUE_ERROR_KINDS)
        assert [f.key for f in first.faults] == [f.key for f in second.faults]

    def test_repeated_kinds_hit_distinct_targets(self, type_a):
        injector = FaultInjector(type_a.parse(), seed=3)
        branch = injector.make_branch("b", ["wrong_type", "wrong_type", "wrong_type"])
        keys = [f.key for f in branch.faults]
        assert len(set(keys)) == len(keys) == 3

    def test_unknown_kind_raises(self, type_a):
        injector = FaultInjector(type_a.parse())
        with pytest.raises(ValueError):
            injector.make_branch("b", ["made_up_kind"])


class TestDetection:
    EXPERT_KINDS = [
        "vip_out_of_cluster", "bad_blade_location", "mac_ip_pool_mismatch",
        "empty_required", "low_replica_count", "wrong_type", "enum_typo",
    ]

    def test_expert_specs_catch_expert_kinds(self, type_a):
        injector = FaultInjector(type_a.parse(), seed=13)
        branch = injector.make_branch("b", self.EXPERT_KINDS)
        report = ValidationSession(store=branch.build_store()).validate(
            EXPERT_SPECS["type_a"]
        )
        score = score_report(report, branch)
        assert score.true_errors_caught == len(self.EXPERT_KINDS)
        assert score.false_positives == 0
        assert score.unexpected == 0

    def test_imperative_catches_the_same(self, type_a):
        injector = FaultInjector(type_a.parse(), seed=13)
        branch = injector.make_branch("b", self.EXPERT_KINDS)
        errors = validate_type_a(branch.build_store())
        assert len(errors) >= len(self.EXPERT_KINDS)

    def test_inferred_specs_flag_benign_drift(self, type_a):
        clean = type_a.build_store()
        inferred = InferenceEngine().infer(clean)
        injector = FaultInjector(type_a.parse(), seed=17)
        branch = injector.make_branch(
            "b", ["wrong_type", "empty_required"], ["scalar_to_list", "range_drift"]
        )
        report = ValidationSession(store=branch.build_store()).validate(
            inferred.to_cpl()
        )
        score = score_report(report, branch)
        assert score.true_errors_caught == 2
        assert score.false_positives >= 1
        assert score.unexpected == 0

    def test_expert_specs_ignore_benign_drift(self, type_a):
        injector = FaultInjector(type_a.parse(), seed=19)
        branch = injector.make_branch("b", [], ["scalar_to_list", "range_drift",
                                               "new_enum_value"])
        report = ValidationSession(store=branch.build_store()).validate(
            EXPERT_SPECS["type_a"]
        )
        assert report.passed, report.render(limit=5)


class TestLoCAccounting:
    def test_spec_loc_skips_comments(self):
        assert spec_loc("// c\n$a -> int\n\n$b -> bool\n") == 2

    @pytest.mark.parametrize("name", ["type_a", "type_b", "type_c"])
    def test_azure_loc_ratio_at_least_5x(self, name):
        ratio = imperative_loc(name) / spec_loc(EXPERT_SPECS[name])
        assert ratio >= 5, f"{name}: ratio {ratio:.1f}"

    def test_opensource_loc_ratio(self):
        assert opensource_imperative_loc("openstack") / spec_loc(OPENSTACK_SPECS) >= 3
        assert opensource_imperative_loc("cloudstack") / spec_loc(CLOUDSTACK_SPECS) >= 3
