"""Inference engine (paper §4.5): heuristics, lattice properties, soundness."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConfigStore, InferenceEngine, ValidationSession
from repro.inference import InferenceOptions
from repro.inference.typelattice import element_type, infer_value_type, is_list_type, join_all, lub
from repro.repository.keys import parse_instance_key
from repro.repository.model import ConfigInstance


def store_with(class_values: dict[str, list[str]]):
    store = ConfigStore()
    for class_text, values in class_values.items():
        for index, value in enumerate(values):
            key = parse_instance_key(f"S::i{index}.{class_text}")
            store.add(ConfigInstance(key, value, "t"))
    return store


def kinds_for(result, leaf):
    return {
        c.kind for c in result.constraints if c.class_key[-1] == leaf
    }


class TestTypeLattice:
    def test_widening_chain(self):
        assert lub("int", "float") == "float"
        assert lub("int", "string") == "string"
        assert lub("ipv4", "cidr") == "string"

    def test_scalar_vs_list(self):
        # the paper's example: int mixed with list-of-int → list<int>
        assert lub("int", "list<int>") == "list<int>"
        assert lub("ipv4", "list<ipv4>") == "list<ipv4>"
        assert lub("int", "list<float>") == "list<float>"

    def test_list_vs_list(self):
        assert lub("list<int>", "list<float>") == "list<float>"
        assert lub("list<int>", "list<ipv4>") == "list<string>"

    def test_helpers(self):
        assert is_list_type("list<int>")
        assert not is_list_type("int")
        assert element_type("list<ipv4>") == "ipv4"
        assert element_type("int") == "int"

    def test_join_all_empty(self):
        assert join_all([]) == "string"

    def test_infer_value_type_skips_empties(self):
        assert infer_value_type(["5", "", "7"]) == "int"

    @given(st.sampled_from(["bool", "int", "float", "ipv4", "cidr", "string",
                            "list<int>", "list<ipv4>", "list<string>"]))
    def test_property_idempotent(self, a):
        assert lub(a, a) == a

    @given(
        st.sampled_from(["bool", "int", "float", "ipv4", "string", "list<int>"]),
        st.sampled_from(["bool", "int", "float", "ipv4", "string", "list<int>"]),
    )
    def test_property_commutative(self, a, b):
        assert lub(a, b) == lub(b, a)

    @given(
        st.sampled_from(["bool", "int", "float", "ipv4", "string", "list<int>"]),
        st.sampled_from(["bool", "int", "float", "ipv4", "string", "list<int>"]),
        st.sampled_from(["bool", "int", "float", "ipv4", "string", "list<int>"]),
    )
    def test_property_associative(self, a, b, c):
        assert lub(lub(a, b), c) == lub(a, lub(b, c))

    @given(st.lists(st.sampled_from(["5", "7", "5,7", "x", "10.0.0.1"]),
                    min_size=1, max_size=8))
    def test_property_join_order_independent(self, values):
        import itertools

        forward = infer_value_type(values)
        backward = infer_value_type(list(reversed(values)))
        assert forward == backward


class TestHeuristics:
    def test_type_inferred_for_uniform_ints(self):
        result = InferenceEngine().infer(store_with({"Timeout": ["5", "7", "9"]}))
        assert "type" in kinds_for(result, "Timeout")

    def test_string_type_not_counted(self):
        result = InferenceEngine().infer(store_with({"Owner": ["alice", "bob"]}))
        assert "type" not in kinds_for(result, "Owner")

    def test_mixed_scalar_list_widens(self):
        result = InferenceEngine().infer(
            store_with({"IPs": ["10.0.0.1", "10.0.0.1,10.0.0.2", "10.0.0.3"]})
        )
        types = [c for c in result.constraints if c.kind == "type"]
        assert types[0].type_name == "list<ipv4>"
        assert types[0].predicate_name() == "list_ip"

    def test_nonempty_requires_all_nonempty(self):
        result = InferenceEngine().infer(store_with({"A": ["x", ""], "B": ["x", "y"]}))
        assert "nonempty" not in kinds_for(result, "A")
        assert "nonempty" in kinds_for(result, "B")

    def test_range_needs_distinct_evidence(self):
        options = InferenceOptions(range_min_distinct=3)
        result = InferenceEngine(options).infer(
            store_with({"Few": ["5", "5", "7"], "Many": ["5", "7", "9"]})
        )
        assert "range" not in kinds_for(result, "Few")
        ranges = [c for c in result.constraints if c.kind == "range"]
        assert ranges[0].low == 5 and ranges[0].high == 9

    def test_enum_uses_paper_formula(self):
        # ln(n) >= distinct: 2 distinct values need n >= e^2 ≈ 7.39 → 8 samples
        values_enough = ["a", "b"] * 4      # n=8, ln(8)=2.08 >= 2 ✓
        values_short = ["a", "b"] * 3       # n=6, ln(6)=1.79 < 2 ✗
        result = InferenceEngine().infer(
            store_with({"E1": values_enough, "E2": values_short})
        )
        assert "enum" in kinds_for(result, "E1")
        assert "enum" not in kinds_for(result, "E2")

    def test_enum_capped_by_max_values(self):
        options = InferenceOptions(max_enum_values=3)
        values = [f"v{i}" for i in range(4)] * 20
        result = InferenceEngine(options).infer(store_with({"E": values}))
        assert "enum" not in kinds_for(result, "E")

    def test_enum_skipped_for_bool(self):
        result = InferenceEngine().infer(store_with({"Flag": ["true", "false"] * 10}))
        kinds = kinds_for(result, "Flag")
        assert "type" in kinds and "enum" not in kinds

    def test_consistency_threshold(self):
        options = InferenceOptions(consistency_min_instances=5)
        result = InferenceEngine(options).infer(
            store_with({"C1": ["x"] * 5, "C2": ["x"] * 4})
        )
        assert "consistency" in kinds_for(result, "C1")
        assert "consistency" not in kinds_for(result, "C2")

    def test_uniqueness_threshold(self):
        options = InferenceOptions(uniqueness_min_instances=10)
        unique_values = [f"id-{i}" for i in range(10)]
        result = InferenceEngine(options).infer(
            store_with({"U1": unique_values, "U2": unique_values[:9]})
        )
        assert "uniqueness" in kinds_for(result, "U1")
        assert "uniqueness" not in kinds_for(result, "U2")

    def test_equality_clustering_with_paper_filters(self):
        options = InferenceOptions(equality_min_instances=20,
                                   equality_min_value_length=6)
        long_values = [f"secret-{i:04d}" for i in range(20)]
        short_values = ["ab"] * 20
        result = InferenceEngine(options).infer(store_with({
            "KeyA": long_values,
            "KeyB": long_values,
            "ShortA": short_values,
            "ShortB": short_values,
            "Small": long_values[:5],
        }))
        equalities = [c for c in result.constraints if c.kind == "equality"]
        assert len(equalities) == 1
        involved = {equalities[0].class_key[-1], equalities[0].other[-1]}
        assert involved == {"KeyA", "KeyB"}


class TestResult:
    def test_counts_by_kind(self):
        result = InferenceEngine().infer(store_with({
            "T": ["1", "2", "3"],
            "F": ["true"] * 6,
        }))
        counts = result.counts_by_kind()
        assert counts["type"] >= 2
        assert counts["nonempty"] >= 2

    def test_histogram_includes_zero_bucket(self):
        result = InferenceEngine().infer(store_with({
            "Typed": ["1", "2", "3"],
            "Free": ["alpha", ""],  # nothing inferable
        }))
        histogram = result.histogram()
        assert histogram.get(0, 0) == 1
        assert sum(histogram.values()) == result.classes_analyzed

    def test_to_cpl_parses(self):
        from repro import parse

        result = InferenceEngine().infer(store_with({
            "Timeout": ["1", "2", "3"],
            "Mode": ["a", "b"] * 5,
            "Id": [f"x-{i:06d}" for i in range(12)],
        }))
        program = parse(result.to_cpl())
        assert len(program.statements) == len(result.constraints)

    def test_covers(self):
        result = InferenceEngine().infer(store_with({"T": ["1", "2", "3"]}))
        assert result.covers(("S", "T"), "type")
        assert not result.covers(("S", "T"), "uniqueness")


class TestDeterminism:
    """Inference output must not depend on store population order.

    The lifecycle manager keys spec identity off the rendered constraint,
    so two inference runs over the same data must render byte-identical
    CPL no matter how the corpus was assembled (dict ordering, shuffled
    ingest, reversed files)."""

    CORPUS = {
        "Zeta": ["1", "2", "3", "4", "5"],
        "Alpha": ["10", "20", "30", "40", "50"],
        "KeyA": [f"secret-{i:04d}" for i in range(20)],
        "KeyB": [f"secret-{i:04d}" for i in range(20)],
        "KeyC": [f"secret-{i:04d}" for i in range(20)],
        "Mode": ["on", "off"] * 6,
    }

    def _store_orders(self):
        items = list(self.CORPUS.items())
        yield store_with(dict(items))
        yield store_with(dict(reversed(items)))
        shuffled = [items[i] for i in (3, 0, 5, 2, 4, 1)]
        yield store_with(dict(shuffled))

    def test_to_cpl_is_order_independent(self):
        rendered = {InferenceEngine().infer(s).to_cpl()
                    for s in self._store_orders()}
        assert len(rendered) == 1

    def test_equality_anchor_is_order_independent(self):
        options = InferenceOptions(equality_min_instances=20,
                                   equality_min_value_length=6)
        anchors = set()
        for store in self._store_orders():
            result = InferenceEngine(options).infer(store)
            equalities = sorted(
                c.to_cpl() for c in result.constraints if c.kind == "equality"
            )
            anchors.add(tuple(equalities))
        assert len(anchors) == 1
        # the anchor is the lexicographically smallest member of the group
        only = anchors.pop()
        assert len(only) == 2  # KeyB == KeyA, KeyC == KeyA
        assert all("KeyA" in text for text in only)

    def test_summary_dicts_are_sorted(self):
        result = InferenceEngine().infer(store_with(self.CORPUS))
        assert list(result.counts_by_kind()) == sorted(result.counts_by_kind())
        assert list(result.histogram()) == sorted(result.histogram())
        assert list(result.by_class()) == sorted(result.by_class())


class TestFeedbackLoop:
    def test_drop_misfiring_removes_flagged_kind(self):
        result = InferenceEngine().infer(store_with({
            "Timeout": ["1", "2", "3", "4", "5"],
        }))
        assert "range" in kinds_for(result, "Timeout")
        # drift: a value far outside the mined range trips `range` but not
        # `type`/`nonempty` — only the misfiring kind must be dropped
        drifted = store_with({"Timeout": ["1", "2", "3", "4", "5", "5000"]})
        report = ValidationSession(store=drifted).validate(result.to_cpl())
        assert not report.passed
        refined = result.drop_misfiring(report)
        assert "range" not in kinds_for(refined, "Timeout")
        assert "type" in kinds_for(refined, "Timeout")
        assert refined.classes_analyzed == result.classes_analyzed

    def test_drop_misfiring_is_order_independent(self):
        corpus = {
            "Alpha": ["1", "2", "3", "4", "5"],
            "Beta": ["10", "20", "30", "40", "50"],
        }
        drift = {
            "Alpha": ["1", "2", "3", "4", "5", "9000"],
            "Beta": ["10", "20", "30", "40", "50", "-77"],
        }
        rendered = set()
        for flip in (False, True):
            order = dict(reversed(list(corpus.items()))) if flip else corpus
            result = InferenceEngine().infer(store_with(order))
            drifted = dict(reversed(list(drift.items()))) if flip else drift
            report = ValidationSession(
                store=store_with(drifted)
            ).validate(result.to_cpl())
            rendered.add(result.drop_misfiring(report).to_cpl())
        assert len(rendered) == 1

    def test_refine_against_converges(self):
        result = InferenceEngine().infer(store_with({
            "Timeout": ["1", "2", "3", "4", "5"],
        }))
        drifted = store_with({"Timeout": ["1", "2", "3", "4", "5", "5000"]})
        refined, rounds = result.refine_against(drifted)
        assert rounds >= 1
        report = ValidationSession(store=drifted).validate(refined.to_cpl())
        assert report.passed

    def test_refine_against_clean_store_is_a_no_op(self):
        store = store_with({"Timeout": ["1", "2", "3", "4", "5"]})
        result = InferenceEngine().infer(store)
        refined, rounds = result.refine_against(store)
        assert rounds == 0
        assert refined.to_cpl() == result.to_cpl()


class TestSoundness:
    @given(
        st.dictionaries(
            keys=st.sampled_from(["A", "B", "C", "D"]),
            values=st.lists(
                st.sampled_from([
                    "5", "42", "3.5", "true", "false", "10.0.0.1", "10.0.0.2",
                    "x", "", "a,b", "1,2,3", "https://x.io", "/var/lib",
                    "secret-000001", "secret-000002",
                ]),
                min_size=1,
                max_size=25,
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_inferred_specs_pass_on_training_data(self, class_values):
        """Black-box inference must never flag the data it was mined from."""
        store = store_with(class_values)
        result = InferenceEngine().infer(store)
        if not result.constraints:
            return
        report = ValidationSession(store=store).validate(result.to_cpl())
        assert report.passed, report.render(limit=5)
