"""Shared fixtures: paper Listing 1 data and small stores."""

from __future__ import annotations

import pytest

from repro.drivers import get_driver
from repro.repository import ConfigStore

LISTING1_XML = """
<CloudGroup Name="East1 Production">
  <Setting Key="MonitorNodeHealth" Value="True"/>
  <Setting Key="ControllerReplicas" Value="5"/>
  <Cloud Name="East1Storage1">
    <Tenant Type="A"><Setting Key="MonitorNodeHealth" Value="False"/></Tenant>
    <Tenant Type="B"/>
  </Cloud>
  <Cloud Name="East1Storage2"><Tenant Type="A"/></Cloud>
</CloudGroup>
<CloudGroup Name="SSD Cluster">
  <Setting Key="MonitorNodeHealth" Value="True"/>
  <Setting Key="ControllerReplicas" Value="3"/>
  <Cloud Name="East1Compute1">
    <Tenant Type="A"><Setting Key="ControllerReplicas" Value="5"/></Tenant>
  </Cloud>
</CloudGroup>
"""


@pytest.fixture
def listing1_instances():
    return get_driver("xml").parse(LISTING1_XML, source="listing1")


@pytest.fixture
def listing1_store(listing1_instances):
    store = ConfigStore()
    store.add_all(listing1_instances)
    return store


@pytest.fixture
def listing1_expanded_store():
    store = ConfigStore()
    store.add_all(
        get_driver("xml").parse(
            LISTING1_XML, source="listing1", expand_inheritance=True
        )
    )
    return store


def _make_store(pairs):
    """Build a store from ``[(keyvalue-notation, value), …]`` pairs."""
    from repro.repository.keys import parse_instance_key
    from repro.repository.model import ConfigInstance

    store = ConfigStore()
    for key_text, value in pairs:
        store.add(ConfigInstance(parse_instance_key(key_text), value, "test"))
    return store


@pytest.fixture
def make_store():
    """Factory fixture: build a store from (key, value) pairs."""
    return _make_store


@pytest.fixture
def cluster_store():
    """Two clusters with VLAN-style paired bounds (paper's compartment example)."""
    return _make_store(
        [
            ("Cluster::C1.StartIP", "10.0.0.1"),
            ("Cluster::C1.EndIP", "10.0.0.100"),
            ("Cluster::C1.ProxyIP", "10.0.0.50"),
            ("Cluster::C2.StartIP", "10.1.0.1"),
            ("Cluster::C2.EndIP", "10.1.0.100"),
            ("Cluster::C2.ProxyIP", "10.2.0.50"),
        ]
    )
