"""Inferred-spec lifecycle (shadow lane, promotion, re-inference).

The contracts under test:

* **state machine** — :class:`SpecRecord` transitions are validated,
  journalled with actor + reason, and deterministic under a fake clock;
* **fingerprint parity** — a scan's ``ValidationReport.fingerprint()``
  is byte-identical with the shadow lane on or off, across the serial,
  thread and process executors, even while shadow specs are violating
  or outright erroring;
* **drift-driven transitions** — clean streaks promote, drift demotes,
  repeat offenders retire, end-to-end through ``ValidationService``;
* **durability** — replaying the lifecycle journal after a simulated
  restart reproduces the same enforced set, including operator
  overrides and rotation snapshots;
* **interactions** — delta scans, the resilience breaker (an erroring
  shadow spec never touches the verdict), job verdict shadow blocks,
  and the operator HTTP endpoint + CLI.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request

import pytest

from repro import (
    InferenceEngine,
    ResiliencePolicy,
    SourceSpec,
    ValidationService,
    ValidationSession,
    observability,
)
from repro.core.report import HealthBlock
from repro.lifecycle import (
    LifecycleJournal,
    PromotionPolicy,
    ReInferencer,
    ShadowLane,
    SpecLifecycleManager,
    SpecRecord,
    SpecState,
    constraint_spec_id,
    fold,
)
from repro.predicates import register_predicate
from repro.repository.keys import parse_instance_key
from repro.repository.model import ConfigInstance
from repro.repository.store import ConfigStore
from repro.runtime import FakeClock, set_clock


@pytest.fixture(autouse=True)
def pristine():
    observability.disable()
    previous_clock = set_clock(None)
    yield
    observability.disable()
    set_clock(previous_clock)


def store_with(class_values: dict[str, list[str]]):
    store = ConfigStore()
    for class_text, values in class_values.items():
        for index, value in enumerate(values):
            key = parse_instance_key(f"S::i{index}.{class_text}")
            store.add(ConfigInstance(key, value, "t"))
    return store


def shadow_record(cpl: str, spec_id: str = "manual:S.fabric.Timeout"):
    return SpecRecord.new(spec_id, cpl, "manual", ("S", "fabric", "Timeout"))


def write(path, text):
    path.write_text(text)
    return str(path)


def rewrite(path, text):
    path.write_text(text)
    stat = os.stat(path)
    os.utime(path, ns=(stat.st_atime_ns + 1_000_000,
                       stat.st_mtime_ns + 1_000_000))


@pytest.fixture
def workspace(tmp_path):
    spec = tmp_path / "specs.cpl"
    spec.write_text("$fabric.Timeout -> int & [1, 60]\n")
    config = tmp_path / "prod.ini"
    config.write_text("[fabric]\nTimeout = 30\n")
    return tmp_path, spec, config


def make_service(spec, config, **kwargs):
    return ValidationService(
        str(spec), [SourceSpec("ini", str(config))], **kwargs
    )


BOMB = {"armed": False}


def _lifecycle_explode(value, *args):
    if BOMB["armed"]:
        raise RuntimeError("injected shadow spec fault")
    return True


register_predicate("lifecycle_explode", _lifecycle_explode)


# ---------------------------------------------------------------------------
# State machine
# ---------------------------------------------------------------------------


class TestSpecRecord:
    def test_new_records_start_in_shadow(self):
        record = shadow_record("$fabric.Timeout -> int")
        assert record.state == SpecState.SHADOW
        assert record.history == []

    def test_promote_demote_retire_arc(self):
        set_clock(FakeClock(start=100.0, tick=1.0))
        record = shadow_record("$fabric.Timeout -> int")
        assert record.apply("promote", actor="policy") == SpecState.ENFORCED
        assert record.apply("demote", actor="operator") == SpecState.SHADOW
        assert record.apply("retire", actor="policy") == SpecState.RETIRED
        actions = [entry["action"] for entry in record.history]
        assert actions == ["promote", "demote", "retire"]
        actors = [entry["actor"] for entry in record.history]
        assert actors == ["policy", "operator", "policy"]
        assert record.promotions == 1 and record.demotions == 1

    def test_invalid_transitions_raise(self):
        record = shadow_record("$fabric.Timeout -> int")
        with pytest.raises(ValueError):
            record.apply("demote")  # SHADOW cannot demote
        record.apply("promote")
        with pytest.raises(ValueError):
            record.apply("promote")  # already enforced
        record.apply("retire")
        for action in ("promote", "demote", "retire"):
            with pytest.raises(ValueError):
                record.apply(action)  # RETIRED is terminal

    def test_revise_keeps_state_and_history(self):
        record = shadow_record("$fabric.Timeout -> int & [1, 10]")
        record.apply("promote")
        record.clean_streak = 4
        record.revise("$fabric.Timeout -> int & [1, 60]")
        assert record.state == SpecState.ENFORCED
        assert record.revisions == 1
        assert record.clean_streak == 0  # new parameters, new evidence
        assert [e["action"] for e in record.history] == ["promote"]

    def test_dict_round_trip(self):
        record = shadow_record("$fabric.Timeout -> int")
        record.apply("promote", actor="operator", reason="looks good")
        clone = SpecRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert clone.to_dict() == record.to_dict()
        assert clone.class_key == record.class_key


class TestConstraintSpecId:
    def test_identity_excludes_parameters(self):
        store = store_with({"web.Timeout": ["1", "2", "3", "4", "5"]})
        result = InferenceEngine().infer(store)
        ids = {constraint_spec_id(c) for c in result.constraints}
        assert "range:S.web.Timeout" in ids
        wider = InferenceEngine().infer(
            store_with({"web.Timeout": ["1", "2", "3", "4", "5", "50"]})
        )
        assert {constraint_spec_id(c) for c in wider.constraints} == ids


# ---------------------------------------------------------------------------
# Promotion policy (deterministic under FakeClock)
# ---------------------------------------------------------------------------


class TestPromotionPolicy:
    def test_clean_streak_promotes(self):
        policy = PromotionPolicy(promote_after=3)
        record = shadow_record("$fabric.Timeout -> int")
        actions = [policy.observe(record, 0, 100) for _ in range(3)]
        assert actions == [None, None, "promote"]

    def test_zero_instances_is_not_evidence(self):
        policy = PromotionPolicy(promote_after=1)
        record = shadow_record("$fabric.Timeout -> int")
        assert policy.observe(record, 0, 0) is None
        assert record.scans_observed == 0
        assert record.clean_streak == 0

    def test_drift_demotes_enforced(self):
        policy = PromotionPolicy(demote_drift=0.05)
        record = shadow_record("$fabric.Timeout -> int")
        record.apply("promote")
        assert policy.observe(record, 10, 100) == "demote"  # drift 0.10

    def test_repeat_offender_retires(self):
        policy = PromotionPolicy(promote_after=2, demote_drift=0.05,
                                 retire_after=1)
        record = shadow_record("$fabric.Timeout -> int")
        record.apply("promote")
        record.apply("demote", reason="first strike")
        record.apply("promote")
        # demotions == retire_after: the next drift retires outright
        assert policy.observe(record, 10, 100) == "retire"

    def test_deterministic_sequence(self):
        set_clock(FakeClock(start=50.0, tick=1.0))
        traces = []
        for _ in range(2):
            policy = PromotionPolicy(promote_after=2, demote_drift=0.1)
            record = shadow_record("$fabric.Timeout -> int")
            trace = []
            for violations in (0, 0, 20, 0, 0):
                action = policy.observe(record, violations, 100)
                if action:
                    record.apply(action, actor="policy")
                trace.append((action, record.state, record.clean_streak,
                              record.dirty_streak))
            traces.append(trace)
        assert traces[0] == traces[1]


# ---------------------------------------------------------------------------
# Shadow lane
# ---------------------------------------------------------------------------


class TestShadowLane:
    def test_compose_is_sorted_and_mapped(self):
        records = [
            shadow_record("$b.X -> int", spec_id="type:S.b.X"),
            shadow_record("$a.Y -> int", spec_id="type:S.a.Y"),
        ]
        text, line_map = ShadowLane.compose(records)
        lines = text.splitlines()
        assert lines[0].startswith("//")
        assert lines[1] == "$a.Y -> int"   # sorted by id, not input order
        assert line_map == {2: "type:S.a.Y", 3: "type:S.b.X"}

    def test_per_spec_attribution(self):
        store = store_with({
            "web.Timeout": ["30"], "web.Mode": ["fast"],
        })
        records = [
            shadow_record("$web.Timeout -> int & [1, 10]",
                          spec_id="range:S.web.Timeout"),
            shadow_record("$web.Mode -> nonempty",
                          spec_id="nonempty:S.web.Mode"),
        ]
        lane = ShadowLane().evaluate(records, store)
        assert lane.error == ""
        assert lane.per_spec["range:S.web.Timeout"]["violations"] == 1
        assert lane.per_spec["nonempty:S.web.Mode"]["violations"] == 0
        assert lane.violations == 1

    def test_empty_lane_is_a_no_op(self):
        lane = ShadowLane().evaluate([], store_with({"a.B": ["1"]}))
        assert lane.report is None and lane.specs == 0

    def test_erroring_candidate_is_quarantined_in_lane(self):
        store = store_with({"fabric.Timeout": ["30"]})
        records = [shadow_record("$fabric.Timeout -> lifecycle_explode",
                                 spec_id="manual:S.fabric.Timeout")]
        shadow = ShadowLane(breaker_threshold=2)
        BOMB["armed"] = True
        try:
            for _ in range(2):
                lane = shadow.evaluate(records, store)
                assert lane.error == ""  # captured, not raised
                assert lane.report.health.spec_errors
            tripped = shadow.evaluate(records, store)
            assert tripped.report.health.quarantined_specs
            # a quarantined candidate produces no promotion evidence
            assert tripped.per_spec["manual:S.fabric.Timeout"]["instances"] == 0
        finally:
            BOMB["armed"] = False


# ---------------------------------------------------------------------------
# Fingerprint parity: shadow on == shadow off, byte for byte
# ---------------------------------------------------------------------------


class TestFingerprintParity:
    @pytest.mark.parametrize("executor", [None, "thread", "process"])
    def test_violating_shadow_spec_never_perturbs_fingerprint(
        self, workspace, executor
    ):
        __, spec, config = workspace
        plain = make_service(spec, config, executor=executor)
        baseline = plain.run_once().report.fingerprint()

        manager = SpecLifecycleManager(policy=PromotionPolicy())
        # a shadow spec that VIOLATES on this corpus (Timeout=30 ∉ [1,10])
        record = shadow_record("$fabric.Timeout -> int & [1, 10]",
                               spec_id="range:S.fabric.Timeout")
        manager.records[record.id] = record
        shadowed = make_service(spec, config, executor=executor,
                                lifecycle=manager)
        result = shadowed.run_once()
        assert result.passed  # the shadow violation is not in the verdict
        assert result.shadow["shadow"]["violations"] == 1
        assert result.report.fingerprint() == baseline

    def test_parity_holds_while_shadow_spec_errors(self, workspace):
        __, spec, config = workspace
        plain = make_service(spec, config)
        baseline = plain.run_once().report.fingerprint()

        manager = SpecLifecycleManager()
        record = shadow_record("$fabric.Timeout -> lifecycle_explode")
        manager.records[record.id] = record
        shadowed = make_service(spec, config, lifecycle=manager)
        BOMB["armed"] = True
        try:
            result = shadowed.run_once()
        finally:
            BOMB["armed"] = False
        assert result.passed
        assert result.report.fingerprint() == baseline

    def test_enforced_specs_do_change_the_verdict(self, workspace):
        """The counterpoint: promotion is exactly the moment a spec gains
        verdict power."""
        __, spec, config = workspace
        manager = SpecLifecycleManager()
        record = shadow_record("$fabric.Timeout -> int & [1, 10]",
                               spec_id="range:S.fabric.Timeout")
        manager.records[record.id] = record
        manager.promote(record.id, actor="operator", reason="test")
        service = make_service(spec, config, lifecycle=manager)
        result = service.run_once()
        assert not result.passed
        assert any("fabric.Timeout" in v.key for v in result.report.violations)


# ---------------------------------------------------------------------------
# Drift-driven transitions through the service
# ---------------------------------------------------------------------------


class TestServiceLifecycle:
    def test_clean_shadow_spec_promotes_then_drift_demotes(self, workspace):
        __, spec, config = workspace
        manager = SpecLifecycleManager(
            policy=PromotionPolicy(promote_after=2, demote_drift=0.05)
        )
        record = shadow_record("$fabric.Timeout -> int & [1, 60]",
                               spec_id="range:S.fabric.Timeout")
        manager.records[record.id] = record
        service = make_service(spec, config, lifecycle=manager)

        service.run_once()
        assert manager.records[record.id].state == SpecState.SHADOW
        result = service.run_once()
        assert manager.records[record.id].state == SpecState.ENFORCED
        assert {"id": record.id, "action": "promote"} in \
            result.shadow["transitions"]

        # drift: the config now violates the enforced spec → demote
        rewrite(config, "[fabric]\nTimeout = 55\n")
        service.run_once()  # still clean (55 ∈ [1, 60])
        assert manager.records[record.id].state == SpecState.ENFORCED
        rewrite(config, "[fabric]\nTimeout = 4000\n")
        drifted = service.run_once()
        assert manager.records[record.id].state == SpecState.SHADOW
        assert {"id": record.id, "action": "demote"} in \
            drifted.shadow["transitions"]
        # ... and the hand-written spec also failed, independently
        assert not drifted.passed

    def test_degraded_scan_freezes_the_ledger(self, workspace):
        __, spec, config = workspace
        manager = SpecLifecycleManager(
            policy=PromotionPolicy(promote_after=1)
        )
        record = shadow_record("$fabric.Timeout -> lifecycle_explode")
        manager.records[record.id] = record
        service = make_service(
            spec, config,
            resilience=ResiliencePolicy(quarantine_threshold=3),
            lifecycle=manager,
        )
        # break the *source* so the scan is unhealthy: no drift evidence
        # (a FAILED scan skips the lanes outright; a DEGRADED one runs
        # them with the ledger frozen — either way nothing is observed)
        rewrite(config, "[[[not ini")
        result = service.run_once()
        assert result.health.status != HealthBlock.OK
        assert result.shadow.get("observed") is not True
        assert manager.records[record.id].scans_observed == 0

    def test_stats_surface_the_lifecycle_block(self, workspace):
        __, spec, config = workspace
        manager = SpecLifecycleManager()
        record = shadow_record("$fabric.Timeout -> int")
        manager.records[record.id] = record
        service = make_service(spec, config, lifecycle=manager)
        service.run_once()
        block = service.stats()["lifecycle"]
        assert block["specs"]["shadow"] == 1
        assert block["scan_seq"] == 1
        assert block["policy"]["promote_after"] >= 1

    def test_shadow_metrics_exported(self, workspace):
        __, spec, config = workspace
        observability.enable()
        manager = SpecLifecycleManager()
        record = shadow_record("$fabric.Timeout -> int & [1, 10]",
                               spec_id="range:S.fabric.Timeout")
        manager.records[record.id] = record
        service = make_service(spec, config, lifecycle=manager)
        service.run_once()
        rendered = observability.get_metrics().to_prometheus()
        assert "confvalley_shadow_scans_total" in rendered
        assert "confvalley_shadow_violations_total" in rendered
        assert 'confvalley_lifecycle_specs{state="shadow"} 1' in rendered


# ---------------------------------------------------------------------------
# Interaction: delta scans
# ---------------------------------------------------------------------------


class TestDeltaInteraction:
    def test_shadow_rides_along_with_delta_scans(self, workspace):
        __, spec, config = workspace
        plain = make_service(spec, config, delta=True)
        fingerprints = [plain.run_once().report.fingerprint()]
        rewrite(config, "[fabric]\nTimeout = 31\n")
        fingerprints.append(plain.run_once().report.fingerprint())

        manager = SpecLifecycleManager()
        record = shadow_record("$fabric.Timeout -> int & [1, 10]",
                               spec_id="range:S.fabric.Timeout")
        manager.records[record.id] = record
        config2 = config.parent / "prod2.ini"
        write(config2, "[fabric]\nTimeout = 30\n")
        shadowed = ValidationService(
            str(spec), [SourceSpec("ini", str(config2))],
            delta=True, lifecycle=manager,
        )
        first = shadowed.run_once()
        assert first.shadow["shadow"]["violations"] == 1
        assert first.report.fingerprint() == fingerprints[0]
        rewrite(config2, "[fabric]\nTimeout = 31\n")
        second = shadowed.run_once()
        assert second.delta is not None  # the scan really was incremental
        assert second.shadow is not None
        assert second.report.fingerprint() == fingerprints[1]

    def test_drift_ledger_advances_across_delta_scans(self, workspace):
        __, spec, config = workspace
        manager = SpecLifecycleManager(
            policy=PromotionPolicy(promote_after=2)
        )
        record = shadow_record("$fabric.Timeout -> int & [1, 60]",
                               spec_id="range:S.fabric.Timeout")
        manager.records[record.id] = record
        service = make_service(spec, config, delta=True, lifecycle=manager)
        service.run_once()
        rewrite(config, "[fabric]\nTimeout = 31\n")
        service.run_once()
        assert manager.records[record.id].state == SpecState.ENFORCED


# ---------------------------------------------------------------------------
# Interaction: resilience breaker
# ---------------------------------------------------------------------------


class TestResilienceInteraction:
    def test_tripped_shadow_breaker_never_touches_the_verdict(self, workspace):
        __, spec, config = workspace
        plain = make_service(
            spec, config, resilience=ResiliencePolicy()
        )
        baseline = plain.run_once().report.fingerprint()

        manager = SpecLifecycleManager(
            shadow=ShadowLane(breaker_threshold=2),
            policy=PromotionPolicy(promote_after=1),
        )
        record = shadow_record("$fabric.Timeout -> lifecycle_explode")
        manager.records[record.id] = record
        service = make_service(
            spec, config, resilience=ResiliencePolicy(), lifecycle=manager
        )
        BOMB["armed"] = True
        try:
            for scan in range(4):  # errors, then a tripped lane breaker
                result = service.run_once()
                assert result.passed, f"scan {scan}"
                assert result.health.status == HealthBlock.OK
                assert result.report.fingerprint() == baseline
        finally:
            BOMB["armed"] = False
        # zero-instance quarantined scans are not promotion evidence
        assert manager.records[record.id].state == SpecState.SHADOW
        assert manager.records[record.id].scans_observed == 0


# ---------------------------------------------------------------------------
# Durability: journal replay across a simulated restart
# ---------------------------------------------------------------------------


class TestJournalRestart:
    def _drive(self, tmp_path, journal_path, rotate_after=2048):
        set_clock(FakeClock(start=1000.0, tick=1.0))
        manager = SpecLifecycleManager(
            policy=PromotionPolicy(promote_after=2, demote_drift=0.05),
            journal=LifecycleJournal(str(journal_path),
                                     rotate_after=rotate_after),
        )
        corpus = store_with({"web.Timeout": ["1", "2", "3", "4", "5"]})
        manager.ingest(InferenceEngine().infer(corpus))
        clean = corpus
        drifted = store_with({
            "web.Timeout": ["1", "2", "3", "4", "5", "5000"],
        })
        for store in (clean, clean, clean, drifted, drifted):
            manager.run_scan(store)
        # operator override rides the same journal
        survivor = next(
            r for r in manager.records.values()
            if r.state == SpecState.SHADOW
        )
        manager.promote(survivor.id, actor="operator", reason="manual call")
        return manager

    def test_replay_reproduces_the_enforced_set(self, tmp_path):
        journal_path = tmp_path / "lifecycle.jsonl"
        manager = self._drive(tmp_path, journal_path)
        before = {
            spec_id: record.to_dict()
            for spec_id, record in manager.records.items()
        }
        scan_seq = manager.scan_seq
        manager.close()

        reborn = SpecLifecycleManager(
            policy=PromotionPolicy(promote_after=2, demote_drift=0.05),
            journal=LifecycleJournal(str(journal_path)),
        )
        after = {
            spec_id: record.to_dict()
            for spec_id, record in reborn.records.items()
        }
        assert after == before
        assert reborn.scan_seq == scan_seq
        enforced = [r["id"] for r in reborn.records_payload(SpecState.ENFORCED)]
        assert enforced == [
            r["id"] for r in manager.records_payload(SpecState.ENFORCED)
        ]
        reborn.close()

    def test_rotation_snapshot_preserves_state(self, tmp_path):
        journal_path = tmp_path / "rotating.jsonl"
        manager = self._drive(tmp_path, journal_path, rotate_after=3)
        before = {s: r.to_dict() for s, r in manager.records.items()}
        manager.close()
        events = LifecycleJournal(str(journal_path)).replay()
        assert events[0]["event"] == "snapshot"  # rotation really happened
        reborn = SpecLifecycleManager(
            policy=PromotionPolicy(promote_after=2, demote_drift=0.05),
            journal=LifecycleJournal(str(journal_path)),
        )
        assert {s: r.to_dict() for s, r in reborn.records.items()} == before
        reborn.close()

    def test_fold_ignores_actions_and_replays_transitions(self):
        """fold() must not re-run policy decisions: it replays the journalled
        transition events so operator overrides reproduce exactly."""
        set_clock(FakeClock(start=10.0, tick=1.0))
        record = shadow_record("$fabric.Timeout -> int")
        events = [
            {"event": "register", "record": record.to_dict()},
            {"event": "transition", "id": record.id, "action": "promote",
             "actor": "operator", "reason": "", "at": 11.0},
        ]
        records, seq = fold(events, PromotionPolicy(promote_after=99))
        assert records[record.id].state == SpecState.ENFORCED
        assert seq == 0


# ---------------------------------------------------------------------------
# Re-inference
# ---------------------------------------------------------------------------


class TestReInferencer:
    def test_due_on_first_sighting_and_growth(self):
        reinferencer = ReInferencer(growth_threshold=0.5)
        small = store_with({"web.Timeout": ["1", "2", "3", "4"]})
        assert reinferencer.due(small)
        reinferencer.run(small)
        assert not reinferencer.due(small)  # no growth since the run
        grown = store_with({
            "web.Timeout": ["1", "2", "3", "4"],
            "web.Mode": ["a", "b", "c", "d"],
        })
        assert reinferencer.due(grown)  # 100% growth >= 50%

    def test_adaptive_mode_converges_early(self):
        # a large homogeneous corpus: the 25% prefix already yields the
        # same constraint signature as 50%, so later rounds are skipped
        values = [str(n % 5 + 1) for n in range(200)]
        store = store_with({"web.Timeout": values})
        reinferencer = ReInferencer(mode="adaptive")
        result, info = reinferencer.run(store)
        assert info["converged"]
        assert info["rounds"] < len(reinferencer.schedule)
        assert reinferencer.rounds_saved > 0
        assert result.constraints

    def test_full_mode_always_runs_everything(self):
        store = store_with({"web.Timeout": ["1", "2", "3", "4", "5"]})
        reinferencer = ReInferencer(mode="full")
        result, info = reinferencer.run(store)
        assert info["rounds"] == 1
        assert info["converged"] is False
        assert result.instances_analyzed == 5

    def test_revision_keeps_lifecycle_history(self):
        manager = SpecLifecycleManager(policy=PromotionPolicy())
        corpus = store_with({"web.Timeout": ["1", "2", "3", "4", "5"]})
        manager.ingest(InferenceEngine().infer(corpus))
        spec_id = "range:S.web.Timeout"
        manager.promote(spec_id, actor="operator")
        # the corpus grows; the range widens; identity is preserved
        wider = store_with({
            "web.Timeout": ["1", "2", "3", "4", "5", "50"],
        })
        outcome = manager.ingest(InferenceEngine().infer(wider))
        assert outcome["revised"] >= 1
        record = manager.records[spec_id]
        assert record.state == SpecState.ENFORCED  # state survived
        assert record.revisions == 1
        assert [e["action"] for e in record.history] == ["promote"]

    def test_service_triggers_reinference_on_growth(self, workspace):
        __, spec, config = workspace
        manager = SpecLifecycleManager(
            reinferencer=ReInferencer(growth_threshold=0.25),
        )
        service = make_service(spec, config, lifecycle=manager)
        first = service.run_once()
        assert first.shadow["reinference"] is not None
        assert manager.records  # inferred candidates registered in SHADOW
        assert all(r.state == SpecState.SHADOW
                   for r in manager.records.values())


# ---------------------------------------------------------------------------
# Jobs: the advisory shadow block on verdicts
# ---------------------------------------------------------------------------


class TestJobShadowBlock:
    def test_job_verdict_carries_advisory_shadow_block(self, workspace):
        from repro.jobs import JobService

        __, spec, config = workspace
        manager = SpecLifecycleManager()
        record = shadow_record("$fabric.Timeout -> int & [1, 10]",
                               spec_id="range:S.fabric.Timeout")
        manager.records[record.id] = record
        service = make_service(spec, config, lifecycle=manager)
        jobs = JobService(workers=1)
        service.attach_jobs(jobs)
        try:
            job, __created = jobs.submit(
                spec="$fabric.Timeout -> int & [1, 60]\n",
                sources=[{"format": "ini",
                          "text": "[fabric]\nTimeout = 30\n",
                          "source": "inline.ini"}],
            )
            done = jobs.wait(job.id, timeout=30)
            assert done.result["verdict"] == "admit"
            shadow = done.result["shadow"]
            assert shadow["violations"] == 1  # 30 ∉ [1, 10], advisory only
            assert shadow["clean"] is False
        finally:
            jobs.close()

    def test_shadow_never_changes_job_fingerprint(self, workspace):
        from repro.jobs import JobService

        __, spec, config = workspace
        spec_text = "$fabric.Timeout -> int & [1, 60]\n"
        sources = [{"format": "ini", "text": "[fabric]\nTimeout = 30\n",
                    "source": "inline.ini"}]

        plain_jobs = JobService(workers=1)
        try:
            job, __ = plain_jobs.submit(spec=spec_text, sources=sources)
            baseline = plain_jobs.wait(job.id, timeout=30).result["fingerprint"]
        finally:
            plain_jobs.close()

        manager = SpecLifecycleManager()
        record = shadow_record("$fabric.Timeout -> int & [1, 10]",
                               spec_id="range:S.fabric.Timeout")
        manager.records[record.id] = record
        service = make_service(spec, config, lifecycle=manager)
        jobs = JobService(workers=1)
        service.attach_jobs(jobs)
        try:
            job, __ = jobs.submit(spec=spec_text, sources=sources)
            done = jobs.wait(job.id, timeout=30)
            assert done.result["fingerprint"] == baseline
            assert "shadow" in done.result
        finally:
            jobs.close()


# ---------------------------------------------------------------------------
# Operator endpoint + CLI
# ---------------------------------------------------------------------------


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


def _post(url):
    request = urllib.request.Request(url, data=b"", method="POST")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


class TestSpecsEndpoint:
    @pytest.fixture
    def live(self, workspace):
        __, spec, config = workspace
        manager = SpecLifecycleManager()
        record = shadow_record("$fabric.Timeout -> int & [1, 60]",
                               spec_id="range:S.fabric.Timeout")
        manager.records[record.id] = record
        service = make_service(spec, config, lifecycle=manager)
        service.run_once()
        server = service.start_http()
        yield server.url, manager
        service.stop_http()

    def test_list_and_filter(self, live):
        url, __ = live
        status, body = _get(url + "/specs")
        assert status == 200
        assert [r["id"] for r in body["specs"]] == ["range:S.fabric.Timeout"]
        assert body["stats"]["specs"]["shadow"] == 1
        status, body = _get(url + "/specs?state=enforced")
        assert status == 200 and body["specs"] == []
        status, __body = _get(url + "/specs?state=bogus")
        assert status == 400

    def test_get_one_spec(self, live):
        url, __ = live
        status, body = _get(url + "/specs/range:S.fabric.Timeout")
        assert status == 200
        assert body["state"] == SpecState.SHADOW
        status, __body = _get(url + "/specs/nope:missing")
        assert status == 404

    def test_promote_demote_and_conflict(self, live):
        url, manager = live
        status, body = _post(url + "/specs/range:S.fabric.Timeout/promote")
        assert status == 200 and body["state"] == SpecState.ENFORCED
        assert manager.records["range:S.fabric.Timeout"].state == \
            SpecState.ENFORCED
        # double promote: 409, not a crash
        status, __body = _post(url + "/specs/range:S.fabric.Timeout/promote")
        assert status == 409
        status, body = _post(url + "/specs/range:S.fabric.Timeout/demote")
        assert status == 200 and body["state"] == SpecState.SHADOW
        # the operator actions are in the journal-visible history
        history = manager.history("range:S.fabric.Timeout")
        assert [e["actor"] for e in history] == ["operator", "operator"]
        status, __body = _post(url + "/specs/missing:spec/promote")
        assert status == 404

    def test_disabled_without_lifecycle(self, workspace):
        __, spec, config = workspace
        service = make_service(spec, config)
        server = service.start_http()
        try:
            status, __body = _get(server.url + "/specs")
            assert status == 404
        finally:
            service.stop_http()


class TestSpecsCli:
    @pytest.fixture
    def live(self, workspace):
        __, spec, config = workspace
        manager = SpecLifecycleManager()
        record = shadow_record("$fabric.Timeout -> int & [1, 60]",
                               spec_id="range:S.fabric.Timeout")
        manager.records[record.id] = record
        service = make_service(spec, config, lifecycle=manager)
        service.run_once()
        server = service.start_http()
        yield server.url
        service.stop_http()

    def test_list_promote_history(self, live, capsys):
        from repro.console import main

        assert main(["specs", live, "list"]) == 0
        out = capsys.readouterr().out
        assert "range:S.fabric.Timeout" in out and "SHADOW" in out

        assert main(["specs", live, "promote",
                     "range:S.fabric.Timeout"]) == 0
        assert "ENFORCED" in capsys.readouterr().out

        assert main(["specs", live, "history",
                     "range:S.fabric.Timeout"]) == 0
        out = capsys.readouterr().out
        assert "promote" in out and "operator" in out

    def test_json_output_and_errors(self, live, capsys):
        from repro.console import main

        assert main(["specs", live, "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["specs"][0]["id"] == "range:S.fabric.Timeout"

        assert main(["specs", live, "promote", "missing:spec"]) == 1
        assert main(["specs", "http://127.0.0.1:9", "list"]) == 1

    def test_action_requires_spec_id(self, live):
        from repro.console import main

        with pytest.raises(SystemExit):
            main(["specs", live, "promote"])
