"""Newer framework surface: custom error messages (§4.4), effective `get`,
JSON reports, and the inference feedback loop (§6.3)."""

from __future__ import annotations

import json

import pytest

from repro import InferenceEngine, ValidationSession
from repro.cpl import ast, parse


class TestCustomErrorMessages:
    def test_parse_custom_message(self):
        program = parse("$K -> int !! 'Timeout must be a number'")
        spec = program.statements[0]
        assert isinstance(spec, ast.SpecStatement)
        assert spec.custom_message == "Timeout must be a number"

    def test_override_applied(self, make_store):
        session = ValidationSession(store=make_store([("A.K", "x")]))
        report = session.validate("$K -> int !! 'K must be numeric'")
        assert report.violations[0].message == "K must be numeric"

    def test_placeholders_substituted(self, make_store):
        session = ValidationSession(store=make_store([("A.K", "x")]))
        report = session.validate("$K -> int !! '{key} got {value}'")
        assert report.violations[0].message == "A.K got x"

    def test_default_message_when_absent(self, make_store):
        session = ValidationSession(store=make_store([("A.K", "x")]))
        report = session.validate("$K -> int")
        assert "not a valid int" in report.violations[0].message

    def test_quantifier_violation_uses_override(self, make_store):
        session = ValidationSession(store=make_store([("A::1.K", "x"), ("A::2.K", "y")]))
        report = session.validate("$K -> exists int !! 'no numeric K anywhere'")
        assert report.violations[0].message == "no numeric K anywhere"

    def test_custom_message_specs_not_merged(self, make_store):
        # merging would misattribute one spec's message to another's failure
        session = ValidationSession(store=make_store([("A.K", "x")]))
        report = session.validate(
            "$K -> int !! 'numeric please'\n$K -> nonempty !! 'fill me in'"
        )
        assert {v.message for v in report.violations} == {"numeric please"}

    def test_multiline_spec_with_message(self, make_store):
        session = ValidationSession(store=make_store([("A.K", "99")]))
        report = session.validate("$K -> int & [1, 10] !!\n'K out of band'")
        assert report.violations[0].message == "K out of band"


class TestGetCommand:
    def test_get_populates_notes(self, make_store):
        session = ValidationSession(store=make_store([("A.K", "v1"), ("B.K", "v2")]))
        report = session.validate("get $K")
        assert sorted(report.notes) == ["A.K = 'v1'", "B.K = 'v2'"]

    def test_get_rendered_in_report(self, make_store):
        session = ValidationSession(store=make_store([("A.K", "v1")]))
        text = session.validate("get $K").render()
        assert "A.K = 'v1'" in text

    def test_get_inside_namespace(self, make_store):
        session = ValidationSession(store=make_store([("r.s.K", "v")]))
        report = session.validate("namespace r.s {\nget $K\n}")
        assert report.notes == ["r.s.K = 'v'"]


class TestJSONReports:
    def test_round_trip(self, make_store):
        session = ValidationSession(store=make_store([("A.K", "x")]))
        report = session.validate("$K -> int")
        data = json.loads(report.to_json())
        assert data["passed"] is False
        assert data["violations"][0]["key"] == "A.K"
        assert data["violations"][0]["constraint"] == "int"
        assert data["specs_evaluated"] == 1

    def test_pass_shape(self, make_store):
        session = ValidationSession(store=make_store([("A.K", "5")]))
        data = session.validate("$K -> int").to_dict()
        assert data["passed"] is True
        assert data["violations"] == []

    def test_cli_json_format(self, tmp_path, capsys):
        from repro.console import main

        (tmp_path / "c.ini").write_text("[s]\nK = oops\n")
        (tmp_path / "spec.cpl").write_text("$s.K -> int\n")
        code = main([
            "validate", str(tmp_path / "spec.cpl"),
            "--source", f"ini:{tmp_path}/c.ini", "--format", "json",
        ])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["passed"] is False


class TestProfiling:
    def test_spec_timings_collected(self, make_store):
        session = ValidationSession(
            store=make_store([("A.K", "5"), ("A.L", "true")]), profile=True
        )
        report = session.validate("$K -> int\n$L -> bool")
        assert report.spec_timings
        assert all(seconds >= 0 for seconds in report.spec_timings.values())

    def test_slowest_specs_ranked(self, make_store):
        session = ValidationSession(
            store=make_store([(f"A::{i}.K", str(i)) for i in range(50)]),
            profile=True,
        )
        report = session.validate("$K -> int & unique\n$NoSuch -> bool")
        slowest = report.slowest_specs(1)
        assert len(slowest) == 1
        seconds, line, text = slowest[0]
        assert "unique" in text or "NoSuch" in text

    def test_profiling_off_by_default(self, make_store):
        session = ValidationSession(store=make_store([("A.K", "5")]))
        report = session.validate("$K -> int")
        assert report.spec_timings == {}


class TestListing2Fidelity:
    def test_paper_listing2_is_a_one_liner(self, listing1_expanded_store):
        """Paper Listing 2's nested-loop boolean check over every
        CloudGroup/Cloud/Tenant is one CPL line."""
        session = ValidationSession(store=listing1_expanded_store)
        report = session.validate("$Tenant.MonitorNodeHealth -> bool")
        assert report.passed
        assert report.instances_checked == 4  # all four tenant scopes


class TestInferenceFeedbackLoop:
    def build(self, make_store, port):
        pairs = [(f"A::{i}.Port", str(port + i % 3)) for i in range(30)]
        pairs += [(f"A::{i}.Mode", "fast" if i % 2 else "safe") for i in range(30)]
        return make_store(pairs)

    def test_one_round_drops_first_failing_constraint(self, make_store):
        good = self.build(make_store, 8000)
        result = InferenceEngine().infer(good)
        # ports legitimately moved; conjunctions short-circuit, so one round
        # only reveals (and drops) the range constraint
        drifted = self.build(make_store, 9000)
        report = ValidationSession(store=drifted).validate(result.to_cpl())
        assert not report.passed
        refined = result.drop_misfiring(report)
        assert len(refined.constraints) < len(result.constraints)

    def test_refine_against_reaches_fixpoint(self, make_store):
        good = self.build(make_store, 8000)
        result = InferenceEngine().infer(good)
        drifted = self.build(make_store, 9000)
        refined, rounds = result.refine_against(drifted)
        assert 1 <= rounds <= 5
        assert len(refined.constraints) < len(result.constraints)
        assert ValidationSession(store=drifted).validate(refined.to_cpl()).passed
        # untouched Mode constraints survive the refinement
        assert any(c.class_key[-1] == "Mode" for c in refined.constraints)

    def test_refined_specs_still_catch_real_errors(self, make_store):
        good = self.build(make_store, 8000)
        result = InferenceEngine().infer(good)
        drifted = self.build(make_store, 9000)
        refined, __ = result.refine_against(drifted)

        broken_pairs = [(f"A::{i}.Port", str(9000 + i % 3)) for i in range(30)]
        broken_pairs += [
            (f"A::{i}.Mode", "fsat" if i == 0 else ("fast" if i % 2 else "safe"))
            for i in range(30)
        ]
        broken = make_store(broken_pairs)
        report3 = ValidationSession(store=broken).validate(refined.to_cpl())
        assert [v.value for v in report3.violations] == ["fsat"]

    def test_drop_is_idempotent_on_clean_report(self, make_store):
        good = self.build(make_store, 8000)
        result = InferenceEngine().infer(good)
        clean_report = ValidationSession(store=good).validate(result.to_cpl())
        refined = result.drop_misfiring(clean_report)
        assert len(refined.constraints) == len(result.constraints)
