"""Malformed-input matrix for every file-format driver (ISSUE 2, satellite 3).

Whatever bytes land in a watched configuration file — a write truncated
mid-flight, the wrong encoding, an empty file, binary garbage — the driver
layer must come back with either a parsed instance list or a structured
:class:`~repro.errors.DriverError` carrying the source path and format.
Never a raw ``UnicodeDecodeError``, never a parser-internal crash: the
continuous service quarantines on DriverError, anything else would take
the whole scan down.
"""

from __future__ import annotations

import pytest

from repro.drivers import get_driver
from repro.errors import DriverError

#: all the file-based drivers (rest is endpoint-based, no byte input)
FILE_DRIVERS = ("xml", "ini", "json", "yaml", "csv", "keyvalue")

#: well-formed sample per format, used to derive the truncated case
VALID = {
    "xml": (
        '<Configuration><Fabric><Setting Key="RecoveryAttempts" Value="3"/>'
        '<Setting Key="Timeout" Value="30"/></Fabric></Configuration>'
    ),
    "ini": "[fabric]\nRecoveryAttempts = 3\nTimeout = 30\n",
    "json": '{"fabric": {"RecoveryAttempts": 3, "Timeout": 30}}',
    "yaml": "fabric:\n  RecoveryAttempts: 3\n  Timeout: 30\n",
    "csv": "Name,Attempts,Timeout\nfabric,3,30\nstore,5,60\n",
    "keyvalue": "Fabric.RecoveryAttempts = 3\nFabric.Timeout = 30\n",
}

#: known-bad text per format — must raise, not crash and not succeed
MALFORMED = {
    "xml": "<Configuration><Fabric></Configuration>",
    "ini": "no section header, no equals sign, just prose\n",
    "json": '{"fabric": {"RecoveryAttempts": ',
    "yaml": "fabric: [unclosed, sequence\n  bad: indent: everywhere\n",
    "csv": 'Name,Attempts\n"unterminated quote,3\n',
    "keyvalue": "Cluster::.Node = broken qualifier\n",
}

BAD_BYTES = {
    "wrong-encoding": "[fabric]\nTimeout = 30\n".encode("utf-16"),
    "binary-garbage": b"\xff\xfe\x00\x9d" + bytes(range(256)),
}


def parse_or_error(driver, raw: bytes, source: str):
    """The only two acceptable outcomes: a list, or a DriverError."""
    try:
        return get_driver(driver).parse_bytes(raw, source=source), None
    except DriverError as exc:
        return None, exc


@pytest.mark.parametrize("driver", FILE_DRIVERS)
class TestMalformedInputMatrix:
    def test_valid_sample_parses(self, driver):
        instances, error = parse_or_error(
            driver, VALID[driver].encode("utf-8"), f"ok.{driver}"
        )
        assert error is None
        assert len(instances) >= 2

    def test_truncated(self, driver):
        # cut the valid sample mid-stream at several points: every outcome
        # must be a clean parse (some prefixes are legal) or a DriverError
        text = VALID[driver]
        for cut in (1, len(text) // 3, len(text) // 2, len(text) - 2):
            instances, error = parse_or_error(
                driver, text[:cut].encode("utf-8"), f"truncated.{driver}"
            )
            assert instances is not None or error is not None
            if error is not None:
                assert error.path == f"truncated.{driver}"
                assert error.format_name == driver

    def test_malformed_text(self, driver):
        instances, error = parse_or_error(
            driver, MALFORMED[driver].encode("utf-8"), f"bad.{driver}"
        )
        assert error is not None, f"{driver} accepted {MALFORMED[driver]!r}"
        assert error.path == f"bad.{driver}"
        assert error.format_name == driver

    def test_wrong_encoding(self, driver):
        # UTF-16 bytes are not valid UTF-8: every driver must surface the
        # decode failure as a DriverError with the byte offset
        __, error = parse_or_error(
            driver, BAD_BYTES["wrong-encoding"], f"utf16.{driver}"
        )
        assert error is not None
        assert error.offset is not None
        assert "UTF-8" in str(error)

    def test_binary_garbage(self, driver):
        __, error = parse_or_error(
            driver, BAD_BYTES["binary-garbage"], f"garbage.{driver}"
        )
        assert error is not None
        assert error.path == f"garbage.{driver}"

    def test_empty_file(self, driver):
        # empty input is not a crash: either "no instances" or a typed error
        instances, error = parse_or_error(driver, b"", f"empty.{driver}")
        if error is None:
            assert instances == []
        else:
            assert error.format_name == driver

    def test_parse_file_missing_path_raises_oserror(self, driver, tmp_path):
        # strict-mode contract: filesystem-level failures stay OSError
        # (the resilient service catches them upstream of the driver)
        with pytest.raises(OSError):
            get_driver(driver).parse_file(str(tmp_path / "absent.file"))


class TestStructuredDriverError:
    def test_context_fields_render_in_message(self):
        error = DriverError(
            "boom", path="/etc/app.ini", format_name="ini", line=7
        )
        text = str(error)
        assert "/etc/app.ini" in text
        assert "ini" in text
        assert "7" in text

    def test_with_context_fills_missing_fields_only(self):
        error = DriverError("boom", line=3)
        error.with_context(path="a.xml", format_name="xml")
        assert error.path == "a.xml"
        assert error.line == 3
        error.with_context(path="other.xml")
        assert error.path == "a.xml"  # first context wins

    def test_decode_failure_carries_byte_offset(self):
        with pytest.raises(DriverError) as excinfo:
            get_driver("ini").parse_bytes(b"ok = 1\n\xffbad", source="x.ini")
        assert excinfo.value.offset == 7

    def test_parse_file_attaches_real_path(self, tmp_path):
        target = tmp_path / "broken.json"
        target.write_text('{"a": ')
        with pytest.raises(DriverError) as excinfo:
            get_driver("json").parse_file(str(target))
        assert excinfo.value.path == str(target)
        assert excinfo.value.format_name == "json"
