"""Fault-tolerant validation: quarantine, breakers, shard supervision.

Covers the ISSUE-2 acceptance criteria directly:

* a fault in 1 of N sources → the scan completes, validates the other
  N−1, reports ``DEGRADED`` with the quarantined source listed, and the
  report fingerprint is unchanged by the health block;
* a shard that times out is re-run serially and the final report is
  byte-identical to a fully serial run;
* a spec statement that raises on 3 consecutive scans is circuit-broken
  to SKIPPED and recovers automatically once the cause is fixed.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import (
    ParallelValidator,
    ResiliencePolicy,
    SourceSpec,
    ValidationService,
    parse,
)
from repro.core.compiler import optimize_statements
from repro.core.report import HealthBlock
from repro.parallel import partition_statements
from repro.predicates import register_predicate
from repro.resilience import (
    SourceSupervisor,
    SpecCircuitBreaker,
    SpecGuard,
    statement_key,
)
from repro.synthetic import EXPERT_SPECS
from repro.synthetic.azure import generate_type_a

GOOD_INI = "[fabric]\nRecoveryAttempts = 3\nTimeout = 30\n"
BAD_INI = "[fabric\nthis is not ini at all"
SPEC = "$fabric.RecoveryAttempts -> int & [1, 10]\n"


def write(path, text):
    path.write_text(text)
    return str(path)


def make_service(tmp_path, n_sources=3, broken=(), **kwargs):
    spec = write(tmp_path / "spec.cpl", SPEC)
    sources = []
    for index in range(n_sources):
        text = BAD_INI if index in broken else GOOD_INI
        path = write(tmp_path / f"src{index}.ini", text)
        sources.append(SourceSpec("ini", path, f"Env::E{index}"))
    kwargs.setdefault("resilience", ResiliencePolicy())
    return ValidationService(spec, sources, **kwargs)


# ---------------------------------------------------------------------------
# Layer 1: source fault isolation
# ---------------------------------------------------------------------------


class TestSourceSupervisor:
    def test_healthy_source_always_attempted(self):
        supervisor = SourceSupervisor()
        supervisor.begin_scan()
        assert supervisor.should_attempt("a.ini")

    def test_backoff_doubles_per_consecutive_failure(self):
        supervisor = SourceSupervisor(ResiliencePolicy(max_source_retries=10))
        attempts = []
        for scan in range(1, 17):
            supervisor.begin_scan()
            if supervisor.should_attempt("a.ini"):
                attempts.append(scan)
                supervisor.record_failure("a.ini", "ini", "", "parse", "bad")
        # scan 1 fails → retry after 1, 2, 4, 8 scans (cap 8)
        assert attempts == [1, 2, 4, 8, 16]

    def test_exhausted_source_waits_for_mtime_change(self):
        policy = ResiliencePolicy(max_source_retries=1, source_backoff_cap=1)
        supervisor = SourceSupervisor(policy)
        supervisor.begin_scan()
        supervisor.record_failure("a.ini", "ini", "", "parse", "bad", mtime=100)
        supervisor.begin_scan()
        assert supervisor.should_attempt("a.ini", mtime=100)  # scheduled retry
        supervisor.record_failure("a.ini", "ini", "", "parse", "bad", mtime=100)
        for __ in range(5):
            supervisor.begin_scan()
            assert not supervisor.should_attempt("a.ini", mtime=100)
        assert supervisor.quarantined()[0]["exhausted"]
        # the file was edited: probe again regardless of backoff state
        assert supervisor.should_attempt("a.ini", mtime=200)

    def test_success_readmits_and_clears_state(self):
        supervisor = SourceSupervisor()
        supervisor.begin_scan()
        supervisor.record_failure("a.ini", "ini", "", "io", "disk", mtime=1)
        assert supervisor.is_quarantined("a.ini")
        assert supervisor.record_success("a.ini")
        assert not supervisor.is_quarantined("a.ini")
        assert supervisor.quarantined() == []


class TestServiceSourceQuarantine:
    def test_one_bad_source_degrades_but_validates_the_rest(self, tmp_path):
        service = make_service(tmp_path, n_sources=3, broken={1})
        result = service.run_once()
        assert result.health.status == HealthBlock.DEGRADED
        quarantined = [q["path"] for q in result.health.quarantined_sources]
        assert quarantined == [str(tmp_path / "src1.ini")]
        assert result.health.source_failures[0]["kind"] == "parse"
        # the other two sources were validated: one int-range check per env
        assert result.report.instances_checked == 2
        assert result.passed

    def test_degraded_fingerprint_matches_healthy_run(self, tmp_path):
        faulty = make_service(tmp_path, n_sources=3, broken={1}).run_once()
        # a strict service watching only the two good sources
        clean = ValidationService(
            str(tmp_path / "spec.cpl"),
            [
                SourceSpec("ini", str(tmp_path / "src0.ini"), "Env::E0"),
                SourceSpec("ini", str(tmp_path / "src2.ini"), "Env::E2"),
            ],
        ).run_once()
        assert faulty.report.fingerprint() == clean.report.fingerprint()
        assert faulty.health.status != clean.report.health.status

    def test_file_deleted_between_scans_is_quarantined(self, tmp_path):
        service = make_service(tmp_path, n_sources=2)
        first = service.run_once()
        assert first.health.status == HealthBlock.OK
        os.remove(tmp_path / "src0.ini")
        second = service.run_once()   # never raises
        assert second.health.status == HealthBlock.DEGRADED
        assert second.health.source_failures[0]["kind"] == "missing"
        assert second.report.instances_checked == 1

    def test_fixed_file_is_automatically_readmitted(self, tmp_path):
        service = make_service(tmp_path, n_sources=2, broken={0})
        assert service.run_once().health.status == HealthBlock.DEGRADED
        src = tmp_path / "src0.ini"
        src.write_text(GOOD_INI)
        os.utime(src, (time.time() + 5, time.time() + 5))
        result = service.scan()       # mtime change triggers the scan
        assert result is not None
        assert result.health.status == HealthBlock.OK
        assert result.report.instances_checked == 2

    def test_every_source_broken_is_fatal(self, tmp_path):
        service = make_service(tmp_path, n_sources=2, broken={0, 1})
        result = service.run_once()
        assert result.health.status == HealthBlock.FAILED
        assert not result.passed
        assert "quarantined" in result.health.fatal

    def test_unreadable_spec_file_is_fatal_not_raised(self, tmp_path):
        service = make_service(tmp_path, n_sources=1)
        os.remove(tmp_path / "spec.cpl")
        result = service.run_once()
        assert result.health.status == HealthBlock.FAILED
        assert not result.passed

    def test_strict_mode_still_raises(self, tmp_path):
        service = make_service(tmp_path, n_sources=2, broken={1}, resilience=None)
        with pytest.raises(Exception):
            service.run_once()

    def test_probe_scan_fires_without_file_changes(self, tmp_path):
        service = make_service(tmp_path, n_sources=2, broken={0})
        service.run_once()
        result = service.scan()       # nothing changed on disk
        assert result is not None     # but a retry probe was due
        assert result.changed_paths == ["<probe>"]


# ---------------------------------------------------------------------------
# Layer 3: spec circuit breakers
# ---------------------------------------------------------------------------


def compiled(text):
    return optimize_statements(list(parse(text).statements))


class TestSpecCircuitBreaker:
    def fail_scan(self, breaker, key):
        breaker.begin_scan()
        report = _report_with(spec_errors=[{"spec": key, "error": "boom"}])
        breaker.observe(report)

    def test_trips_after_threshold_consecutive_errors(self):
        breaker = SpecCircuitBreaker(threshold=3, probe_interval=2)
        for __ in range(3):
            guard = breaker.begin_scan()
            assert guard.quarantined == {}  # still closed: statement runs
            breaker.observe(
                _report_with(spec_errors=[{"spec": "7:check", "error": "boom"}])
            )
        # three consecutive error scans → tripped
        assert "7:check" in breaker.begin_scan().quarantined

    def test_clean_scan_resets_the_count(self):
        breaker = SpecCircuitBreaker(threshold=2, probe_interval=1)
        self.fail_scan(breaker, "7:check")
        breaker.begin_scan()
        breaker.observe(_report_with())        # ran cleanly → forgotten
        self.fail_scan(breaker, "7:check")     # back to one failure
        assert breaker.begin_scan().quarantined == {}

    def test_half_open_probe_recovers(self):
        breaker = SpecCircuitBreaker(threshold=1, probe_interval=2)
        self.fail_scan(breaker, "7:check")     # trips immediately
        guard = breaker.begin_scan()
        assert "7:check" in guard.quarantined  # open, waiting
        breaker.observe(_report_with(quarantined_specs=[{"spec": "7:check"}]))
        guard = breaker.begin_scan()           # probe interval elapsed
        assert guard.quarantined == {}         # half-open: runs this scan
        breaker.observe(_report_with())        # probe succeeded
        assert breaker.open_count() == 0

    def test_failed_probe_reopens(self):
        breaker = SpecCircuitBreaker(threshold=1, probe_interval=2)
        self.fail_scan(breaker, "7:check")
        breaker.begin_scan()
        breaker.observe(_report_with(quarantined_specs=[{"spec": "7:check"}]))
        breaker.begin_scan()                   # half-open probe
        breaker.observe(_report_with(spec_errors=[{"spec": "7:check", "error": "boom"}]))
        guard = breaker.begin_scan()
        assert "7:check" in guard.quarantined  # straight back open

    def test_statement_key_is_stable(self):
        first = [statement_key(s) for s in compiled(EXPERT_SPECS["type_a"])]
        second = [statement_key(s) for s in compiled(EXPERT_SPECS["type_a"])]
        assert first == second
        assert len(set(first)) == len(first)


def _report_with(spec_errors=(), quarantined_specs=()):
    from repro.core.report import ValidationReport

    report = ValidationReport()
    report.health.spec_errors.extend(spec_errors)
    report.health.quarantined_specs.extend(quarantined_specs)
    return report


BOMB = {"armed": False}


def _explode(value, *args):
    if BOMB["armed"]:
        raise RuntimeError("injected spec fault")
    return True


register_predicate("explode", _explode)


class TestBreakerEndToEnd:
    SPEC = "$fabric.Timeout -> explode\n$fabric.RecoveryAttempts -> int\n"

    def service(self, tmp_path):
        spec = write(tmp_path / "spec.cpl", self.SPEC)
        src = write(tmp_path / "src.ini", GOOD_INI)
        return ValidationService(
            spec,
            [SourceSpec("ini", src)],
            resilience=ResiliencePolicy(quarantine_threshold=3, probe_interval=2),
        )

    def test_trip_skip_and_automatic_recovery(self, tmp_path):
        service = self.service(tmp_path)
        BOMB["armed"] = True
        try:
            # three consecutive error scans: captured, not raised
            for __ in range(3):
                result = service.run_once()
                assert result.health.status == HealthBlock.DEGRADED
                assert result.health.spec_errors
                assert result.report.specs_evaluated >= 1  # the int check ran
            # breaker is open now: the statement is skipped with a reason
            tripped = service.run_once()
            assert tripped.health.quarantined_specs
            assert tripped.health.quarantined_specs[0]["outcome"] == "SKIPPED"
            assert "circuit open" in tripped.health.quarantined_specs[0]["reason"]
            assert not tripped.health.spec_errors
            assert tripped.report.specs_skipped >= 1
        finally:
            BOMB["armed"] = False
        # cause fixed: the half-open probe re-runs the statement and closes
        recovered = service.run_once()
        assert recovered.health.spec_errors == []
        assert recovered.health.quarantined_specs == []
        assert recovered.health.status == HealthBlock.OK
        assert service.breaker.open_count() == 0

    def test_spec_error_does_not_fail_the_scan(self, tmp_path):
        service = self.service(tmp_path)
        BOMB["armed"] = True
        try:
            result = service.run_once()
        finally:
            BOMB["armed"] = False
        assert result.passed              # other statements all passed
        assert result.health.degraded


# ---------------------------------------------------------------------------
# Layer 2: shard supervision
# ---------------------------------------------------------------------------


class WedgeExecutor:
    """Executor that wedges (sleeps past the timeout) on one shard label."""

    name = "wedge"

    def __init__(self, wedge_label, delay=0.6, once=False):
        self.wedge_label = wedge_label
        self.delay = delay
        self.once = once
        self.wedged = 0

    def run(self, state, shards):
        from repro.parallel.engine import evaluate_shard

        out = []
        for shard in shards:
            if shard.label == self.wedge_label and not (self.once and self.wedged):
                self.wedged += 1
                time.sleep(self.delay)
            out.append(evaluate_shard(state, shard))
        return out


class CrashExecutor:
    """Executor whose workers crash on one shard label, n times."""

    name = "crash"

    def __init__(self, crash_label, times=99):
        self.crash_label = crash_label
        self.times = times

    def run(self, state, shards):
        from repro.parallel.engine import evaluate_shard

        out = []
        for shard in shards:
            if shard.label == self.crash_label and self.times > 0:
                self.times -= 1
                raise RuntimeError("worker crashed")
            out.append(evaluate_shard(state, shard))
        return out


@pytest.fixture(scope="module")
def corpus():
    store = generate_type_a(0.05).build_store()
    statements = compiled(EXPERT_SPECS["type_a"])
    return store, statements


class TestShardSupervision:
    MAX_SHARDS = 4

    def serial_report(self, corpus):
        store, statements = corpus
        return ParallelValidator(
            store, executor="serial", max_shards=self.MAX_SHARDS
        ).validate_statements(statements)

    def wedge_label(self, corpus):
        store, statements = corpus
        __, shards = partition_statements(statements, self.MAX_SHARDS)
        assert len(shards) >= 2
        return shards[0].label

    def test_timed_out_shard_reruns_serially_identical_report(self, corpus):
        store, statements = corpus
        label = self.wedge_label(corpus)
        report = ParallelValidator(
            store,
            executor=WedgeExecutor(label, delay=0.6),
            max_shards=self.MAX_SHARDS,
            shard_timeout=0.1,
            shard_retries=1,
        ).validate_statements(statements)
        # acceptance: byte-identical to the fully serial run
        assert report.fingerprint() == self.serial_report(corpus).fingerprint()
        failures = report.health.shard_failures
        assert [f["shard"] for f in failures] == [label]
        assert failures[0]["kind"] == "timeout"
        assert failures[0]["recovered"] == "serial"
        assert report.health.status == HealthBlock.DEGRADED

    def test_transient_wedge_recovers_on_retry(self, corpus):
        store, statements = corpus
        label = self.wedge_label(corpus)
        report = ParallelValidator(
            store,
            executor=WedgeExecutor(label, delay=0.6, once=True),
            max_shards=self.MAX_SHARDS,
            shard_timeout=0.2,
            shard_retries=1,
        ).validate_statements(statements)
        assert report.fingerprint() == self.serial_report(corpus).fingerprint()
        assert report.health.shard_failures[0]["recovered"] == "retry"
        assert report.health.retries >= 1

    def test_crashing_worker_recovers(self, corpus):
        store, statements = corpus
        label = self.wedge_label(corpus)
        report = ParallelValidator(
            store,
            executor=CrashExecutor(label),
            max_shards=self.MAX_SHARDS,
            shard_timeout=5.0,
            shard_retries=1,
        ).validate_statements(statements)
        assert report.fingerprint() == self.serial_report(corpus).fingerprint()
        assert report.health.shard_failures[0]["kind"] == "crash"
        assert report.health.shard_failures[0]["recovered"] == "serial"

    def test_builtin_executors_unaffected_by_supervision(self, corpus):
        store, statements = corpus
        baseline = self.serial_report(corpus).fingerprint()
        for executor in ("serial", "thread", "process"):
            report = ParallelValidator(
                store,
                executor=executor,
                max_shards=self.MAX_SHARDS,
                shard_timeout=30.0,
            ).validate_statements(statements)
            assert report.fingerprint() == baseline
            assert report.health.shard_failures == []
            assert report.health.status == HealthBlock.OK

    def test_no_timeout_means_no_supervision(self, corpus):
        store, statements = corpus
        report = ParallelValidator(
            store, executor="thread", max_shards=self.MAX_SHARDS
        ).validate_statements(statements)
        assert report.health.status == HealthBlock.OK


# ---------------------------------------------------------------------------
# Layer 4: degraded-mode reporting
# ---------------------------------------------------------------------------


class TestHealthReporting:
    def test_health_excluded_from_fingerprint(self):
        from repro.core.report import ValidationReport

        clean = ValidationReport()
        limped = ValidationReport()
        limped.health.quarantined_sources.append({"path": "x.ini"})
        limped.health.retries = 7
        limped.health.finalize()
        assert clean.fingerprint() == limped.fingerprint()
        assert limped.to_dict()["health"]["status"] == HealthBlock.DEGRADED

    def test_render_mentions_degradation(self):
        from repro.core.report import ValidationReport

        report = ValidationReport()
        report.health.quarantined_sources.append({"path": "x.ini"})
        report.health.finalize()
        assert "DEGRADED" in report.render()
        assert "quarantined source" in report.render()

    def test_scanresult_passed_respects_fatal_health(self, tmp_path):
        service = make_service(tmp_path, n_sources=1, broken={0})
        result = service.run_once()
        assert result.health.status == HealthBlock.FAILED
        assert result.report.passed     # empty report has no violations…
        assert not result.passed        # …but the scan still counts as failing

    def test_guard_pickles(self):
        import pickle

        guard = SpecGuard(quarantined={"7:check": "circuit open"})
        clone = pickle.loads(pickle.dumps(guard))
        assert clone.quarantined == guard.quarantined
