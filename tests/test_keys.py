"""Qualified keys and patterns (paper §4.2.2, Table 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotationError
from repro.repository.keys import (
    ANY,
    NAMED,
    ORDINAL,
    InstanceKey,
    InstanceSegment,
    KeyPattern,
    PatternSegment,
    parse_instance_key,
    parse_pattern,
)


class TestParsePattern:
    def test_single_key(self):
        pattern = parse_pattern("SecurityConfigFile")
        assert len(pattern) == 1
        assert pattern.segments[0].name == "SecurityConfigFile"
        assert pattern.segments[0].kind == ANY

    def test_scoped_key(self):
        pattern = parse_pattern("Fabric.RecoveryAttempts")
        assert [s.name for s in pattern.segments] == ["Fabric", "RecoveryAttempts"]

    def test_named_instance(self):
        pattern = parse_pattern("Cloud::CO2test2.Tenant.SecretKey")
        assert pattern.segments[0].kind == NAMED
        assert pattern.segments[0].qualifier == "CO2test2"

    def test_numbered_instance(self):
        pattern = parse_pattern("Cloud[1].Tenant::SLB.SecretKey")
        assert pattern.segments[0].kind == ORDINAL
        assert pattern.segments[0].qualifier == 1
        assert pattern.segments[1].qualifier == "SLB"

    def test_variable_qualifier(self):
        pattern = parse_pattern("Cloud::$CloudName.Tenant.SecretKey")
        assert pattern.variables == frozenset({"CloudName"})

    def test_variable_name_segment(self):
        pattern = parse_pattern("$Component.Timeout")
        assert pattern.variables == frozenset({"Component"})

    def test_wildcard_scope(self):
        pattern = parse_pattern("*.SecretKey")
        assert pattern.segments[0].name == "*"

    def test_wildcard_key(self):
        pattern = parse_pattern("*IP")
        assert pattern.segments[0].name == "*IP"

    def test_quoted_qualifier(self):
        pattern = parse_pattern("CloudGroup::'East1 Production'.MonitorNodeHealth")
        assert pattern.segments[0].qualifier == "East1 Production"

    def test_quoted_qualifier_with_escape(self):
        pattern = parse_pattern(r"G::'it\'s'.K")
        assert pattern.segments[0].qualifier == "it's"

    def test_empty_is_error(self):
        with pytest.raises(KeyNotationError):
            parse_pattern("")

    def test_trailing_dot_is_error(self):
        with pytest.raises(KeyNotationError):
            parse_pattern("A.")

    def test_bad_index_is_error(self):
        with pytest.raises(KeyNotationError):
            parse_pattern("A[x]")

    def test_unterminated_quote_is_error(self):
        with pytest.raises(KeyNotationError):
            parse_pattern("A::'oops")


class TestSubstitute:
    def test_qualifier_substitution(self):
        pattern = parse_pattern("Cloud::$C.Key").substitute({"C": "CO2"})
        assert pattern.segments[0].qualifier == "CO2"
        assert not pattern.variables

    def test_name_substitution(self):
        pattern = parse_pattern("$Comp.Key").substitute({"Comp": "Fabric"})
        assert pattern.segments[0].name == "Fabric"

    def test_ordinal_variable_substitution(self):
        pattern = parse_pattern("Cloud[$i].Key").substitute({"i": 2})
        assert pattern.segments[0].qualifier == 2

    def test_missing_binding_left_alone(self):
        pattern = parse_pattern("Cloud::$C.Key").substitute({})
        assert pattern.variables == frozenset({"C"})


class TestMatching:
    def key(self, *parts):
        return InstanceKey.build(*parts)

    def test_exact_match(self):
        key = self.key(("Fabric", "inst1"), "RecoveryAttempts")
        assert parse_pattern("Fabric.RecoveryAttempts").matches(key)

    def test_suffix_match(self):
        key = self.key(("CloudGroup", "G"), ("Cloud", "C"), ("Tenant", "A"), "SecretKey")
        assert parse_pattern("Cloud.Tenant.SecretKey").matches(key)
        assert parse_pattern("Tenant.SecretKey").matches(key)
        assert parse_pattern("SecretKey").matches(key)

    def test_named_qualifier_must_match(self):
        key = self.key(("Cloud", "CO2test2"), ("Tenant", "A"), "SecretKey")
        assert parse_pattern("Cloud::CO2test2.Tenant.SecretKey").matches(key)
        assert not parse_pattern("Cloud::Other.Tenant.SecretKey").matches(key)

    def test_ordinal_matches_sibling_index(self):
        first = self.key(("Cloud", "X", 1), "K")
        second = self.key(("Cloud", "Y", 2), "K")
        assert parse_pattern("Cloud[1].K").matches(first)
        assert not parse_pattern("Cloud[1].K").matches(second)
        assert parse_pattern("Cloud[2].K").matches(second)

    def test_named_pattern_rejects_unqualified_instance(self):
        key = self.key("Cloud", "K")
        assert not parse_pattern("Cloud::X.K").matches(key)

    def test_wildcard_star_segment(self):
        key = self.key(("Cloud", "C"), "SecretKey")
        assert parse_pattern("*.SecretKey").matches(key)

    def test_wildcard_in_name(self):
        key = self.key(("Cloud", "C"), "ProxyIP")
        assert parse_pattern("*IP").matches(key)
        assert not parse_pattern("*Port").matches(key)

    def test_wildcard_in_qualifier(self):
        key = self.key(("Cloud", "East1Storage1"), "K")
        assert parse_pattern("Cloud::East1*.K").matches(key)
        assert not parse_pattern("Cloud::West*.K").matches(key)

    def test_pattern_longer_than_key_never_matches(self):
        key = self.key("K")
        assert not parse_pattern("A.B.K").matches(key)

    def test_unresolved_variable_raises(self):
        key = self.key(("Cloud", "C"), "K")
        with pytest.raises(KeyNotationError):
            parse_pattern("Cloud::$V.K").matches(key)


class TestPrefixing:
    def test_prefixed_with_pattern(self):
        inner = parse_pattern("k1")
        combined = inner.prefixed_with(parse_pattern("r.s"))
        assert combined.render() == "r.s.k1"

    def test_prefixed_with_instance(self):
        scope = InstanceKey.build(("Cluster", "C1"))
        pattern = parse_pattern("StartIP").prefixed_with_instance(scope)
        assert pattern.matches(InstanceKey.build(("Cluster", "C1"), "StartIP"))
        assert not pattern.matches(InstanceKey.build(("Cluster", "C2"), "StartIP"))

    def test_prefixed_with_ordinal_instance(self):
        scope = InstanceKey.build(("Rack", None, 2))
        pattern = parse_pattern("Location").prefixed_with_instance(scope)
        assert pattern.matches(InstanceKey.build(("Rack", None, 2), "Location"))
        assert not pattern.matches(InstanceKey.build(("Rack", None, 1), "Location"))


class TestRendering:
    def test_instance_render_roundtrip(self):
        key = InstanceKey.build(("Cloud", "East1 Production"), ("Tenant", "A"), "K")
        assert parse_instance_key(key.render()) == key

    def test_ordinal_render_roundtrip(self):
        key = InstanceKey.build(("Rack", None, 3), "Location")
        assert parse_instance_key(key.render()) == key

    def test_class_key(self):
        key = InstanceKey.build(("A", "x"), ("B", None, 2), "C")
        assert key.class_key == ("A", "B", "C")

    def test_instance_key_rejects_wildcards(self):
        with pytest.raises(KeyNotationError):
            parse_instance_key("*.K")


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_",
    min_size=1,
    max_size=8,
).filter(lambda s: s not in ("", "_"))

_segments = st.builds(
    InstanceSegment,
    name=_names,
    qualifier=st.one_of(st.none(), _names),
    ordinal=st.integers(min_value=1, max_value=9),
)

_keys = st.builds(
    InstanceKey, st.lists(_segments, min_size=1, max_size=5).map(tuple)
)


@given(_keys)
@settings(max_examples=200)
def test_property_render_parse_matches_self(key):
    """A key's rendering, parsed as a pattern, matches the key itself."""
    pattern = parse_pattern(key.render())
    assert pattern.matches(key)


@given(_keys)
@settings(max_examples=200)
def test_property_class_pattern_matches_instance(key):
    """The bare class notation matches every instance of the class."""
    pattern = parse_pattern(".".join(key.class_key))
    assert pattern.matches(key)


@given(_keys, st.integers(min_value=1, max_value=5))
@settings(max_examples=200)
def test_property_suffix_patterns_match(key, depth):
    """Any suffix of the class path matches the instance."""
    names = key.class_key
    suffix = names[max(0, len(names) - depth):]
    assert parse_pattern(".".join(suffix)).matches(key)


@given(_keys)
@settings(max_examples=200)
def test_property_instance_roundtrip(key):
    """render → parse_instance_key is the identity up to default ordinals."""
    parsed = parse_instance_key(key.render())
    assert parsed.class_key == key.class_key
    for original, reparsed in zip(key.segments, parsed.segments):
        assert original.qualifier == reparsed.qualifier
        if original.qualifier is None:
            assert (original.ordinal == 1) == (reparsed.ordinal == 1)
