"""Composable validation workflows: gates, determinism, cross-store rules.

The determinism anchor under test: a pure-validation workflow
(parse → validate → report) produces a merged report whose
``fingerprint()`` is byte-identical to a direct single-pass
:class:`~repro.core.session.ValidationSession` scan of the same spec and
sources — across every executor, with splicing on or off, and across the
asynchronous job API.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import observability
from repro.core.session import ValidationSession
from repro.jobs.model import report_fingerprint_digest
from repro.jobs.service import JobService
from repro.service import SourceSpec, ValidationService
from repro.workflows import (
    CrossStoreChecker,
    Gate,
    StepOutput,
    StepStatus,
    Workflow,
    WorkflowEngine,
    WorkflowError,
    extract_port,
    load_rulepack,
    load_workflow,
    parse_rulepack,
    register_step_kind,
)

APP_JSON = json.dumps(
    {
        "database": {"host": "db.internal:5432", "pool_size": "10"},
        "debug": "false",
        "environment": "production",
    }
)

PROD_ENV = """\
# production environment
DATABASE_URL="postgres://db.internal:5432/app"
export API_TOKEN='s3cr3t'
debug=false
"""

SPEC = """\
$database.pool_size -> int & [1, 64]
$debug -> in('true', 'false')
"""


@pytest.fixture(autouse=True)
def pristine_observability():
    observability.disable()
    yield
    observability.disable()


@pytest.fixture
def corpus(tmp_path):
    (tmp_path / "app.json").write_text(APP_JSON)
    (tmp_path / "prod.env").write_text(PROD_ENV)
    (tmp_path / "app.cpl").write_text(SPEC)
    return tmp_path


def pure_workflow(corpus) -> Workflow:
    return Workflow.from_dict(
        {
            "workflow": {"name": "pure"},
            "steps": [
                {
                    "name": "parse",
                    "sources": [{"format": "json", "path": "app.json"}],
                },
                {"name": "validate", "spec": "app.cpl"},
                {"name": "report", "gate": "always"},
            ],
        }
    )


def direct_report(corpus):
    session = ValidationSession(base_dir=str(corpus))
    session.load_source("json", "app.json")
    return session.validate((corpus / "app.cpl").read_text())


# ---------------------------------------------------------------------------
# Model and loader validation
# ---------------------------------------------------------------------------


class TestModel:
    def test_gate_parsing(self):
        assert Gate.parse("always").kind == Gate.ALWAYS
        gate = Gate.parse("on_violation:error")
        assert (gate.kind, gate.severity) == ("on_violation", "error")
        assert gate.render() == "on_violation:error"

    @pytest.mark.parametrize(
        "text", ["sometimes", "always:error", "on_pass:fatal"]
    )
    def test_bad_gates_rejected(self, text):
        with pytest.raises(WorkflowError):
            Gate.parse(text)

    def test_severity_threshold_counts_only_at_or_above(self):
        class V:
            def __init__(self, severity):
                self.severity = severity

        gate = Gate.parse("on_violation:error")
        assert not gate.should_run([V("warning"), V("info")])
        assert gate.should_run([V("critical")])

    def test_duplicate_step_names_rejected(self):
        with pytest.raises(WorkflowError, match="duplicate"):
            Workflow.from_dict(
                {"steps": [{"name": "a", "kind": "report"},
                           {"name": "a", "kind": "report"}]}
            )

    def test_forward_references_rejected_so_cycles_are_unrepresentable(self):
        with pytest.raises(WorkflowError, match="not an earlier step"):
            Workflow.from_dict(
                {"steps": [{"name": "a", "kind": "report", "after": "b"},
                           {"name": "b", "kind": "report"}]}
            )

    def test_default_after_is_the_previous_step(self):
        workflow = Workflow.from_dict(
            {"steps": [{"name": "a", "kind": "report"},
                       {"name": "b", "kind": "report"}]}
        )
        assert workflow.step("b").after == ("a",)

    def test_unknown_top_level_fields_rejected(self):
        with pytest.raises(WorkflowError, match="unknown workflow field"):
            Workflow.from_dict(
                {"steps": [{"name": "report"}], "stepz": []}
            )

    def test_unknown_step_kind_fails_at_engine_build(self):
        workflow = Workflow.from_dict({"steps": [{"name": "no-such-kind"}]})
        with pytest.raises(WorkflowError, match="unknown step kind"):
            WorkflowEngine(workflow)

    def test_to_dict_round_trips(self, corpus):
        workflow = pure_workflow(corpus)
        again = Workflow.from_dict(workflow.to_dict())
        assert again.to_dict() == workflow.to_dict()


class TestLoader:
    def test_yaml_file(self, corpus):
        path = corpus / "flow.yaml"
        path.write_text(
            "workflow:\n  name: y\nsteps:\n  - name: report\n"
        )
        assert load_workflow(str(path)).name == "y"

    def test_toml_file(self, corpus):
        path = corpus / "flow.toml"
        path.write_text(
            '[workflow]\nname = "t"\n\n[[steps]]\nname = "report"\n'
        )
        workflow = load_workflow(str(path))
        assert workflow.name == "t"
        assert workflow.step("report").kind == "report"

    def test_malformed_and_missing_files(self, corpus):
        bad = corpus / "bad.yaml"
        bad.write_text("steps: [")
        with pytest.raises(WorkflowError, match="malformed"):
            load_workflow(str(bad))
        with pytest.raises(WorkflowError, match="cannot read"):
            load_workflow(str(corpus / "missing.yaml"))


# ---------------------------------------------------------------------------
# Determinism: fingerprint parity with a single-pass scan
# ---------------------------------------------------------------------------


class TestFingerprintParity:
    @pytest.mark.parametrize("executor", [None, "serial", "thread", "process"])
    def test_pure_workflow_matches_direct_scan(self, corpus, executor):
        engine = WorkflowEngine(
            pure_workflow(corpus), base_dir=str(corpus), executor=executor
        )
        outcome = engine.run()
        assert outcome.passed
        assert outcome.fingerprint() == direct_report(corpus).fingerprint()

    def test_splice_preserves_the_fingerprint(self, corpus):
        engine = WorkflowEngine(pure_workflow(corpus), base_dir=str(corpus))
        first = engine.run()
        second = engine.run()
        assert second.step("parse").spliced
        assert second.step("validate").spliced
        assert not second.step("report").spliced  # report is never spliced
        assert second.fingerprint() == first.fingerprint()

    def test_splice_disabled_runs_every_step(self, corpus):
        engine = WorkflowEngine(
            pure_workflow(corpus), base_dir=str(corpus), splice=False
        )
        engine.run()
        outcome = engine.run()
        assert not any(result.spliced for result in outcome.steps)

    def test_changed_source_invalidates_the_splice(self, corpus):
        engine = WorkflowEngine(pure_workflow(corpus), base_dir=str(corpus))
        engine.run()
        (corpus / "app.json").write_text(
            APP_JSON.replace('"10"', '"99"')
        )
        outcome = engine.run()
        assert not outcome.step("parse").spliced
        assert not outcome.step("validate").spliced
        assert not outcome.passed  # pool_size 99 breaks [1, 64]

    def test_health_records_do_not_perturb_the_fingerprint(self, corpus):
        register_step_kind("explode", _explode)
        workflow = Workflow.from_dict(
            {
                "steps": [
                    {"name": "parse",
                     "sources": [{"format": "json", "path": "app.json"}]},
                    {"name": "validate", "spec": "app.cpl"},
                    {"name": "explode", "gate": "always"},
                    {"name": "report", "gate": "always", "after": "validate"},
                ]
            }
        )
        outcome = WorkflowEngine(workflow, base_dir=str(corpus)).run()
        assert outcome.step("explode").status == StepStatus.FAILED
        assert outcome.health.status == "DEGRADED"
        assert outcome.fingerprint() == direct_report(corpus).fingerprint()


def _explode(ctx, step):
    raise RuntimeError("boom")


# ---------------------------------------------------------------------------
# Gates, cascade skips, and supervision
# ---------------------------------------------------------------------------


class TestGatesAndSupervision:
    def test_failing_gate_skips_downstream_steps(self, corpus):
        (corpus / "app.json").write_text(APP_JSON.replace('"10"', '"99"'))
        calls = []
        workflow = Workflow.from_dict(
            {
                "steps": [
                    {"name": "parse",
                     "sources": [{"format": "json", "path": "app.json"}]},
                    {"name": "validate", "spec": "app.cpl"},
                    {"name": "deploy", "kind": "report", "gate": "on_pass"},
                    {"name": "notify", "kind": "webhook",
                     "gate": "on_violation", "after": "validate",
                     "url": "http://example.invalid/hook"},
                ]
            }
        )
        engine = WorkflowEngine(
            workflow, base_dir=str(corpus),
            post_fn=lambda url, payload, timeout: calls.append(payload) or 200,
        )
        outcome = engine.run()
        assert outcome.statuses() == {
            "parse": "ok", "validate": "ok",
            "deploy": "skipped", "notify": "ok",
        }
        assert "on_pass" in outcome.step("deploy").reason
        assert calls and calls[0]["passed"] is False

    def test_skipped_upstream_cascades_unless_gate_is_always(self, corpus):
        (corpus / "app.json").write_text(APP_JSON.replace('"10"', '"99"'))
        workflow = Workflow.from_dict(
            {
                "steps": [
                    {"name": "parse",
                     "sources": [{"format": "json", "path": "app.json"}]},
                    {"name": "validate", "spec": "app.cpl"},
                    {"name": "deploy", "kind": "report", "gate": "on_pass"},
                    # on_violation would run here (violations exist), so a
                    # skip proves the cascade, not the gate
                    {"name": "downstream", "kind": "report",
                     "gate": "on_violation"},
                    {"name": "cleanup", "kind": "report", "gate": "always"},
                ]
            }
        )
        outcome = WorkflowEngine(workflow, base_dir=str(corpus)).run()
        assert outcome.step("downstream").status == StepStatus.SKIPPED
        assert "upstream step 'deploy' skipped" in outcome.step("downstream").reason
        assert outcome.step("cleanup").status == StepStatus.OK

    def test_skips_are_visible_in_the_trace(self, corpus):
        (corpus / "app.json").write_text(APP_JSON.replace('"10"', '"99"'))
        obs = observability.enable(metrics=False)
        workflow = Workflow.from_dict(
            {
                "steps": [
                    {"name": "parse",
                     "sources": [{"format": "json", "path": "app.json"}]},
                    {"name": "validate", "spec": "app.cpl"},
                    {"name": "deploy", "kind": "report", "gate": "on_pass"},
                ]
            }
        )
        WorkflowEngine(workflow, base_dir=str(corpus)).run()
        spans = {s["name"]: s for s in obs.tracer.finished_spans()}
        assert "workflow[workflow]" in spans
        assert spans["step[deploy]"]["attrs"]["status"] == "skipped"
        assert spans["step[validate]"]["attrs"]["status"] == "ok"

    def test_step_timeout_degrades_instead_of_crashing(self, corpus):
        register_step_kind("stall", _stall)
        workflow = Workflow.from_dict(
            {
                "steps": [
                    {"name": "parse",
                     "sources": [{"format": "json", "path": "app.json"}]},
                    {"name": "stall", "timeout": 0.05},
                    {"name": "validate", "spec": "app.cpl", "gate": "always",
                     "after": "parse"},
                ]
            }
        )
        outcome = WorkflowEngine(workflow, base_dir=str(corpus)).run()
        assert outcome.step("stall").status == StepStatus.TIMEOUT
        assert outcome.health.status == "DEGRADED"
        failures = outcome.health.shard_failures
        assert failures and failures[0]["kind"] == "workflow-step"
        assert failures[0]["step"] == "stall"
        # the run completed: validate still produced its verdict
        assert outcome.step("validate").status == StepStatus.OK

    def test_failed_attempt_is_never_spliced_forward(self, corpus):
        flag = {"fail": True}

        def flaky(ctx, step):
            if flag["fail"]:
                raise RuntimeError("transient")
            return StepOutput(detail={"ok": True})

        register_step_kind("flaky", flaky, spliceable=True)
        workflow = Workflow.from_dict(
            {"steps": [{"name": "flaky", "gate": "always"}]}
        )
        engine = WorkflowEngine(workflow, base_dir=str(corpus))
        assert engine.run().step("flaky").status == StepStatus.FAILED
        flag["fail"] = False
        recovered = engine.run()
        assert recovered.step("flaky").status == StepStatus.OK
        assert not recovered.step("flaky").spliced


def _stall(ctx, step):
    time.sleep(2.0)
    return StepOutput(detail={"ok": True})


# ---------------------------------------------------------------------------
# Cross-store checking and the bundled rule pack
# ---------------------------------------------------------------------------


def build_stores(session_pairs):
    stores = {}
    for name, fmt, text in session_pairs:
        session = ValidationSession()
        session.load_text(fmt, text, source=f"{name}.{fmt}")
        stores[name] = session.store
    return stores


CLEAN_FRONTEND = json.dumps(
    {
        "database": {"host": "db.internal"},
        "backend": {"url": "http://api.internal:8080/v1"},
        "upstream": {"name": "billing"},
        "environment": "production",
        "debug": "false",
    }
)

CLEAN_BACKEND = json.dumps(
    {
        "database": {"host": "db.internal"},
        "listen": {"address": "0.0.0.0:8080"},
        "service": {"name": "billing"},
        "environment": "production",
        "debug": "false",
        "log": {"level": "info"},
    }
)


class TestCrossStoreChecker:
    def test_extract_port(self):
        assert extract_port("0.0.0.0:8080") == 8080
        assert extract_port("http://x:9090/v1") == 9090
        assert extract_port("5432") == 5432
        assert extract_port("no-port-here") is None
        assert extract_port("x:99999") is None

    def test_clean_corpus_is_quiet(self):
        pack = load_rulepack("examples/rulepacks/security.yaml")
        stores = build_stores(
            [("frontend", "json", CLEAN_FRONTEND),
             ("backend", "json", CLEAN_BACKEND)]
        )
        report = CrossStoreChecker(pack, stores).check()
        assert report.passed, [v.message for v in report.violations]
        assert report.specs_evaluated == len(pack.rules)

    def test_injected_faults_fire_distinct_rules(self):
        """≥3 distinct misconfigurations, each caught by a different rule."""
        pack = load_rulepack("examples/rulepacks/security.yaml")
        frontend = json.loads(CLEAN_FRONTEND)
        backend = json.loads(CLEAN_BACKEND)
        frontend["database"]["host"] = "db-old.internal"   # hosts disagree
        frontend["backend"]["url"] = "http://api.internal:9090/v1"  # port skew
        frontend["upstream"]["name"] = "billling"          # dangling reference
        backend["debug"] = "true"                          # debug in prod
        stores = build_stores(
            [("frontend", "json", json.dumps(frontend)),
             ("backend", "json", json.dumps(backend)),
             ("env", "env", 'API_TOKEN="leaked"\n')]
        )
        checker = CrossStoreChecker(
            pack, stores, store_meta={"env": {"world_readable": True}}
        )
        report = checker.check()
        fired = {violation.constraint for violation in report.violations}
        assert {
            "database-hosts-agree",
            "service-ports-agree",
            "upstream-references-resolve",
            "no-debug-in-prod",
            "no-world-readable-secrets",
        } <= fired

    def test_world_readable_gating(self):
        pack = parse_rulepack(
            {
                "rulepack": {"name": "t"},
                "rules": [
                    {"id": "no-secrets", "kind": "forbid",
                     "severity": "critical", "name_match": "secret"}
                ],
            }
        )
        pack_gated = parse_rulepack(
            {
                "rulepack": {"name": "t"},
                "rules": [
                    {"id": "no-secrets", "kind": "forbid",
                     "severity": "critical", "name_match": "secret",
                     "world_readable_only": True}
                ],
            }
        )
        stores = build_stores([("env", "env", "db_secret=x\n")])
        assert not CrossStoreChecker(pack, stores).check().passed
        # without the world_readable flag the gated rule stays quiet …
        assert CrossStoreChecker(pack_gated, stores).check().passed
        # … and fires once the store is marked
        meta = {"env": {"world_readable": True}}
        assert not CrossStoreChecker(pack_gated, stores, meta).check().passed

    def test_cpl_rule_spans_stores(self):
        pack = parse_rulepack(
            {
                "rulepack": {"name": "t"},
                "rules": [
                    {"id": "replicas-bound", "kind": "cpl",
                     "severity": "warning",
                     "spec": "$frontend.replicas -> int & [1, 5]"}
                ],
            }
        )
        stores = build_stores(
            [("frontend", "json", json.dumps({"replicas": "9"}))]
        )
        report = CrossStoreChecker(pack, stores).check()
        assert len(report.violations) == 1
        violation = report.violations[0]
        assert violation.constraint == "replicas-bound"
        assert violation.severity == "warning"  # the rule owns severity

    def test_rulepack_validation_errors(self):
        with pytest.raises(WorkflowError, match="unknown kind"):
            parse_rulepack(
                {"rules": [{"id": "x", "kind": "telepathy"}]}
            )
        with pytest.raises(WorkflowError, match="needs a 'keys'"):
            parse_rulepack(
                {"rules": [{"id": "x", "kind": "must_agree"}]}
            )
        with pytest.raises(WorkflowError, match="duplicate rule id"):
            parse_rulepack(
                {
                    "rules": [
                        {"id": "x", "kind": "forbid", "key": "a"},
                        {"id": "x", "kind": "forbid", "key": "b"},
                    ]
                }
            )

    def test_cross_check_step_merges_into_the_workflow_verdict(self, corpus):
        (corpus / "rules.yaml").write_text(
            "rulepack:\n  name: t\nrules:\n"
            "  - id: no-debug\n    kind: forbid\n    severity: error\n"
            "    key: debug\n    equals: 'false'\n"
        )
        workflow = Workflow.from_dict(
            {
                "steps": [
                    {"name": "parse",
                     "sources": [{"format": "json", "path": "app.json"}]},
                    {"name": "cross_check", "rulepack": "rules.yaml"},
                ]
            }
        )
        outcome = WorkflowEngine(workflow, base_dir=str(corpus)).run()
        assert not outcome.passed
        assert outcome.report.violations[0].constraint == "no-debug"


# ---------------------------------------------------------------------------
# Service integration
# ---------------------------------------------------------------------------


class TestServiceWorkflowMode:
    def write_flow(self, corpus) -> str:
        path = corpus / "flow.yaml"
        path.write_text(
            "workflow:\n  name: svc\n"
            "steps:\n"
            "  - name: parse\n"
            "    sources:\n"
            "      - {format: json, path: app.json}\n"
            "  - name: validate\n"
            "    spec: app.cpl\n"
            "  - name: report\n"
            "    gate: always\n"
        )
        return str(path)

    def make_service(self, corpus, **kwargs):
        return ValidationService(
            spec_path=str(corpus / "app.cpl"),
            sources=[SourceSpec("json", str(corpus / "app.json"))],
            workflow=self.write_flow(corpus),
            **kwargs,
        )

    def test_scan_runs_the_workflow(self, corpus):
        service = self.make_service(corpus)
        result = service.run_once()
        assert result.passed
        assert result.workflow["name"] == "svc"
        statuses = {s["name"]: s["status"] for s in result.workflow["steps"]}
        assert statuses == {"parse": "ok", "validate": "ok", "report": "ok"}
        assert result.report.fingerprint() == direct_report(corpus).fingerprint()
        assert service.stats()["workflow"]["runs"] == 1
        assert service.scan_records[-1]["workflow"]["name"] == "svc"

    def test_steady_state_scan_is_skipped_and_data_change_splices(self, corpus):
        service = self.make_service(corpus)
        service.run_once()
        assert service.scan() is None  # nothing changed
        (corpus / "app.json").write_text(APP_JSON.replace('"10"', '"11"'))
        result = service.scan()
        assert result is not None and result.passed
        assert not result.workflow["steps"][0]["spliced"]  # source changed

    def test_editing_the_workflow_file_rebuilds_the_engine(self, corpus):
        service = self.make_service(corpus)
        service.run_once()
        flow = corpus / "flow.yaml"
        flow.write_text(
            flow.read_text().replace("name: svc", "name: svc-v2")
        )
        result = service.scan()
        assert result is not None
        assert result.workflow["name"] == "svc-v2"


# ---------------------------------------------------------------------------
# Job integration
# ---------------------------------------------------------------------------


class TestWorkflowJobs:
    def workflow_dict(self, corpus) -> dict:
        return {
            "workflow": {"name": "job-flow"},
            "steps": [
                {"name": "parse",
                 "sources": [
                     {"format": "json", "path": str(corpus / "app.json")}
                 ]},
                {"name": "validate", "spec": str(corpus / "app.cpl")},
                {"name": "report", "gate": "always"},
            ],
        }

    def test_workflow_job_round_trip(self, corpus):
        service = JobService(workers=1)
        try:
            job, created = service.submit(
                mode="workflow", workflow=self.workflow_dict(corpus)
            )
            assert created
            job = service.wait(job.id, timeout=30)
            assert job.state == "DONE", job.error
            assert job.result["verdict"] == "admit"
            statuses = {
                s["name"]: s["status"]
                for s in job.result["workflow"]["steps"]
            }
            assert statuses == {
                "parse": "ok", "validate": "ok", "report": "ok"
            }
            # per-step statuses also live on the job record itself
            assert [s["status"] for s in job.workflow_steps] == ["ok"] * 3
            assert job.spec_reference() == "workflow:job-flow"
            # determinism across the job API boundary
            assert job.result["fingerprint"] == report_fingerprint_digest(
                direct_report(corpus)
            )
        finally:
            service.close(timeout=5)

    def test_submit_payload_accepts_workflow_jobs(self, corpus):
        service = JobService(workers=1)
        try:
            job, __ = service.submit_payload(
                {"mode": "workflow", "workflow": self.workflow_dict(corpus)}
            )
            job = service.wait(job.id, timeout=30)
            assert job.state == "DONE", job.error
            assert "workflow" in job.to_dict()
        finally:
            service.close(timeout=5)

    def test_malformed_submissions_rejected_eagerly(self, corpus):
        service = JobService(workers=0)
        with pytest.raises(ValueError, match="requires a workflow mapping"):
            service.submit(mode="workflow")
        with pytest.raises(ValueError, match="invalid workflow"):
            service.submit(mode="workflow", workflow={"steps": []})
        with pytest.raises(ValueError, match="requires mode='workflow'"):
            service.submit(spec=SPEC, workflow=self.workflow_dict(corpus))
        with pytest.raises(ValueError, match="must be 'full', 'delta'"):
            service.submit_payload({"mode": "workflowz"})

    def test_gate_skips_surface_in_the_job_record(self, corpus):
        (corpus / "app.json").write_text(APP_JSON.replace('"10"', '"99"'))
        definition = self.workflow_dict(corpus)
        definition["steps"].append(
            {"name": "deploy", "kind": "report", "gate": "on_pass"}
        )
        service = JobService(workers=1)
        try:
            job, __ = service.submit(mode="workflow", workflow=definition)
            job = service.wait(job.id, timeout=30)
            assert job.state == "DONE", job.error
            assert job.result["verdict"] == "reject"
            steps = {s["name"]: s for s in job.result["workflow"]["steps"]}
            assert steps["deploy"]["status"] == "skipped"
            assert "on_pass" in steps["deploy"]["reason"]
        finally:
            service.close(timeout=5)
