"""CPL pretty-printer: canonical rendering + parse/print round-trip."""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpl import ast, parse, parse_predicate, print_predicate, print_program
from repro.cpl.printer import print_statement


def strip_meta(program: ast.Program) -> tuple:
    """Drop source-text/line metadata so round-trips compare structurally."""

    def clean(statement):
        if isinstance(statement, ast.SpecStatement):
            return replace(statement, text="", line=0)
        if isinstance(statement, ast.NamespaceBlock):
            return replace(
                statement, line=0, body=tuple(clean(s) for s in statement.body)
            )
        if isinstance(statement, ast.CompartmentBlock):
            return replace(
                statement, line=0, body=tuple(clean(s) for s in statement.body)
            )
        if isinstance(statement, ast.IfStatement):
            return replace(
                statement,
                line=0,
                condition=ast.ConditionSpec(
                    replace(statement.condition.spec, text="", line=0)
                ),
                then=tuple(clean(s) for s in statement.then),
                otherwise=tuple(clean(s) for s in statement.otherwise),
            )
        if hasattr(statement, "line"):
            return replace(statement, line=0)
        return statement

    return tuple(clean(s) for s in program.statements)


def roundtrips(text: str) -> bool:
    first = parse(text)
    printed = print_program(first)
    second = parse(printed)
    return strip_meta(first) == strip_meta(second)


class TestRendering:
    def test_simple_spec(self):
        program = parse("$OSBuildPath -> path & exists")
        assert print_program(program) == "$OSBuildPath -> path & exists"

    def test_precedence_parenthesized(self):
        predicate = parse_predicate("(a | b) & c")
        assert print_predicate(predicate) == "(a | b) & c"

    def test_flat_or(self):
        predicate = parse_predicate("a | b & c")
        assert print_predicate(predicate) == "a | b & c"

    def test_not_and_macro(self):
        predicate = parse_predicate("~nonempty | @UniqueCIDR")
        assert print_predicate(predicate) == "~nonempty | @UniqueCIDR"

    def test_range_and_set(self):
        assert print_predicate(parse_predicate("[5, 15]")) == "[5, 15]"
        assert (
            print_predicate(parse_predicate("{'a', 'b'}")) == "{'a', 'b'}"
        )

    def test_compartment_block(self):
        text = "compartment Cluster {\n  $ProxyIP -> [$StartIP, $EndIP]\n}"
        assert print_program(parse(text)) == text

    def test_custom_message_kept(self):
        program = parse("$K -> int !! 'numeric please'")
        assert print_program(program).endswith("!! 'numeric please'")

    def test_load_with_scope(self):
        program = parse("load 'ini' 'x.ini' as 'Fabric'")
        assert print_program(program) == "load 'ini' 'x.ini' as 'Fabric'"

    def test_string_escaping(self):
        program = parse(r"$K -> match('it\'s')")
        assert roundtrips(print_program(program))


ROUND_TRIP_PROGRAMS = [
    "$OSBuildPath -> path & exists",
    "$Fabric.AlertFailNodesThreshold -> int & nonempty & [5, 15]",
    "#[Datacenter] $Machinepool.FillFactor# -> consistent",
    "compartment Cluster {\n$ProxyIP -> [$StartIP, $EndIP]\n$IPv6Prefix -> ~nonempty | @UniqueCIDR\n}",
    "namespace r.s, t {\n$k1 -> int\n}",
    "let UniqueCIDR := unique & cidr",
    "if (exists $R.Gateway == 'LB') $Set.Device -> nonempty",
    "if ($C -> ~match('UF')) {\n$F::$C.T -> nonempty\n} else {\n$F::$C.T -> ~nonempty\n}",
    "$M -> foreach($Pool::$_.Vip) -> if (nonempty) split('-') -> [at(0), at(1)] -> exists [$lo, $hi]",
    "$s.k1, $s.k2 -> ip & unique",
    "$a + $b -> == 100",
    "lower($Name) -> == 'x'",
    "$k1 <= $k2",
    "get $Fabric.Timeout",
    "$K -> int !! 'custom {key}'",
    "$K -> one int",
    "$K -> if (int) [1, 5] else nonempty",
    "$V -> split(';') -> split('-') -> ip",
]


@pytest.mark.parametrize("text", ROUND_TRIP_PROGRAMS)
def test_round_trip(text):
    assert roundtrips(text), print_program(parse(text))


@given(st.lists(st.sampled_from(ROUND_TRIP_PROGRAMS), min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_property_round_trip_programs(lines):
    assert roundtrips("\n".join(lines))


def test_print_statement_type_error():
    with pytest.raises(TypeError):
        print_statement("not a statement")


# ---------------------------------------------------------------------------
# Property: randomly built predicate ASTs survive print → parse
# ---------------------------------------------------------------------------

_operands = st.one_of(
    st.integers(min_value=-99, max_value=99).map(ast.Literal),
    st.sampled_from(["a", "quo'te", "x y"]).map(ast.Literal),
    st.sampled_from(["K", "Fabric.Timeout", "Cloud::C1.K"]).map(ast.DomainRef),
)

_leaves = st.one_of(
    st.sampled_from(["int", "nonempty", "ip", "unique", "consistent"]).map(
        lambda name: ast.PrimitiveCall(name)
    ),
    st.builds(lambda p: ast.PrimitiveCall("match", (ast.Literal(p),)),
              st.sampled_from(["^x", "v.*d$", "it's"])),
    st.builds(ast.RangePred, _operands, _operands),
    st.builds(lambda ms: ast.SetPred(tuple(ms)),
              st.lists(_operands, min_size=1, max_size=3)),
    st.builds(ast.RelPred, st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
              _operands),
)


def _predicates(depth=3):
    return st.recursive(
        _leaves,
        lambda children: st.one_of(
            st.builds(ast.And, children, children),
            st.builds(ast.Or, children, children),
            st.builds(ast.Not, children),
            st.builds(ast.Quantified, st.sampled_from(["exists", "forall", "one"]),
                      children),
            st.builds(ast.IfPred, children, children,
                      st.one_of(st.none(), children)),
        ),
        max_leaves=8,
    )


@given(_predicates())
@settings(max_examples=300, deadline=None)
def test_property_predicate_ast_roundtrip(predicate):
    printed = print_predicate(predicate)
    reparsed = parse_predicate(printed)
    assert print_predicate(reparsed) == printed
