"""Multi-process job execution (ISSUE 7): leases, partitions, webhooks.

The contracts under test:

* **leases** — ``O_CREAT|O_EXCL`` claim arbitration admits exactly one
  claimant; an expired lease file does *not* permit claim-through (only
  the reaper breaks it, so the retry budget is accounted once); renewal
  and release are fenced on (worker, epoch);
* **partitioned replay** — :func:`fold_merged` applies worker-partition
  ``claim``/``terminal`` events under epoch fencing: interleaved epochs,
  duplicate claims, zombie results after a re-queue, and a torn final
  line in one partition all fold to the same deterministic job records;
* **reaper** — a RUNNING job whose lease lapses is re-queued within the
  ``max_requeues`` budget and parked as terminal EXPIRED beyond it, on an
  injectable wall clock;
* **recovery** — a coordinator restart keeps a RUNNING job whose worker
  still holds a fresh lease, and re-queues one whose lease is stale;
* **webhooks** — terminal records POST to ``callback_url`` with
  exponential-backoff retries and a dead-letter ring; pending deliveries
  survive a restart;
* **chaos** — SIGKILLing a worker process mid-job re-queues the job
  exactly once and the eventual verdict fingerprint is byte-identical to
  an undisturbed direct run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.session import ValidationSession
from repro.runtime import set_clock
from repro.jobs import (
    JobDirectory,
    JobJournal,
    JobService,
    JobState,
    LeaseStore,
    ValidationJob,
    fold_merged,
    read_events,
)
from repro.jobs.journal import apply_worker_event
from repro.jobs.model import report_fingerprint_digest
from repro.jobs.webhook import WebhookDispatcher
from repro.jobs.worker import ExternalWorker

SPEC = "$s.Timeout -> int & [1, 60]\n$s.Flag -> bool\n$s.Name -> nonempty\n"
GOOD_INI = "[s]\nTimeout = 30\nFlag = true\nName = web\n"


@pytest.fixture(autouse=True)
def pristine_clock():
    previous = set_clock(None)
    yield
    set_clock(previous)


class WallClock:
    """Injectable wall clock for cross-process lease deadlines."""

    def __init__(self, now: float = 1_000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def inline_sources(text=GOOD_INI):
    return [{"format": "ini", "text": text, "source": "inline.ini"}]


def direct_fingerprint(spec=SPEC, text=GOOD_INI) -> str:
    session = ValidationSession()
    session.load_text("ini", text, source="inline.ini")
    return report_fingerprint_digest(session.validate(spec))


def shared_service(tmp_path, clock=None, **kwargs):
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("start", False)
    kwargs.setdefault("lease_ttl", 10.0)
    if clock is not None:
        kwargs.setdefault("time_fn", clock)
    return JobService(journal_dir=str(tmp_path / "jobsdir"), **kwargs)


def simulate_claim(service, job, worker="sim"):
    """What a worker process does: win the lease, journal the claim."""
    lease = service.leases.try_claim(job.id, worker, job.epoch + 1)
    assert lease is not None, f"{worker} failed to claim {job.id}"
    partition = JobJournal(service.directory.worker_partition(worker))
    partition.append({
        "event": "claim", "id": job.id, "worker": worker,
        "epoch": lease.epoch, "at": service._time(),
    })
    partition.close()
    return lease


def simulate_terminal(service, job, lease, worker="sim",
                      state=JobState.DONE, result=None, release=True):
    partition = JobJournal(service.directory.worker_partition(worker))
    partition.append({
        "event": "terminal", "id": job.id, "worker": worker,
        "epoch": lease.epoch, "state": state, "result": result,
        "error": "", "at": service._time(),
    })
    partition.close()
    if release:
        service.leases.release(lease)


# ---------------------------------------------------------------------------
# Lease store
# ---------------------------------------------------------------------------


def test_exactly_one_claimant_wins(tmp_path):
    directory = JobDirectory(str(tmp_path)).ensure()
    clock = WallClock()
    store = LeaseStore(directory, ttl=5.0, time_fn=clock)
    first = store.try_claim("job-1", "alpha", 1)
    second = store.try_claim("job-1", "beta", 1)
    assert first is not None and second is None
    assert store.read("job-1").worker == "alpha"


def test_expired_lease_does_not_permit_claim_through(tmp_path):
    directory = JobDirectory(str(tmp_path)).ensure()
    clock = WallClock()
    store = LeaseStore(directory, ttl=1.0, time_fn=clock)
    assert store.try_claim("job-1", "alpha", 1) is not None
    clock.advance(5.0)  # well past the deadline
    assert [lease.job_id for lease in store.expired()] == ["job-1"]
    # still no claim-through: expiry accounting belongs to the reaper
    assert store.try_claim("job-1", "beta", 2) is None
    store.break_lease("job-1")
    assert store.try_claim("job-1", "beta", 2) is not None


def test_renewal_is_fenced_after_break(tmp_path):
    directory = JobDirectory(str(tmp_path)).ensure()
    clock = WallClock()
    store = LeaseStore(directory, ttl=2.0, time_fn=clock)
    lease = store.try_claim("job-1", "alpha", 1)
    clock.advance(1.0)
    assert store.renew(lease)
    assert store.read("job-1").deadline == pytest.approx(clock.now + 2.0)
    # the reaper breaks the lease and someone else claims at epoch 2
    store.break_lease("job-1")
    assert store.try_claim("job-1", "beta", 2) is not None
    assert not store.renew(lease), "the fenced holder must not renew"
    # release by the fenced holder must not drop beta's lease either
    store.release(lease)
    assert store.read("job-1").worker == "beta"


def test_worker_presence_heartbeats(tmp_path):
    directory = JobDirectory(str(tmp_path)).ensure()
    clock = WallClock()
    store = LeaseStore(directory, ttl=2.0, time_fn=clock)
    store.announce("w1", jobs_done=3)
    rows = store.workers()
    assert rows[0]["id"] == "w1" and rows[0]["alive"]
    assert rows[0]["jobs_done"] == 3
    clock.advance(10.0)
    assert not store.workers()[0]["alive"]
    store.retire("w1")
    assert store.workers() == []


def test_directory_publishes_specs_for_workers(tmp_path):
    directory = JobDirectory(str(tmp_path)).ensure()
    directory.publish_spec("service", SPEC)
    assert directory.read_spec("service") == SPEC
    assert directory.read_spec("missing") is None


# ---------------------------------------------------------------------------
# Partitioned replay (fold_merged)
# ---------------------------------------------------------------------------


def coordinator_submit(job_id, **fields):
    record = ValidationJob(id=job_id, spec_text=SPEC).to_dict()
    record.update(fields)
    return {"event": "submit", "job": record}


def test_fold_merged_interleaved_epochs(tmp_path):
    """A requeue between two workers' attempts folds to the second win."""
    coordinator = [
        coordinator_submit("j1"),
        # the coordinator absorbed w1's claim, then re-queued on expiry;
        # the epoch is *kept* so w1's stale events are fenced
        {"event": "update", "id": "j1",
         "fields": {"state": "RUNNING", "epoch": 1, "worker": "w1"}},
        {"event": "update", "id": "j1",
         "fields": {"state": "QUEUED", "requeues": 1, "started_at": None}},
    ]
    streams = {
        "w1": [
            {"event": "claim", "id": "j1", "worker": "w1", "epoch": 1},
            {"event": "terminal", "id": "j1", "worker": "w1", "epoch": 1,
             "state": "DONE", "result": {"verdict": "admit"}, "error": ""},
        ],
        "w2": [
            {"event": "claim", "id": "j1", "worker": "w2", "epoch": 2},
            {"event": "terminal", "id": "j1", "worker": "w2", "epoch": 2,
             "state": "FAILED", "result": None, "error": "boom"},
        ],
    }
    jobs = fold_merged(coordinator, streams, ValidationJob.from_dict)
    job = jobs["j1"]
    # w1's zombie DONE is fenced out; w2's epoch-2 result is the truth
    assert job.state == JobState.FAILED
    assert job.worker == "w2" and job.epoch == 2
    assert job.error == "boom"


def test_fold_merged_duplicate_claims_are_idempotent():
    coordinator = [coordinator_submit("j1")]
    claim = {"event": "claim", "id": "j1", "worker": "w1", "epoch": 1}
    jobs = fold_merged(
        coordinator,
        {"w1": [claim, dict(claim)]},
        ValidationJob.from_dict,
    )
    job = jobs["j1"]
    assert job.state == JobState.RUNNING
    assert job.attempts == 1, "a replayed claim must not double-count"


def test_fold_merged_is_deterministic_across_partition_order():
    """Two racing same-epoch claims resolve by partition name, always."""
    coordinator = [coordinator_submit("j1")]
    claim_a = {"event": "claim", "id": "j1", "worker": "a", "epoch": 1}
    claim_b = {"event": "claim", "id": "j1", "worker": "b", "epoch": 1}
    one = fold_merged(coordinator, {"a": [claim_a], "b": [claim_b]},
                      ValidationJob.from_dict)
    coordinator = [coordinator_submit("j1")]
    two = fold_merged(coordinator, {"b": [claim_b], "a": [claim_a]},
                      ValidationJob.from_dict)
    assert one["j1"].worker == two["j1"].worker == "a"


def test_fold_merged_drops_torn_final_line_in_one_partition(tmp_path):
    """A worker killed mid-append tears only its own trailing line."""
    directory = JobDirectory(str(tmp_path)).ensure()
    coordinator = JobJournal(directory.coordinator_journal)
    coordinator.append(coordinator_submit("j1"))
    coordinator.close()
    partition_path = directory.worker_partition("w1")
    claim = json.dumps({"event": "claim", "id": "j1", "worker": "w1",
                        "epoch": 1})
    terminal = json.dumps({"event": "terminal", "id": "j1", "worker": "w1",
                           "epoch": 1, "state": "DONE"})
    with open(partition_path, "w", encoding="utf-8") as handle:
        handle.write(claim + "\n")
        handle.write(terminal[: len(terminal) // 2])  # crash mid-write
    streams = {
        name: read_events(path)
        for name, path in directory.partitions().items()
    }
    jobs = fold_merged(read_events(directory.coordinator_journal), streams,
                       ValidationJob.from_dict)
    job = jobs["j1"]
    # the claim survived, the torn terminal did not: the job is mid-run,
    # which is exactly what the reaper's lease check is for
    assert job.state == JobState.RUNNING
    assert job.epoch == 1 and job.worker == "w1"


def test_apply_worker_event_fences_stale_epochs():
    job = ValidationJob(id="j1", spec_text=SPEC)
    assert apply_worker_event(
        job, {"event": "claim", "id": "j1", "worker": "w1", "epoch": 1}
    )
    # a claim that skips an epoch, or repeats one, is refused
    assert not apply_worker_event(
        job, {"event": "claim", "id": "j1", "worker": "w2", "epoch": 3}
    )
    assert not apply_worker_event(
        job, {"event": "terminal", "id": "j1", "worker": "w2", "epoch": 1,
              "state": "DONE"}
    ), "a terminal from a different worker at the same epoch is refused"
    assert apply_worker_event(
        job, {"event": "terminal", "id": "j1", "worker": "w1", "epoch": 1,
              "state": "DONE"}
    )
    assert job.state == JobState.DONE


# ---------------------------------------------------------------------------
# The reaper: absorb, expire, re-queue, EXPIRED budget
# ---------------------------------------------------------------------------


def test_reaper_absorbs_external_result(tmp_path):
    clock = WallClock()
    service = shared_service(tmp_path, clock)
    job, __ = service.submit(spec=SPEC, sources=inline_sources())
    lease = simulate_claim(service, job)
    service.reaper_tick()
    assert job.state == JobState.RUNNING
    assert job.worker == "sim" and job.epoch == 1
    simulate_terminal(service, job, lease,
                      result={"verdict": "admit", "passed": True})
    summary = service.reaper_tick()
    assert summary["absorbed"] == 1
    assert job.state == JobState.DONE
    assert service.workers_payload()["workers"] == []  # sim never announced
    service.close(drain=False)


def test_lease_expiry_requeues_then_expires_on_budget(tmp_path):
    clock = WallClock()
    service = shared_service(tmp_path, clock, max_requeues=1)
    job, __ = service.submit(spec=SPEC, sources=inline_sources())

    simulate_claim(service, job, worker="crash-1")
    service.reaper_tick()
    assert job.state == JobState.RUNNING
    clock.advance(service.lease_ttl + 1.0)  # the worker is dead
    summary = service.reaper_tick()
    assert summary["requeued"] == 1 and summary["expired"] == 0
    assert job.state == JobState.QUEUED
    assert job.requeues == 1
    assert job.epoch == 1, "the re-queue keeps the epoch as the fence"

    # ticking again must not double-requeue (exactly-once accounting)
    service.reaper_tick()
    assert job.requeues == 1

    simulate_claim(service, job, worker="crash-2")
    service.reaper_tick()
    assert job.state == JobState.RUNNING and job.epoch == 2
    clock.advance(service.lease_ttl + 1.0)
    summary = service.reaper_tick()
    assert summary["expired"] == 1
    assert job.state == JobState.EXPIRED
    assert "retry budget exhausted" in job.error
    assert service.stats()["leases"]["expired_jobs"] == 1
    service.close(drain=False)


def test_zombie_result_after_requeue_is_fenced(tmp_path):
    clock = WallClock()
    service = shared_service(tmp_path, clock, max_requeues=2)
    job, __ = service.submit(spec=SPEC, sources=inline_sources())
    zombie_lease = simulate_claim(service, job, worker="zombie")
    service.reaper_tick()
    clock.advance(service.lease_ttl + 1.0)
    service.reaper_tick()
    assert job.state == JobState.QUEUED
    # the zombie wakes up and writes its result at the stale epoch
    simulate_terminal(service, job, zombie_lease, worker="zombie",
                      result={"verdict": "admit"}, release=False)
    service.reaper_tick()
    assert job.state == JobState.QUEUED, "stale-epoch terminal must be fenced"
    # the legitimate second attempt completes normally
    lease = simulate_claim(service, job, worker="rescuer")
    service.reaper_tick()
    simulate_terminal(service, job, lease, worker="rescuer",
                      result={"verdict": "admit"})
    service.reaper_tick()
    assert job.state == JobState.DONE and job.worker == "rescuer"
    assert job.requeues == 1 and job.attempts == 2
    service.close(drain=False)


def test_orphan_lease_without_claim_event_is_swept(tmp_path):
    """A worker that died between the lease file and the claim event."""
    clock = WallClock()
    service = shared_service(tmp_path, clock)
    job, __ = service.submit(spec=SPEC, sources=inline_sources())
    assert service.leases.try_claim(job.id, "ghost", 1) is not None
    clock.advance(service.lease_ttl + 1.0)
    service.reaper_tick()
    assert job.state == JobState.QUEUED
    assert job.requeues == 0, "no attempt started, no budget spent"
    assert service.leases.read(job.id) is None, "the orphan lease is gone"
    service.close(drain=False)


def test_inprocess_pool_claims_leases_too(tmp_path):
    """workers=N in shared mode competes under the same lease rules."""
    service = JobService(
        journal_dir=str(tmp_path / "jobsdir"), workers=1,
        lease_ttl=5.0, reaper_interval=0.05,
    )
    try:
        job, __ = service.submit(spec=SPEC, sources=inline_sources())
        done = service.wait(job.id, timeout=30)
        assert done.state == JobState.DONE
        assert done.epoch == 1
        assert done.worker == service.worker_id
        assert done.result["fingerprint"] == direct_fingerprint()
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Coordinator restart (shared-mode recovery)
# ---------------------------------------------------------------------------


def test_recovery_keeps_running_job_with_fresh_lease(tmp_path):
    clock = WallClock()
    first = shared_service(tmp_path, clock)
    job, __ = first.submit(spec=SPEC, sources=inline_sources())
    lease = simulate_claim(first, job)
    first.reaper_tick()
    first.journal.close()  # crash: no clean shutdown

    second = shared_service(tmp_path, clock)
    recovered = second.get(job.id)
    assert recovered.state == JobState.RUNNING, (
        "a fresh lease means the worker outlived the coordinator"
    )
    assert recovered.requeues == 0
    # ... and that worker's eventual result is still honored
    simulate_terminal(second, recovered, lease,
                      result={"verdict": "admit"})
    second.reaper_tick()
    assert recovered.state == JobState.DONE
    second.close(drain=False)


def test_recovery_requeues_running_job_with_stale_lease(tmp_path):
    clock = WallClock()
    first = shared_service(tmp_path, clock, max_requeues=1)
    job, __ = first.submit(spec=SPEC, sources=inline_sources())
    simulate_claim(first, job)
    first.reaper_tick()
    first.journal.close()

    clock.advance(first.lease_ttl + 1.0)  # everyone died
    second = shared_service(tmp_path, clock, max_requeues=1)
    recovered = second.get(job.id)
    assert recovered.state == JobState.QUEUED
    assert recovered.requeues == 1
    assert recovered.epoch == 1

    # a third restart past the budget parks it
    second.journal.close()
    partition = JobJournal(second.directory.worker_partition("sim2"))
    lease = second.leases.try_claim(job.id, "sim2", recovered.epoch + 1)
    partition.append({"event": "claim", "id": job.id, "worker": "sim2",
                      "epoch": lease.epoch, "at": clock()})
    partition.close()
    clock.advance(second.lease_ttl + 1.0)
    third = shared_service(tmp_path, clock, max_requeues=1)
    parked = third.get(job.id)
    assert parked.state == JobState.EXPIRED
    assert "retry budget exhausted" in parked.error
    third.close(drain=False)


# ---------------------------------------------------------------------------
# Completion webhooks
# ---------------------------------------------------------------------------


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def test_webhook_delivers_terminal_record(tmp_path):
    delivered = []
    service = JobService(
        journal_path=str(tmp_path / "journal.jsonl"), workers=1,
        webhook_post=lambda url, payload: delivered.append((url, payload)),
        webhook_base_delay=0.01,
    )
    try:
        job, __ = service.submit(
            spec=SPEC, sources=inline_sources(),
            callback_url="http://callback.example/hook",
        )
        service.wait(job.id, timeout=30)
        assert wait_until(lambda: delivered)
        url, payload = delivered[0]
        assert url == "http://callback.example/hook"
        # the webhook body IS the GET /jobs/<id> record
        assert payload["id"] == job.id
        assert payload["state"] == JobState.DONE
        assert payload["result"]["fingerprint"] == direct_fingerprint()
        assert wait_until(
            lambda: (service.get(job.id).webhook or {}).get("state")
            == "delivered"
        )
        assert service.webhooks.stats()["delivered"] == 1
    finally:
        service.close()


def test_webhook_retries_with_backoff_then_delivers():
    calls = []

    def flaky(url, payload):
        calls.append(url)
        if len(calls) < 3:
            raise OSError("connection refused")

    results = []
    dispatcher = WebhookDispatcher(
        post_fn=flaky, max_attempts=5, base_delay=0.01,
        on_result=lambda *args: results.append(args),
    )
    try:
        dispatcher.submit("j1", "http://x.example/", {"id": "j1"})
        assert wait_until(lambda: dispatcher.delivered == 1)
        assert len(calls) == 3
        assert results[-1][:2] == ("j1", "delivered")
    finally:
        dispatcher.close()


def test_webhook_dead_letters_after_budget():
    def always_down(url, payload):
        raise OSError("receiver answered HTTP 503")

    results = []
    dispatcher = WebhookDispatcher(
        post_fn=always_down, max_attempts=2, base_delay=0.01,
        on_result=lambda *args: results.append(args),
    )
    try:
        dispatcher.submit("j1", "http://down.example/", {"id": "j1"})
        assert wait_until(lambda: dispatcher.dead_lettered == 1)
        assert results[-1][:2] == ("j1", "dead-letter")
        parked = dispatcher.stats()["dead_letters"]
        assert parked[0]["job"] == "j1" and parked[0]["attempts"] == 2
        assert "503" in parked[0]["last_error"]
    finally:
        dispatcher.close()


def test_pending_webhook_survives_restart(tmp_path):
    """A delivery in flight at the crash re-enqueues from the journal."""
    journal_path = tmp_path / "journal.jsonl"
    job = ValidationJob(
        id="job-restart", spec_text=SPEC, state=JobState.DONE,
        callback_url="http://callback.example/hook",
        result={"verdict": "admit"},
        webhook={"state": "pending", "attempts": 0},
    )
    journal_path.write_text(
        json.dumps({"event": "submit", "job": job.to_dict()}) + "\n"
    )
    delivered = []
    service = JobService(
        journal_path=str(journal_path), workers=0,
        webhook_post=lambda url, payload: delivered.append(payload),
        webhook_base_delay=0.01,
    )
    try:
        assert wait_until(lambda: delivered)
        assert delivered[0]["id"] == "job-restart"
        assert wait_until(
            lambda: (service.get("job-restart").webhook or {}).get("state")
            == "delivered"
        )
    finally:
        service.close(drain=False)


def test_callback_url_is_validated(tmp_path):
    service = shared_service(tmp_path)
    with pytest.raises(ValueError, match="http"):
        service.submit(spec=SPEC, sources=inline_sources(),
                       callback_url="ftp://nope")
    with pytest.raises(ValueError, match="callback_url"):
        service.submit_payload({"spec": SPEC, "callback_url": 7})
    service.close(drain=False)


# ---------------------------------------------------------------------------
# Chaos: SIGKILL a worker process mid-job
# ---------------------------------------------------------------------------


def spawn_worker(journal_dir, worker_id, env_extra=None, **flags):
    source_root = os.path.join(os.path.dirname(__file__), "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (os.path.abspath(source_root), env.get("PYTHONPATH", ""))
        if part
    )
    env.update(env_extra or {})
    command = [
        sys.executable, "-c",
        "import sys; from repro.console.cli import main; "
        "sys.exit(main(sys.argv[1:]))",
        "worker", "--journal", str(journal_dir), "--id", worker_id,
        "--lease-ttl", "0.6", "--poll", "0.02",
    ]
    for flag, value in flags.items():
        command += [f"--{flag.replace('_', '-')}", str(value)]
    return subprocess.Popen(command, env=env)


def test_sigkilled_worker_requeues_exactly_once(tmp_path):
    """The acceptance property: kill -9 mid-job loses nothing, duplicates
    nothing, and the eventual verdict matches an undisturbed run."""
    hold_file = tmp_path / "hold"
    hold_file.write_text("")
    service = JobService(
        journal_dir=str(tmp_path / "jobsdir"), workers=0,
        lease_ttl=0.6, reaper_interval=0.05, max_requeues=2,
    )
    victim = rescuer = None
    try:
        victim = spawn_worker(
            service.directory.root, "victim",
            env_extra={"CONFVALLEY_WORKER_HOLD_FILE": str(hold_file)},
        )
        job, __ = service.submit(spec=SPEC, sources=inline_sources())
        assert wait_until(
            lambda: service.get(job.id).state == JobState.RUNNING, timeout=30
        ), "the victim never claimed the job"
        assert service.get(job.id).worker == "victim"

        os.kill(victim.pid, signal.SIGKILL)  # mid-job, lease still live
        victim.wait(timeout=10)
        hold_file.unlink()

        rescuer = spawn_worker(service.directory.root, "rescuer", max_jobs=1)
        done = service.wait(job.id, timeout=60)

        assert done.state == JobState.DONE
        assert done.worker == "rescuer"
        assert done.requeues == 1, "re-queued exactly once"
        assert done.attempts == 2
        assert done.epoch == 2, "the rescue ran under a fenced new epoch"
        assert done.result["fingerprint"] == direct_fingerprint()
        rescuer.wait(timeout=30)
    finally:
        for process in (victim, rescuer):
            if process is not None and process.poll() is None:
                process.kill()
                process.wait(timeout=10)
        service.close(drain=False)


def test_external_worker_in_thread_round_trip(tmp_path):
    """The worker loop itself (no subprocess): claim → execute → absorb."""
    service = JobService(
        journal_dir=str(tmp_path / "jobsdir"), workers=0,
        lease_ttl=5.0, reaper_interval=0.05,
    )
    worker = ExternalWorker(
        service.directory.root, worker_id="threaded", poll=0.02,
        lease_ttl=5.0,
    )
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    try:
        service.register_spec("service", SPEC)
        job, __ = service.submit(
            spec_name="service", sources=inline_sources()
        )
        done = service.wait(job.id, timeout=30)
        assert done.state == JobState.DONE
        assert done.worker == "threaded"
        assert done.result["fingerprint"] == direct_fingerprint()
        fleet = service.workers_payload()
        row = next(r for r in fleet["workers"] if r["id"] == "threaded")
        assert row["alive"] and row["counts"] == {"claims": 1, "done": 1}
    finally:
        worker.stop()
        thread.join(timeout=10)
        service.close(drain=False)
