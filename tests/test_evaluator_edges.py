"""Evaluator and language edge cases beyond the core semantics tests."""

from __future__ import annotations

import pytest

from repro import ValidationSession
from repro.cpl import parse
from repro.errors import CPLSemanticError, CPLSyntaxError, EvaluationError
from repro.runtime import StaticRuntime


def session_for(make_store, pairs, **kwargs):
    return ValidationSession(store=make_store(pairs), **kwargs)


class TestDomainEdges:
    def test_transform_domain_with_extra_args(self, make_store):
        session = session_for(make_store, [("A.Name", "a-b-c")])
        report = session.validate("replace($Name, '-', ':') -> == 'a:b:c'")
        assert report.passed

    def test_string_concat_plus(self, make_store):
        session = session_for(make_store, [("A.Host", "web"), ("A.Tld", ".example.com")])
        assert session.validate("$Host + $Tld -> == 'web.example.com'").passed

    def test_division_by_zero_raises(self, make_store):
        session = session_for(make_store, [("A.x", "4"), ("A.y", "0")])
        with pytest.raises(EvaluationError):
            session.validate("$x / $y -> int")

    def test_float_division_result(self, make_store):
        session = session_for(make_store, [("A.x", "7"), ("A.y", "2")])
        assert session.validate("$x / $y -> == 3.5").passed

    def test_integerized_division(self, make_store):
        session = session_for(make_store, [("A.x", "8"), ("A.y", "2")])
        assert session.validate("$x / $y -> == 4").passed

    def test_unknown_env_fact_raises(self, make_store):
        session = session_for(make_store, [("A.K", "v")])
        with pytest.raises(EvaluationError):
            session.validate("$env.nonsuch -> nonempty")

    def test_multi_arg_domain_in_predicate_arg_requires_single_value(self, make_store):
        session = session_for(make_store, [
            ("A.K", "x"), ("P::1.Pat", "a"), ("P::2.Pat", "b"),
        ])
        with pytest.raises(EvaluationError):
            session.validate("$K -> match($Pat)")

    def test_single_valued_domain_as_predicate_arg(self, make_store):
        session = session_for(make_store, [("A.K", "abc"), ("P.Pat", "b")])
        assert session.validate("$K -> match($Pat)").passed

    def test_load_inside_evaluator_rejected(self, make_store):
        from repro.core import Evaluator

        session = session_for(make_store, [("A.K", "v")])
        program = parse("load 'ini' 'x.ini'")
        evaluator = Evaluator(session.store)
        with pytest.raises(CPLSemanticError):
            evaluator.run(program.statements)


class TestPredicateEdges:
    def test_order_predicate_via_cpl(self, make_store):
        session = session_for(make_store, [
            ("A::1.Step", "1"), ("A::2.Step", "5"), ("A::3.Step", "3"),
        ])
        report = session.validate("$Step -> order")
        assert len(report.violations) == 1

    def test_order_desc_argument(self, make_store):
        session = session_for(make_store, [
            ("A::1.Step", "9"), ("A::2.Step", "5"), ("A::3.Step", "1"),
        ])
        assert session.validate("$Step -> order('desc')").passed

    def test_list_value_relation_checks_all_elements(self, make_store):
        session = session_for(make_store, [("A.Vals", "3,4,5")])
        assert session.validate("$Vals -> split(',') -> <= 5").passed
        assert not session.validate("$Vals -> split(',') -> <= 4").passed

    def test_set_membership_on_list_value(self, make_store):
        session = session_for(make_store, [("A.Tags", "red,blue")])
        assert session.validate("$Tags -> split(',') -> {'red', 'blue', 'green'}").passed
        assert not session.validate("$Tags -> split(',') -> {'red'}").passed

    def test_exactly_one_relation(self, make_store):
        session = session_for(make_store, [
            ("A::1.Role", "primary"), ("A::2.Role", "backup"), ("A::3.Role", "backup"),
        ])
        assert session.validate("$Role -> one == 'primary'").passed
        assert not session.validate("$Role -> one == 'backup'").passed

    def test_quantified_compound_is_item_level(self, make_store):
        session = session_for(make_store, [("A::1.K", ""), ("A::2.K", "5")])
        assert session.validate("$K -> exists (nonempty & int)").passed

    def test_not_failure_message(self, make_store):
        session = session_for(make_store, [("A.K", "UtilityFabric01")])
        report = session.validate("$K -> ~match('UtilityFabric')")
        assert len(report.violations) == 1
        assert "must not satisfy" in report.violations[0].message

    def test_double_negation(self, make_store):
        session = session_for(make_store, [("A.K", "5")])
        assert session.validate("$K -> ~~int").passed

    def test_length_predicate_via_cpl(self, make_store):
        session = session_for(make_store, [("A.Code", "ab12")])
        assert session.validate("$Code -> length(2, 6)").passed
        assert not session.validate("$Code -> length(5, 9)").passed


class TestScopingEdges:
    def test_namespace_inside_compartment(self, make_store):
        session = session_for(make_store, [
            ("Cluster::C1.net.StartIP", "10.0.0.1"),
            ("Cluster::C1.net.EndIP", "10.0.0.9"),
            ("Cluster::C2.net.StartIP", "10.0.1.1"),
            ("Cluster::C2.net.EndIP", "10.0.0.2"),
        ])
        spec = "compartment Cluster {\nnamespace net {\n$StartIP <= $EndIP\n}\n}"
        report = session.validate(spec)
        assert len(report.violations) == 1
        assert "C2" in report.violations[0].key

    def test_compartment_with_named_pattern(self, make_store):
        session = session_for(make_store, [
            ("Cluster::prod-1.Flag", "x"),
            ("Cluster::test-1.Flag", ""),
        ])
        # compartment pattern with a wildcard qualifier
        spec = "compartment Cluster::prod* {\n$Flag -> nonempty\n}"
        assert session.validate(spec).passed

    def test_dotted_compartment_name(self, make_store):
        session = session_for(make_store, [
            ("DC::D1.Rack::R1.Loc", "1"),
            ("DC::D1.Rack::R2.Loc", "1"),
        ])
        # Rack alone pairs per rack; DC.Rack is equivalent here
        report = session.validate("compartment DC.Rack {\n$Loc -> unique\n}")
        assert report.passed

    def test_variable_inside_compartment(self, make_store):
        session = session_for(make_store, [
            ("Want.WantedMode", "fast"),
            ("Cluster::C1.Mode", "fast"),
            ("Cluster::C2.Mode", "fast"),
        ])
        spec = "compartment Cluster {\n$Mode -> == $WantedMode\n}"
        assert session.validate(spec).passed

    def test_get_inside_compartment(self, make_store):
        session = session_for(make_store, [
            ("Cluster::C1.IP", "10.0.0.1"),
            ("Cluster::C2.IP", "10.0.0.2"),
        ])
        report = session.validate("compartment Cluster {\nget $IP\n}")
        assert len(report.notes) == 2


class TestSyntaxEdges:
    def test_bangbang_requires_string(self):
        with pytest.raises(CPLSyntaxError):
            parse("$K -> int !! 42")

    def test_single_bang_requires_continuation(self):
        with pytest.raises(CPLSyntaxError):
            parse("$K -> int ! 'x'")

    def test_empty_program(self):
        assert parse("").statements == ()

    def test_comment_only_program(self):
        assert parse("// nothing\n/* here */\n").statements == ()

    def test_unicode_everything(self, make_store):
        session = session_for(make_store, [
            ("A.lo", "1"), ("A.hi", "9"), ("A.K", "5"),
        ])
        report = session.validate("$lo ≤ $hi\n$K → int\n∃ $K == '5'")
        assert report.passed

    def test_stray_rbrace(self):
        with pytest.raises(CPLSyntaxError):
            parse("}")

    def test_if_without_parens(self):
        with pytest.raises(CPLSyntaxError):
            parse("if $a == 'x' $b -> int")


class TestRuntimeEdges:
    def test_env_in_condition(self, make_store):
        runtime = StaticRuntime(environment={"os": "Linux"})
        session = session_for(make_store, [("A.Path", "")], runtime=runtime)
        spec = "if ($env.os == 'Windows') $Path -> nonempty"
        assert session.validate(spec).passed   # condition false on Linux

    def test_reachable_via_cpl(self, make_store):
        runtime = StaticRuntime(reachable={"10.0.0.1:443"})
        session = session_for(
            make_store, [("A.Endpoint", "10.0.0.1:443")], runtime=runtime
        )
        assert session.validate("$Endpoint -> reachable").passed
