"""Reports (§4.4, §6.3) and validation policies (§4.3)."""

from __future__ import annotations

import pytest

from repro import Severity, ValidationPolicy, ValidationReport, ValidationSession, Violation
from repro.errors import PolicyError


def violation(key="A.K", constraint="int", severity=Severity.ERROR):
    return Violation(
        spec_text="$K -> int",
        spec_line=1,
        constraint=constraint,
        key=key,
        value="x",
        message=f"value 'x' of {key} is not a valid {constraint}",
        severity=severity,
    )


class TestReport:
    def test_pass_fail(self):
        report = ValidationReport()
        assert report.passed
        report.add(violation())
        assert not report.passed

    def test_grouping_by_constraint(self):
        report = ValidationReport()
        report.add(violation(constraint="int"))
        report.add(violation(constraint="int", key="A.K2"))
        report.add(violation(constraint="unique"))
        groups = report.by_constraint()
        assert len(groups["int"]) == 2
        assert len(groups["unique"]) == 1

    def test_suspicious_constraints(self):
        report = ValidationReport()
        for index in range(12):
            report.add(violation(key=f"A::{index}.K", constraint="range"))
        report.add(violation(constraint="unique"))
        assert report.suspicious_constraints(threshold=10) == ["range"]

    def test_render_includes_counts_and_limit(self):
        report = ValidationReport(specs_evaluated=3, instances_checked=30)
        for index in range(5):
            report.add(violation(key=f"A::{index}.K"))
        text = report.render(limit=2)
        assert "5 violation(s)" in text
        assert "and 3 more" in text

    def test_render_pass(self):
        assert "PASS" in ValidationReport().render()

    def test_merge(self):
        a = ValidationReport(specs_evaluated=2, instances_checked=5)
        b = ValidationReport(specs_evaluated=3, instances_checked=7)
        b.add(violation())
        a.merge(b)
        assert a.specs_evaluated == 5
        assert a.instances_checked == 12
        assert len(a.violations) == 1

    def test_by_spec(self):
        report = ValidationReport()
        report.add(violation())
        report.add(violation(key="A.K2"))
        assert len(report.by_spec()[(1, "$K -> int")]) == 2


class TestPolicy:
    def test_bad_severity_rejected(self):
        with pytest.raises(PolicyError):
            ValidationPolicy(severities={"X": "fatal"})

    def test_severity_assignment(self, make_store):
        policy = ValidationPolicy(severities={"SecretKey": Severity.CRITICAL})
        session = ValidationSession(
            store=make_store([("A.SecretKey", ""), ("A.Other", "")]), policy=policy
        )
        report = session.validate("$SecretKey -> nonempty\n$Other -> nonempty")
        by_key = {v.key: v.severity for v in report.violations}
        assert by_key["A.SecretKey"] == Severity.CRITICAL
        assert by_key["A.Other"] == Severity.ERROR

    def test_stop_on_first_violation(self, make_store):
        policy = ValidationPolicy(stop_on_first_violation=True)
        session = ValidationSession(
            store=make_store([("A.K1", "x"), ("A.K2", "y")]),
            policy=policy,
            optimize=False,
        )
        report = session.validate("$K1 -> int\n$K2 -> int")
        assert len(report.violations) == 1
        assert report.stopped_early

    def test_priority_ordering(self, make_store):
        policy = ValidationPolicy(priorities={"SecretKey": 10})
        session = ValidationSession(
            store=make_store([("A.SecretKey", ""), ("A.Minor", "x")]),
            policy=policy,
            optimize=False,
        )
        # stop-on-first + priority: the critical spec runs (and fails) first
        policy.stop_on_first_violation = True
        report = session.validate("$Minor -> int\n$SecretKey -> nonempty")
        assert report.violations[0].key == "A.SecretKey"

    def test_on_violation_callback(self, make_store):
        seen = []
        policy = ValidationPolicy(on_violation=seen.append)
        session = ValidationSession(
            store=make_store([("A.K", "x")]), policy=policy
        )
        session.validate("$K -> int")
        assert len(seen) == 1
        assert seen[0].key == "A.K"

    def test_priority_of(self):
        policy = ValidationPolicy(priorities={"SecretKey": 10, "Timeout": 5})
        assert policy.priority_of("$A.SecretKey -> nonempty") == 10
        assert policy.priority_of("$A.Timeout -> int") == 5
        assert policy.priority_of("$A.Other -> int") == 0
