"""Cross-cutting system properties (metamorphic + invariants)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConfigStore, ValidationSession, typesys
from repro.repository.keys import parse_instance_key
from repro.repository.model import ConfigInstance


def store_of(pairs):
    store = ConfigStore()
    for key, value in pairs:
        store.add(ConfigInstance(parse_instance_key(key), value, "t"))
    return store


SPEC = """
$Cluster.Timeout -> int & [1, 60]
$Cluster.Mode -> {'fast', 'safe'}
$Node.IP -> ip & unique
compartment Cluster {
  $Floor <= $Ceiling
}
"""

_CLUSTER_VALUES = {
    "Timeout": ["30", "99", "x", ""],
    "Mode": ["fast", "safe", "fsat"],
    "Floor": ["1", "10"],
    "Ceiling": ["5", "20"],
}


@st.composite
def _cluster_pairs(draw):
    pairs = []
    for index in range(draw(st.integers(min_value=0, max_value=3))):
        for param, values in _CLUSTER_VALUES.items():
            pairs.append((f"Cluster::C{index}.{param}", draw(st.sampled_from(values))))
    for index in range(draw(st.integers(min_value=0, max_value=3))):
        pairs.append((f"Node::N{index}.IP",
                      draw(st.sampled_from(["10.0.0.1", "10.0.0.2", "bad"]))))
    return pairs


def violations_of(pairs):
    session = ValidationSession(store=store_of(pairs))
    report = session.validate(SPEC)
    return sorted((v.key, v.value, v.constraint) for v in report.violations)


@given(_cluster_pairs())
@settings(max_examples=80, deadline=None)
def test_property_locality_unrelated_instances_dont_matter(pairs):
    """Adding instances of classes no spec mentions changes nothing."""
    baseline = violations_of(pairs)
    noisy = pairs + [
        ("Unrelated::U1.Comment", "free text"),
        ("Other.Scope.Deep.Key", ""),
        ("Cluster::C0.UnspecifiedParam", "whatever"),
    ]
    assert violations_of(noisy) == baseline


@given(_cluster_pairs())
@settings(max_examples=60, deadline=None)
def test_property_spec_order_irrelevant(pairs):
    """Reordering independent top-level specs preserves the violation set."""
    lines = [
        "$Cluster.Timeout -> int & [1, 60]",
        "$Cluster.Mode -> {'fast', 'safe'}",
        "$Node.IP -> ip & unique",
    ]
    store = store_of(pairs)

    def run(text):
        report = ValidationSession(store=store, optimize=False).validate(text)
        return sorted((v.key, v.value) for v in report.violations)

    forward = run("\n".join(lines))
    backward = run("\n".join(reversed(lines)))
    assert forward == backward


@given(_cluster_pairs())
@settings(max_examples=60, deadline=None)
def test_property_validation_is_idempotent(pairs):
    """Validating twice on the same session gives the same outcome."""
    session = ValidationSession(store=store_of(pairs))
    first = sorted((v.key, v.value) for v in session.validate(SPEC).violations)
    second = sorted((v.key, v.value) for v in session.validate(SPEC).violations)
    assert first == second


@given(st.text(max_size=40))
@settings(max_examples=300, deadline=None)
def test_property_detect_type_total_and_closed(value):
    """detect_type never raises and returns a known type name."""
    name = typesys.detect_type(value)
    if name.startswith("list<"):
        assert name.endswith(">")
        assert name[5:-1] in typesys.SCALAR_TYPES
    else:
        assert name in typesys.SCALAR_TYPES


@given(st.sampled_from([
    "5", "true", "10.0.0.1", "10.0.0.0/24", "a@b.co", "/var", "30s",
    "deadbeef-dead-beef-dead-beefdeadbeef",
]))
def test_property_detected_type_predicate_accepts(value):
    """The predicate named after a detected scalar type accepts the value."""
    from repro.predicates import get_predicate

    mapping = {
        "ipv4": "ip", "ip_range": "iprange",
    }
    name = typesys.detect_type(value, allow_list=False)
    predicate = mapping.get(name, name)
    assert get_predicate(predicate).fn(value) is True
