"""Cross-source conflict detection on the unified store."""

from __future__ import annotations

from repro import ValidationSession


def session_with(sources):
    session = ValidationSession()
    for source_name, text in sources:
        session.load_text("keyvalue", text, source=source_name)
    return session


class TestCrossSourceConflicts:
    def test_conflicting_sources_detected(self):
        session = session_with([
            ("controller.ini", "auth.SecretKey = k-new\n"),
            ("replica.ini", "auth.SecretKey = k-stale\n"),
        ])
        conflicts = session.store.cross_source_conflicts()
        assert len(conflicts) == 1
        logical, members = conflicts[0]
        assert logical == "auth.SecretKey"
        assert {m.source for m in members} == {"controller.ini", "replica.ini"}
        assert {m.value for m in members} == {"k-new", "k-stale"}

    def test_agreeing_sources_not_flagged(self):
        session = session_with([
            ("a", "auth.SecretKey = same\n"),
            ("b", "auth.SecretKey = same\n"),
        ])
        assert session.store.cross_source_conflicts() == []

    def test_same_source_duplicates_not_flagged(self):
        # one source legitimately repeating a multi-valued key
        session = session_with([
            ("a", "ProxyIPs = 10.0.0.1\nProxyIPs = 10.0.0.2\n"),
        ])
        assert session.store.cross_source_conflicts() == []

    def test_distinct_keys_not_flagged(self):
        session = session_with([
            ("a", "x.K = 1\n"), ("b", "y.K = 2\n"),
        ])
        assert session.store.cross_source_conflicts() == []

    def test_three_way_conflict(self):
        session = session_with([
            ("a", "svc.Endpoint = one\n"),
            ("b", "svc.Endpoint = two\n"),
            ("c", "svc.Endpoint = three\n"),
        ])
        conflicts = session.store.cross_source_conflicts()
        assert len(conflicts) == 1
        assert len(conflicts[0][1]) == 3

    def test_members_ordered_by_load(self):
        session = session_with([
            ("first", "svc.K = a\n"),
            ("second", "svc.K = b\n"),
        ])
        __, members = session.store.cross_source_conflicts()[0]
        assert [m.source for m in members] == ["first", "second"]
