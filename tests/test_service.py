"""Continuous validation service (paper §3.2): change detection, history,
pass/fail transitions."""

from __future__ import annotations

import os

import pytest

from repro import ScanResult, SourceSpec, ValidationService


@pytest.fixture
def workspace(tmp_path):
    spec = tmp_path / "specs.cpl"
    spec.write_text("$fabric.Timeout -> int & [1, 60]\n")
    config = tmp_path / "prod.ini"
    config.write_text("[fabric]\nTimeout = 30\n")
    return tmp_path, spec, config


def make_service(spec, config, **kwargs):
    return ValidationService(
        str(spec), [SourceSpec("ini", str(config))], **kwargs
    )


def rewrite(path, text):
    path.write_text(text)
    # ensure a strictly newer mtime even on coarse filesystems
    stat = os.stat(path)
    os.utime(path, ns=(stat.st_atime_ns + 1_000_000, stat.st_mtime_ns + 1_000_000))


class TestScanning:
    def test_first_scan_validates(self, workspace):
        __, spec, config = workspace
        service = make_service(spec, config)
        result = service.scan()
        assert result is not None
        assert result.passed
        assert service.current_status is True

    def test_steady_state_skips_validation(self, workspace):
        __, spec, config = workspace
        service = make_service(spec, config)
        service.scan()
        assert service.scan() is None
        assert service.scan() is None
        assert len(service.history) == 1

    def test_config_change_triggers_revalidation(self, workspace):
        __, spec, config = workspace
        service = make_service(spec, config)
        service.scan()
        rewrite(config, "[fabric]\nTimeout = 999\n")
        result = service.scan()
        assert result is not None
        assert not result.passed
        assert str(config) in result.changed_paths

    def test_spec_change_triggers_revalidation(self, workspace):
        __, spec, config = workspace
        service = make_service(spec, config)
        service.scan()
        rewrite(spec, "$fabric.Timeout -> int & [1, 10]\n")
        result = service.scan()
        assert result is not None
        assert not result.passed   # 30 now out of [1, 10]

    def test_force_scan(self, workspace):
        __, spec, config = workspace
        service = make_service(spec, config)
        service.scan()
        assert service.scan(force=True) is not None

    def test_run_once_always_validates(self, workspace):
        __, spec, config = workspace
        service = make_service(spec, config)
        first = service.run_once()
        second = service.run_once()
        assert first.sequence == 1 and second.sequence == 2


class TestTransitions:
    def test_pass_to_fail_transition_fires_callback(self, workspace):
        __, spec, config = workspace
        events: list[ScanResult] = []
        service = make_service(spec, config, on_transition=events.append)
        service.scan()
        rewrite(config, "[fabric]\nTimeout = nope\n")
        service.scan()
        assert len(events) == 1
        assert events[0].transitioned
        assert not events[0].passed

    def test_fail_to_pass_transition(self, workspace):
        __, spec, config = workspace
        events = []
        service = make_service(spec, config, on_transition=events.append)
        rewrite(config, "[fabric]\nTimeout = nope\n")
        service.scan()
        rewrite(config, "[fabric]\nTimeout = 30\n")
        service.scan()
        assert len(events) == 1
        assert events[0].passed

    def test_no_callback_without_transition(self, workspace):
        __, spec, config = workspace
        events = []
        service = make_service(spec, config, on_transition=events.append)
        service.scan()
        rewrite(config, "[fabric]\nTimeout = 45\n")   # still passing
        service.scan()
        assert events == []


class TestHistory:
    def test_history_accumulates(self, workspace):
        __, spec, config = workspace
        service = make_service(spec, config)
        for timeout in (30, 40, 50):
            rewrite(config, f"[fabric]\nTimeout = {timeout}\n")
            service.scan()
        assert [r.sequence for r in service.history] == [1, 2, 3]

    def test_history_bounded(self, workspace):
        __, spec, config = workspace
        service = make_service(spec, config, history_limit=2)
        for index in range(4):
            service.run_once()
        assert len(service.history) == 2
        assert service.history[-1].sequence == 4

    def test_missing_source_surfaces_as_error(self, workspace):
        tmp_path, spec, config = workspace
        service = ValidationService(
            str(spec), [SourceSpec("ini", str(tmp_path / "gone.ini"))]
        )
        with pytest.raises(OSError):
            service.run_once()

    def test_status_none_before_first_scan(self, workspace):
        __, spec, config = workspace
        assert make_service(spec, config).current_status is None
