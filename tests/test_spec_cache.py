"""Compiled-spec cache: hit/miss semantics, invalidation, service reuse.

The contract (``docs/PERFORMANCE.md``): compilation is memoized on
``(spec text hash, compiler options)``; data changes never invalidate;
text or option changes always do; programs with ``load``/``include``
commands are never cached.  The service-level guarantee — a scan where
only data changed performs **zero recompiles** — is asserted by counting
actual ``parse()`` calls.
"""

from __future__ import annotations

import pytest

import repro.core.session as session_module
from repro import (
    SourceSpec,
    SpecCache,
    ValidationService,
    ValidationSession,
)
from repro.core.compiler import CompilerOptions


@pytest.fixture
def counted_parse(monkeypatch):
    """Count every CPL parse the session layer performs."""
    calls = []
    real_parse = session_module.parse

    def counting(text):
        calls.append(text)
        return real_parse(text)

    monkeypatch.setattr(session_module, "parse", counting)
    return calls


def make_session(cache, **kwargs):
    session = ValidationSession(spec_cache=cache, **kwargs)
    session.load_text("ini", "[fabric]\nTimeout = 30\nRetries = 3\n")
    return session


SPEC = "$fabric.Timeout -> int & [1, 60]\n$fabric.Retries -> int\n"


class TestCacheSemantics:
    def test_second_compile_is_a_hit(self, counted_parse):
        cache = SpecCache()
        session = make_session(cache)
        first = session.validate(SPEC)
        parses_after_first = len(counted_parse)
        second = session.validate(SPEC)
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert len(counted_parse) == parses_after_first  # no re-parse
        assert first.cache_misses == 1 and first.cache_hits == 0
        assert second.cache_hits == 1 and second.cache_misses == 0
        assert second.fingerprint() == first.fingerprint()

    def test_cache_shared_across_sessions(self):
        cache = SpecCache()
        make_session(cache).validate(SPEC)
        report = make_session(cache).validate(SPEC)
        assert cache.stats.hits == 1
        assert report.passed

    def test_text_change_misses(self):
        cache = SpecCache()
        session = make_session(cache)
        session.validate(SPEC)
        session.validate(SPEC + "$fabric.Timeout -> nonempty\n")
        assert cache.stats.hits == 0 and cache.stats.misses == 2

    def test_compiler_options_are_part_of_the_key(self):
        cache = SpecCache()
        make_session(cache).validate(SPEC)
        make_session(
            cache, compiler_options=CompilerOptions(aggregate_domains=False)
        ).validate(SPEC)
        make_session(cache, optimize=False).validate(SPEC)
        assert cache.stats.hits == 0 and cache.stats.misses == 3

    def test_load_command_is_never_cached(self, tmp_path):
        config = tmp_path / "extra.ini"
        config.write_text("[extra]\nPort = 8080\n")
        text = f"load 'ini' '{config}'\n$extra.Port -> port\n"
        cache = SpecCache()
        session = make_session(cache, base_dir=str(tmp_path))
        session.validate(text)
        session.validate(text)
        assert cache.stats.hits == 0
        assert cache.stats.uncacheable == 2
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = SpecCache(max_entries=2)
        session = make_session(cache)
        for index in range(3):
            session.validate(f"$fabric.Timeout -> int & [1, {60 + index}]\n")
        assert len(cache) == 2
        assert cache.stats.evictions == 1

    def test_cached_statements_are_reusable(self):
        """Cache returns shared immutable statements; evaluation must not
        corrupt them for the next user."""
        cache = SpecCache()
        session = make_session(cache)
        first = session.validate(SPEC)
        for __ in range(3):
            assert session.validate(SPEC).fingerprint() == first.fingerprint()


class TestServiceIntegration:
    @pytest.fixture
    def workspace(self, tmp_path):
        spec = tmp_path / "specs.cpl"
        spec.write_text(SPEC)
        config = tmp_path / "prod.ini"
        config.write_text("[fabric]\nTimeout = 30\nRetries = 3\n")
        return spec, config

    def test_scan_without_spec_change_skips_recompile(
        self, workspace, counted_parse
    ):
        spec, config = workspace
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        service.run_once()
        parses_after_first = len(counted_parse)
        assert service.cache_stats.misses == 1
        result = service.scan(force=True)  # nothing changed on disk
        assert result is not None
        assert service.cache_stats.hits == 1
        assert len(counted_parse) == parses_after_first  # zero recompiles
        assert result.report.cache_hits == 1

    def test_data_change_still_hits_spec_cache(self, workspace, counted_parse):
        spec, config = workspace
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        service.run_once()
        parses_after_first = len(counted_parse)
        config.write_text("[fabric]\nTimeout = 99\nRetries = 3\n")
        import os

        stat = os.stat(config)
        os.utime(
            config,
            ns=(stat.st_atime_ns + 1_000_000, stat.st_mtime_ns + 1_000_000),
        )
        result = service.scan()
        assert result is not None and not result.passed  # 99 out of range
        assert service.cache_stats.hits == 1  # spec text unchanged → cached
        assert len(counted_parse) == parses_after_first

    def test_spec_change_invalidates(self, workspace):
        spec, config = workspace
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        service.run_once()
        import os

        spec.write_text(SPEC + "$fabric.Retries -> [0, 5]\n")
        stat = os.stat(spec)
        os.utime(
            spec, ns=(stat.st_atime_ns + 1_000_000, stat.st_mtime_ns + 1_000_000)
        )
        result = service.scan()
        assert result is not None
        assert service.cache_stats.misses == 2  # recompiled, as it must

    def test_shared_cache_can_be_injected(self, workspace):
        spec, config = workspace
        shared = SpecCache()
        first = ValidationService(
            str(spec), [SourceSpec("ini", str(config))], spec_cache=shared
        )
        second = ValidationService(
            str(spec), [SourceSpec("ini", str(config))], spec_cache=shared
        )
        first.run_once()
        second.run_once()
        assert shared.stats.hits == 1  # second service reused first's compile
