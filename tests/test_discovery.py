"""Trie vs naive instance discovery (paper §5.2): equivalence + caching."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.repository import NaiveIndex, TrieIndex
from repro.repository.keys import InstanceKey, InstanceSegment, parse_pattern
from repro.repository.model import ConfigInstance


def build_indexes(keys):
    trie, naive = TrieIndex(), NaiveIndex()
    for index, key in enumerate(keys):
        instance = ConfigInstance(key, f"v{index}", "test")
        trie.add(instance)
        naive.add(instance)
    return trie, naive


def sample_keys():
    keys = []
    for group in ("G1", "G2"):
        for cloud_index, cloud in enumerate(("CA", "CB"), start=1):
            for tenant_index, tenant in enumerate(("A", "B"), start=1):
                for param in ("SecretKey", "ProxyIP", "Timeout"):
                    keys.append(
                        InstanceKey.build(
                            ("CloudGroup", group),
                            ("Cloud", cloud, cloud_index),
                            ("Tenant", tenant, tenant_index),
                            param,
                        )
                    )
    keys.append(InstanceKey.build(("Fabric", "F1"), "Timeout"))
    keys.append(InstanceKey.build("GlobalFlag"))
    return keys


PATTERNS = [
    "SecretKey",
    "Tenant.SecretKey",
    "Cloud.Tenant.SecretKey",
    "CloudGroup::G1.Cloud.Tenant.SecretKey",
    "Cloud::CA.Tenant.SecretKey",
    "Cloud[1].Tenant::B.SecretKey",
    "*.SecretKey",
    "*IP",
    "Timeout",
    "Fabric.Timeout",
    "NoSuchKey",
    "Cloud::Nope.Tenant.SecretKey",
    "*",
]


class TestEquivalence:
    @pytest.mark.parametrize("pattern_text", PATTERNS)
    def test_trie_equals_naive(self, pattern_text):
        trie, naive = build_indexes(sample_keys())
        pattern = parse_pattern(pattern_text)
        got_trie = {i.key.render() for i in trie.query(pattern)}
        got_naive = {i.key.render() for i in naive.query(pattern)}
        assert got_trie == got_naive

    def test_results_are_correct(self):
        trie, __ = build_indexes(sample_keys())
        results = trie.query(parse_pattern("Cloud::CA.Tenant.SecretKey"))
        assert len(results) == 4  # 2 groups × 2 tenants
        for instance in results:
            assert instance.key.leaf_name == "SecretKey"


class TestCaching:
    def test_repeat_query_hits_cache(self):
        trie, __ = build_indexes(sample_keys())
        pattern = parse_pattern("Tenant.SecretKey")
        first = trie.query(pattern)
        hits_before = trie.cache_hits
        second = trie.query(pattern)
        assert trie.cache_hits == hits_before + 1
        assert first == second

    def test_mutation_invalidates_cache(self):
        trie, __ = build_indexes(sample_keys())
        pattern = parse_pattern("GlobalFlag")
        assert len(trie.query(pattern)) == 1
        trie.add(ConfigInstance(InstanceKey.build("GlobalFlag2"), "x", "t"))
        # re-query still correct after invalidation
        assert len(trie.query(pattern)) == 1
        assert len(trie.query(parse_pattern("GlobalFlag2"))) == 1

    def test_len_and_iteration(self):
        keys = sample_keys()
        trie, naive = build_indexes(keys)
        assert len(trie) == len(keys)
        assert len(naive) == len(keys)
        assert {i.key.render() for i in trie.instances()} == {
            i.key.render() for i in naive.instances()
        }


# ---------------------------------------------------------------------------
# Property: trie and naive agree on random key sets and random patterns
# ---------------------------------------------------------------------------

_names = st.sampled_from(["A", "B", "C", "K", "IP", "Key", "Port"])
_quals = st.one_of(st.none(), st.sampled_from(["x", "y", "z"]))


@st.composite
def _random_keys(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    keys = []
    for __ in range(count):
        depth = draw(st.integers(min_value=1, max_value=4))
        segments = tuple(
            InstanceSegment(
                draw(_names), draw(_quals), draw(st.integers(min_value=1, max_value=3))
            )
            for __ in range(depth)
        )
        keys.append(InstanceKey(segments))
    return keys


@st.composite
def _random_pattern(draw):
    depth = draw(st.integers(min_value=1, max_value=3))
    parts = []
    for __ in range(depth):
        name = draw(st.sampled_from(["A", "B", "C", "K", "IP", "*", "*P", "K*"]))
        kind = draw(st.sampled_from(["any", "named", "ordinal"]))
        if kind == "named":
            parts.append(f"{name}::{draw(st.sampled_from(['x', 'y', '*']))}")
        elif kind == "ordinal":
            parts.append(f"{name}[{draw(st.integers(min_value=1, max_value=3))}]")
        else:
            parts.append(name)
    return ".".join(parts)


@given(_random_keys(), _random_pattern())
@settings(max_examples=300)
def test_property_trie_naive_equivalence(keys, pattern_text):
    trie, naive = build_indexes(keys)
    pattern = parse_pattern(pattern_text)
    got_trie = sorted(i.value for i in trie.query(pattern))
    got_naive = sorted(i.value for i in naive.query(pattern))
    assert got_trie == got_naive
