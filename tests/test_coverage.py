"""Spec-coverage analyzer: covered / uncovered classes, CLI."""

from __future__ import annotations

import pytest

from repro import ValidationSession
from repro.console import main
from repro.core import analyze_coverage
from repro.synthetic import EXPERT_SPECS, generate_type_a


def store_from(text):
    session = ValidationSession()
    session.load_text("keyvalue", text)
    return session.store


class TestCoverage:
    STORE_TEXT = """
Cluster::C1.Timeout = 30
Cluster::C1.Mode = fast
Cluster::C1.Comment = free text
Node::N1.IP = 10.0.0.1
"""

    def test_covered_and_uncovered_split(self):
        store = store_from(self.STORE_TEXT)
        report = analyze_coverage(
            "$Cluster.Timeout -> int\n$Node.IP -> ip\n", store
        )
        assert set(report.covered) == {
            ("Cluster", "Timeout"), ("Node", "IP"),
        }
        assert sorted(report.uncovered) == [
            ("Cluster", "Comment"), ("Cluster", "Mode"),
        ]
        assert report.coverage_ratio == pytest.approx(0.5)

    def test_wildcard_specs_cover_by_name_shape(self):
        store = store_from(self.STORE_TEXT)
        report = analyze_coverage("$*Timeout* -> int\n$*IP -> ip\n", store)
        assert ("Cluster", "Timeout") in report.covered
        assert ("Node", "IP") in report.covered

    def test_per_class_spec_counts(self):
        store = store_from(self.STORE_TEXT)
        report = analyze_coverage(
            "$Cluster.Timeout -> int\n$Cluster.Timeout -> [1, 60]\n"
            "$Node.IP -> ip\n",
            store,
        )
        assert report.covered[("Cluster", "Timeout")] == 2
        assert report.barely_checked() == [("Node", "IP")]

    def test_instance_qualified_spec_covers_class(self):
        store = store_from(
            "Cluster::C1.Flag = true\nCluster::C2.Flag = false\n"
        )
        report = analyze_coverage("$Cluster::C2.Flag -> bool\n", store)
        assert ("Cluster", "Flag") in report.covered

    def test_compartment_bound_domains_count(self):
        store = store_from(
            "Cluster::C1.StartIP = 10.0.0.1\nCluster::C1.EndIP = 10.0.0.9\n"
        )
        report = analyze_coverage(
            "compartment Cluster {\n$StartIP <= $EndIP\n}\n", store
        )
        assert not report.uncovered

    def test_empty_corpus_everything_uncovered(self):
        store = store_from(self.STORE_TEXT)
        report = analyze_coverage("// nothing here\n", store)
        assert not report.covered
        assert report.total_classes == 4

    def test_render(self):
        store = store_from(self.STORE_TEXT)
        text = analyze_coverage("$Cluster.Timeout -> int\n", store).render(limit=2)
        assert "1/4" in text
        assert "and 1 more" in text

    def test_expert_corpus_covers_special_params(self, tmp_path):
        store = generate_type_a(0.05).build_store()
        report = analyze_coverage(EXPERT_SPECS["type_a"], store)
        for leaf in ("StartIP", "VipRange", "BladeID", "FccDnsName"):
            assert any(key[-1] == leaf for key in report.covered), leaf
        # the deliberately-unconstrained free-text tail shows up uncovered
        assert any("OwnerAlias" in key[-1] for key in report.uncovered)
        # and no expert spec is dead weight
        assert report.dead_specs == []

    def test_dead_spec_detected(self):
        store = store_from("Host::h1.section.my_ip = 10.0.0.1\n")
        report = analyze_coverage(
            # Host.my_ip never matches: the key's parent scope is 'section'
            "$Host.my_ip -> unique\n$my_ip -> ip\n",
            store,
        )
        assert len(report.dead_specs) == 1
        assert "Host.my_ip" in report.dead_specs[0]
        assert "dead specs" in report.render()

    def test_no_dead_specs_section_absent_from_render(self):
        store = store_from("A.K = 1\n")
        text = analyze_coverage("$A.K -> int\n", store).render()
        assert "dead specs" not in text


class TestCoverageCLI:
    def test_cli_exit_codes_and_output(self, tmp_path, capsys):
        (tmp_path / "c.ini").write_text("[s]\nTimeout = 5\nStray = x\n")
        (tmp_path / "spec.cpl").write_text("$s.Timeout -> int\n")
        code = main([
            "coverage", str(tmp_path / "spec.cpl"),
            "--source", f"ini:{tmp_path}/c.ini",
        ])
        out = capsys.readouterr().out
        assert code == 1          # a gap exists
        assert "s.Stray" in out

    def test_cli_full_coverage(self, tmp_path, capsys):
        (tmp_path / "c.ini").write_text("[s]\nTimeout = 5\n")
        (tmp_path / "spec.cpl").write_text("$s.Timeout -> int\n")
        code = main([
            "coverage", str(tmp_path / "spec.cpl"),
            "--source", f"ini:{tmp_path}/c.ini",
        ])
        assert code == 0
        assert "1/1" in capsys.readouterr().out
