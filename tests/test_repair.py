"""Repair suggestions: nearest-member, majority, clamp, alignment."""

from __future__ import annotations

import pytest

from repro import ValidationSession
from repro.core import apply_repairs, suggest_repairs


def run(make_store, pairs, spec):
    session = ValidationSession(store=make_store(pairs))
    report = session.validate(spec)
    return session, report


class TestSuggestions:
    def test_enum_typo_nearest_member(self, make_store):
        session, report = run(
            make_store,
            [("A.Pool", "storag")],
            "$Pool -> {'compute', 'storage'}",
        )
        repairs = suggest_repairs(report, session.store)
        assert len(repairs) == 1
        assert repairs[0].new_value == "storage"
        assert "edit distance" in repairs[0].rationale

    def test_ambiguous_typo_not_suggested(self, make_store):
        # equally distant from both members: no safe suggestion
        session, report = run(
            make_store, [("A.Mode", "xy")], "$Mode -> {'ab', 'cd'}"
        )
        assert suggest_repairs(report, session.store) == []

    def test_distant_value_not_suggested(self, make_store):
        session, report = run(
            make_store, [("A.Mode", "completely-different")],
            "$Mode -> {'fast', 'safe'}",
        )
        assert suggest_repairs(report, session.store) == []

    def test_consistency_majority(self, make_store):
        session, report = run(
            make_store,
            [("A::1.F", "80"), ("A::2.F", "80"), ("A::3.F", "75")],
            "$F -> consistent",
        )
        repairs = suggest_repairs(report, session.store)
        assert len(repairs) == 1
        assert repairs[0].old_value == "75"
        assert repairs[0].new_value == "80"

    def test_range_clamp_low_and_high(self, make_store):
        session, report = run(
            make_store,
            [("A::1.T", "0"), ("A::2.T", "99")],
            "$T -> [1, 60]",
        )
        repairs = {r.old_value: r.new_value for r in
                   suggest_repairs(report, session.store)}
        assert repairs == {"0": "1", "99": "60"}

    def test_cross_source_alignment(self, make_store):
        session, report = run(
            make_store,
            [("controller.Key", "stale"), ("auth.Key", "fresh")],
            "$controller.Key -> == $auth.Key",
        )
        repairs = suggest_repairs(report, session.store)
        assert len(repairs) == 1
        assert repairs[0].new_value == "fresh"

    def test_type_violation_no_suggestion(self, make_store):
        session, report = run(make_store, [("A.T", "ninety")], "$T -> int")
        assert suggest_repairs(report, session.store) == []

    def test_one_repair_per_key(self, make_store):
        session, report = run(
            make_store,
            [("A.T", "99")],
            "$T -> [1, 60]\n$T -> [1, 50]",
        )
        repairs = suggest_repairs(report, session.store)
        assert len(repairs) == 1

    def test_render(self, make_store):
        session, report = run(
            make_store, [("A.Pool", "storag")], "$Pool -> {'compute', 'storage'}"
        )
        text = suggest_repairs(report, session.store)[0].render()
        assert "'storag' -> 'storage'" in text


class TestApply:
    def test_applied_snapshot_passes(self, make_store):
        pairs = [
            ("Cluster::C1.Pool", "storag"),
            ("Cluster::C2.Pool", "compute"),
            ("Cluster::C1.T", "99"),
            ("Cluster::C2.T", "30"),
        ]
        spec = "$Pool -> {'compute', 'storage'}\n$T -> [1, 60]"
        session, report = run(make_store, pairs, spec)
        repairs = suggest_repairs(report, session.store)
        repaired = apply_repairs(session.store.instances(), repairs)

        fixed = ValidationSession()
        fixed.store.add_all(repaired)
        assert fixed.validate(spec).passed

    def test_apply_does_not_mutate_input(self, make_store):
        session, report = run(
            make_store, [("A.T", "99")], "$T -> [1, 60]"
        )
        original = list(session.store.instances())
        values_before = [i.value for i in original]
        apply_repairs(original, suggest_repairs(report, session.store))
        assert [i.value for i in original] == values_before

    def test_untouched_instances_preserved(self, make_store):
        session, report = run(
            make_store, [("A.T", "99"), ("A.Keep", "x")], "$T -> [1, 60]"
        )
        repaired = apply_repairs(
            session.store.instances(), suggest_repairs(report, session.store)
        )
        by_key = {i.key.render(): i.value for i in repaired}
        assert by_key["A.Keep"] == "x"
        assert by_key["A.T"] == "60"
