"""Parallel sharded validation: partitioning, executors, determinism.

The headline property — required by the engine's contract and by
``docs/PERFORMANCE.md`` — is that serial, thread-pool and process-pool
evaluation of the synthetic Azure Type-A corpus produce *byte-identical*
reports (``ValidationReport.fingerprint()``), including on a faulty branch
where violation ordering actually matters.
"""

from __future__ import annotations

import pytest

from repro import (
    ParallelValidator,
    ValidationPolicy,
    ValidationSession,
    parse,
)
from repro.core.compiler import optimize_statements
from repro.parallel import (
    PROCESS_CUTOFF,
    SERIAL_CUTOFF,
    ProcessShardExecutor,
    SerialExecutor,
    ThreadShardExecutor,
    choose_executor,
    is_parallel_safe,
    partition_statements,
    resolve_executor,
    scope_key,
)
from repro.repository.store import ConfigStore
from repro.synthetic import EXPERT_SPECS
from repro.synthetic.azure import generate_type_a
from repro.synthetic.faults import TRUE_ERROR_KINDS, FaultInjector

EXECUTORS = ["serial", "thread", "process"]


@pytest.fixture(scope="module")
def clean_store():
    return generate_type_a(0.08).build_store()


@pytest.fixture(scope="module")
def faulty_store():
    base = generate_type_a(0.08).parse()
    branch = FaultInjector(base, seed=7).make_branch("faulty", TRUE_ERROR_KINDS)
    store = ConfigStore()
    store.add_all(branch.instances)
    return store


def compiled(text):
    return optimize_statements(list(parse(text).statements))


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------


class TestPartitioning:
    def test_every_statement_lands_exactly_once(self):
        statements = compiled(EXPERT_SPECS["type_a"])
        lets, shards = partition_statements(statements, max_shards=4)
        indices = [unit.index for shard in shards for unit in shard.units]
        indices += [unit.index for unit in lets]
        assert sorted(indices) == list(range(len(statements)))

    def test_partitioning_is_deterministic(self):
        statements = compiled(EXPERT_SPECS["type_a"])
        first = partition_statements(statements, max_shards=4)
        second = partition_statements(statements, max_shards=4)
        assert first == second

    def test_max_shards_respected(self):
        statements = compiled(EXPERT_SPECS["type_a"])
        __, shards = partition_statements(statements, max_shards=2)
        assert 1 <= len(shards) <= 2

    def test_units_ascending_within_shard(self):
        statements = compiled(EXPERT_SPECS["type_a"])
        __, shards = partition_statements(statements, max_shards=3)
        for shard in shards:
            indices = [unit.index for unit in shard.units]
            assert indices == sorted(indices)

    def test_same_compartment_shares_a_shard(self):
        text = """
        compartment Cluster { $StartIP -> ip }
        compartment Cluster { $EndIP -> ip }
        $Other.Key -> nonempty
        """
        statements = list(parse(text).statements)
        __, shards = partition_statements(statements, max_shards=8)
        homes = {}
        for number, shard in enumerate(shards):
            for unit in shard.units:
                homes[unit.index] = number
        assert homes[0] == homes[1]  # both Cluster compartments together

    def test_scope_keys(self):
        statements = list(parse(
            "compartment Cluster { $StartIP -> ip }\n"
            "namespace fabric { $Timeout -> int }\n"
            "$Node.NodeIP -> ip\n"
        ).statements)
        assert scope_key(statements[0]) == "compartment:Cluster"
        assert scope_key(statements[1]) == "namespace:fabric"
        assert scope_key(statements[2]) == "class:Node"


# ---------------------------------------------------------------------------
# Parallel-safety gate
# ---------------------------------------------------------------------------


class TestParallelSafety:
    def test_plain_program_is_safe(self):
        assert is_parallel_safe(compiled(EXPERT_SPECS["type_a"]))

    def test_top_level_lets_are_safe(self):
        statements = list(parse("let X := int\n$K -> @X\n").statements)
        assert is_parallel_safe(statements)

    def test_nested_let_is_unsafe(self):
        statements = list(
            parse("namespace fabric {\n  let X := int\n  $K -> @X\n}\n").statements
        )
        assert not is_parallel_safe(statements)

    @pytest.mark.parametrize(
        "policy",
        [
            ValidationPolicy(stop_on_first_violation=True),
            ValidationPolicy(priorities={"VipRange": 5}),
            ValidationPolicy(on_violation=lambda violation: None),
        ],
    )
    def test_cross_statement_policies_are_unsafe(self, policy):
        statements = list(parse("$K -> int\n").statements)
        assert not is_parallel_safe(statements, policy)


# ---------------------------------------------------------------------------
# Executor selection heuristic
# ---------------------------------------------------------------------------


class TestChooseExecutor:
    def test_small_workload_stays_serial(self):
        executor = choose_executor(8, SERIAL_CUTOFF - 1, cpu_count=8)
        assert isinstance(executor, SerialExecutor)

    def test_single_core_stays_serial(self):
        executor = choose_executor(8, PROCESS_CUTOFF * 10, cpu_count=1)
        assert isinstance(executor, SerialExecutor)

    def test_single_shard_stays_serial(self):
        executor = choose_executor(1, PROCESS_CUTOFF * 10, cpu_count=8)
        assert isinstance(executor, SerialExecutor)

    def test_medium_workload_uses_threads(self):
        executor = choose_executor(8, SERIAL_CUTOFF + 1, cpu_count=8)
        assert isinstance(executor, ThreadShardExecutor)

    @pytest.mark.skipif(
        not ProcessShardExecutor.available(), reason="no fork start method"
    )
    def test_large_workload_uses_processes(self):
        executor = choose_executor(8, PROCESS_CUTOFF, cpu_count=8)
        assert isinstance(executor, ProcessShardExecutor)

    def test_resolve_by_name(self):
        assert isinstance(resolve_executor("serial", 4, 10**9), SerialExecutor)
        assert isinstance(resolve_executor("thread", 4, 10**9), ThreadShardExecutor)
        with pytest.raises(ValueError):
            resolve_executor("warp-drive", 4, 10**9)


# ---------------------------------------------------------------------------
# Determinism: the headline guarantee
# ---------------------------------------------------------------------------


class TestDeterminism:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_clean_corpus_identical_to_serial(self, clean_store, executor):
        baseline = ValidationSession(store=clean_store).validate(
            EXPERT_SPECS["type_a"]
        )
        session = ValidationSession(store=clean_store, executor=executor)
        report = session.validate(EXPERT_SPECS["type_a"])
        assert report.fingerprint() == baseline.fingerprint()
        assert report.executor == executor
        assert report.shards_run >= 1

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_faulty_corpus_identical_to_serial(self, faulty_store, executor):
        """Violation *ordering* must survive sharding, not just the set."""
        baseline = ValidationSession(store=faulty_store).validate(
            EXPERT_SPECS["type_a"]
        )
        assert baseline.violations, "fault injection should produce violations"
        session = ValidationSession(store=faulty_store, executor=executor)
        report = session.validate(EXPERT_SPECS["type_a"])
        assert report.fingerprint() == baseline.fingerprint()
        assert [v.key for v in report.violations] == [
            v.key for v in baseline.violations
        ]

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_lets_and_gets_survive_sharding(self, clean_store, executor):
        text = (
            "let SaneReplicas := int & {3, 5}\n"
            "$Cluster.ReplicaCountForCreateFCC -> @SaneReplicas\n"
            "get $Cluster.MachinePool\n"
        )
        baseline = ValidationSession(store=clean_store).validate(text)
        report = ValidationSession(store=clean_store, executor=executor).validate(text)
        assert report.fingerprint() == baseline.fingerprint()
        assert report.notes == baseline.notes

    def test_parallel_validator_direct_api(self, clean_store):
        statements = compiled(EXPERT_SPECS["type_a"])
        serial = ParallelValidator(clean_store, executor="serial").validate_statements(
            statements
        )
        threaded = ParallelValidator(
            clean_store, executor="thread", max_workers=3
        ).validate_statements(statements)
        assert serial.fingerprint() == threaded.fingerprint()
        assert threaded.shards_run == serial.shards_run >= 1
        assert len(threaded.shard_timings) == threaded.shards_run

    def test_macro_persists_in_session_after_parallel_run(self, clean_store):
        session = ValidationSession(store=clean_store, executor="thread")
        session.validate("let X := int\n$Cluster.ReplicaCountForCreateFCC -> @X\n")
        # second program reuses the macro defined by the first
        report = session.validate("$Blade.Location -> @X\n")
        assert report.specs_evaluated > 0


# ---------------------------------------------------------------------------
# Serial fallback for cross-statement behavior
# ---------------------------------------------------------------------------


class TestSerialFallback:
    def test_stop_on_first_violation_falls_back(self, faulty_store):
        policy = ValidationPolicy(stop_on_first_violation=True)
        baseline = ValidationSession(store=faulty_store, policy=policy).validate(
            EXPERT_SPECS["type_a"]
        )
        report = ValidationSession(
            store=faulty_store,
            policy=ValidationPolicy(stop_on_first_violation=True),
            executor="thread",
        ).validate(EXPERT_SPECS["type_a"])
        assert report.executor == "serial-fallback"
        assert report.fingerprint() == baseline.fingerprint()
        assert report.stopped_early

    def test_nested_let_falls_back(self, clean_store):
        text = "namespace fabric {\n  let X := int\n}\n"
        report = ValidationSession(store=clean_store, executor="thread").validate(text)
        assert report.executor == "serial-fallback"

    def test_on_violation_callback_sees_every_violation(self, faulty_store):
        seen = []
        policy = ValidationPolicy(on_violation=seen.append)
        report = ValidationSession(
            store=faulty_store, policy=policy, executor="process"
        ).validate(EXPERT_SPECS["type_a"])
        assert report.executor == "serial-fallback"
        assert len(seen) == len(report.violations) > 0


# ---------------------------------------------------------------------------
# Report plumbing
# ---------------------------------------------------------------------------


class TestReportPlumbing:
    def test_fingerprint_ignores_timing_and_strategy(self, clean_store):
        report = ValidationSession(store=clean_store, executor="thread").validate(
            "$Blade.Location -> int\n"
        )
        fingerprint = report.fingerprint()
        report.elapsed_seconds += 100.0
        report.executor = "something-else"
        report.shard_timings.append(("x", 1.0))
        assert report.fingerprint() == fingerprint

    def test_to_dict_carries_perf_block(self, clean_store):
        report = ValidationSession(store=clean_store, executor="serial").validate(
            "$Blade.Location -> int\n"
        )
        perf = report.to_dict()["perf"]
        assert perf["executor"] == "serial"
        assert perf["shards_run"] == report.shards_run

    def test_merge_sums_perf_counters(self, clean_store):
        session = ValidationSession(store=clean_store, executor="serial")
        first = session.validate("$Blade.Location -> int\n")
        second = session.validate("$Rack.Blade.BladeID -> nonempty\n")
        shards = first.shards_run + second.shards_run
        first.merge(second)
        assert first.shards_run == shards
