"""Live operator endpoint + per-spec evaluation analytics.

The contracts under test:

* **endpoint surface** — ``GET /metrics`` (valid Prometheus text),
  ``/metrics.json``, ``/health`` (503 iff the last scan's HealthBlock is
  FAILED), ``/stats``, ``/traces/latest``; unknown paths 404 with an
  endpoint listing; requests are answered *during* an in-flight scan and
  the server shuts down cleanly;
* **analytics determinism** — the hot-spec table rendered from a
  FakeClock-timed run is byte-identical across the serial, thread and
  process executors, and ``fingerprint()`` is byte-identical with
  analytics on or off;
* **longitudinal views** — dead-spec detection cross-checked against
  coverage analysis, and scan-over-scan drift classification
  (new / persisting / fixed).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import (
    ParallelValidator,
    ResiliencePolicy,
    SourceSpec,
    ValidationService,
    ValidationSession,
    observability,
    parse,
)
from repro.core.compiler import optimize_statements
from repro.core.report import ValidationReport
from repro.observability import parse_prometheus
from repro.observability.analytics import (
    SpecAnalytics,
    format_drift,
    format_hot_specs,
    merge_spec_profiles,
    profile_rows,
)
from repro.observability.server import ENDPOINTS, parse_http_address
from repro.runtime import FakeClock, StaticRuntime, set_clock
from repro.synthetic import EXPERT_SPECS
from repro.synthetic.azure import generate_type_a


@pytest.fixture(autouse=True)
def pristine_observability():
    observability.disable()
    previous_clock = set_clock(None)
    yield
    observability.disable()
    set_clock(previous_clock)


@pytest.fixture(scope="module")
def corpus():
    store = generate_type_a(0.05).build_store()
    statements = optimize_statements(
        list(parse(EXPERT_SPECS["type_a"]).statements)
    )
    return store, statements


@pytest.fixture
def workspace(tmp_path):
    spec = tmp_path / "specs.cpl"
    spec.write_text("$fabric.Timeout -> int & [1, 60]\n")
    config = tmp_path / "prod.ini"
    config.write_text("[fabric]\nTimeout = 30\n")
    return tmp_path, spec, config


def _get(url: str):
    """GET → (status, content type, body text); no exception on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.headers["Content-Type"], \
                response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.headers["Content-Type"], \
            error.read().decode("utf-8")


# ---------------------------------------------------------------------------
# Address parsing
# ---------------------------------------------------------------------------


class TestParseHttpAddress:
    def test_host_and_port(self):
        assert parse_http_address("0.0.0.0:9100") == ("0.0.0.0", 9100)

    def test_bare_port_and_colon_port(self):
        assert parse_http_address("8080") == ("127.0.0.1", 8080)
        assert parse_http_address(":8080") == ("127.0.0.1", 8080)

    def test_port_zero_is_allowed(self):
        assert parse_http_address("127.0.0.1:0") == ("127.0.0.1", 0)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_http_address("localhost:http")
        with pytest.raises(ValueError):
            parse_http_address("localhost:70000")


# ---------------------------------------------------------------------------
# Endpoint surface
# ---------------------------------------------------------------------------


class TestOperatorEndpoint:
    def test_all_endpoints_respond(self, workspace):
        from repro.jobs import JobService

        tmp, spec, config = workspace
        observability.enable()
        service = ValidationService(
            str(spec), [SourceSpec("ini", str(config))]
        )
        # /jobs answers 404 until a job service is attached (tested in
        # test_jobs_endpoint.py); attach one so the whole table is live.
        # Likewise /specs answers 404 until a lifecycle manager is wired
        # (tested in test_lifecycle.py).
        service.attach_jobs(JobService(workers=0))
        from repro.lifecycle import SpecLifecycleManager

        service.lifecycle = SpecLifecycleManager()
        service.run_once()
        server = service.start_http()
        try:
            for path in ENDPOINTS:
                status, content_type, body = _get(server.url + path)
                assert status == 200, path
                assert body, path
                if path == "/metrics":
                    assert content_type.startswith("text/plain")
                else:
                    assert content_type.startswith("application/json")
                    json.loads(body)
        finally:
            service.stop_http()

    def test_metrics_pass_the_exposition_parser(self, workspace):
        tmp, spec, config = workspace
        observability.enable()
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        service.run_once()
        server = service.start_http()
        try:
            __, __, body = _get(server.url + "/metrics")
            families = parse_prometheus(body)
            assert "confvalley_scans_total" in families
            assert "confvalley_coverage_covered_classes" in families
        finally:
            service.stop_http()

    def test_unknown_path_404_lists_endpoints(self, workspace):
        tmp, spec, config = workspace
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        server = service.start_http()
        try:
            status, __, body = _get(server.url + "/nope")
            assert status == 404
            assert json.loads(body)["endpoints"] == list(ENDPOINTS)
        finally:
            service.stop_http()

    def test_health_200_before_first_scan(self, workspace):
        tmp, spec, config = workspace
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        server = service.start_http()
        try:
            status, __, body = _get(server.url + "/health")
            assert status == 200
            assert json.loads(body)["status"] == "never-validated"
        finally:
            service.stop_http()

    def test_health_503_when_last_scan_failed(self, workspace):
        tmp, spec, config = workspace
        service = ValidationService(
            str(spec), [SourceSpec("ini", str(config))],
            resilience=ResiliencePolicy(),
        )
        spec.unlink()  # the spec file vanishes: FAILED health, not a crash
        result = service.run_once()
        assert result.health.status == "FAILED"
        server = service.start_http()
        try:
            status, __, body = _get(server.url + "/health")
            assert status == 503
            assert json.loads(body)["status"] == "FAILED"
            # a FAILED scan is an unhealthy service, not a broken endpoint:
            # everything else still answers 200
            assert _get(server.url + "/stats")[0] == 200
        finally:
            service.stop_http()

    def test_health_recovers_to_200(self, workspace):
        tmp, spec, config = workspace
        service = ValidationService(
            str(spec), [SourceSpec("ini", str(config))],
            resilience=ResiliencePolicy(),
        )
        saved = spec.read_text()
        spec.unlink()
        service.run_once()
        spec.write_text(saved)
        service.run_once()
        server = service.start_http()
        try:
            status, __, body = _get(server.url + "/health")
            assert status == 200
            assert json.loads(body)["passed"] is True
        finally:
            service.stop_http()

    def test_traces_latest_is_chrome_trace_of_last_scan(self, workspace):
        tmp, spec, config = workspace
        observability.enable()
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        service.run_once()
        server = service.start_http()
        try:
            __, __, body = _get(server.url + "/traces/latest")
            trace = json.loads(body)
            names = {event["name"] for event in trace["traceEvents"]}
            assert "scan" in names
            assert "evaluate" in names
        finally:
            service.stop_http()

    def test_traces_latest_empty_without_tracing(self, workspace):
        tmp, spec, config = workspace
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        service.run_once()
        server = service.start_http()
        try:
            __, __, body = _get(server.url + "/traces/latest")
            assert json.loads(body)["traceEvents"] == []
        finally:
            service.stop_http()

    def test_trace_capture_bounds_tracer_memory(self, workspace):
        tmp, spec, config = workspace
        obs = observability.enable()
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        service.run_once()
        first = service.latest_trace()
        assert first is not None and first["traceEvents"]
        # the scan's spans were consumed out of the tracer
        assert obs.tracer.find("scan") == []
        service.run_once()
        second = service.latest_trace()
        assert second is not None and second["traceEvents"]
        assert obs.tracer.find("scan") == []

    def test_endpoints_respond_during_inflight_scan(self, workspace):
        tmp, spec, config = workspace

        gate = threading.Event()
        release = threading.Event()

        class BlockingRuntime(StaticRuntime):
            def read_bytes(self, path: str) -> bytes:
                if path.endswith("prod.ini"):
                    gate.set()
                    assert release.wait(timeout=30)
                return super().read_bytes(path)

        from repro.jobs import JobService

        observability.enable()
        from repro.lifecycle import SpecLifecycleManager

        service = ValidationService(
            str(spec), [SourceSpec("ini", str(config))],
            runtime=BlockingRuntime(),
        )
        service.attach_jobs(JobService(workers=0))
        service.lifecycle = SpecLifecycleManager()
        server = service.start_http()
        worker = threading.Thread(target=service.run_once, daemon=True)
        try:
            worker.start()
            assert gate.wait(timeout=30)  # the scan is now mid-source-load
            for path in ENDPOINTS:
                status, __, __body = _get(server.url + path)
                assert status == 200, path
        finally:
            release.set()
            worker.join(timeout=30)
            service.stop_http()
        assert not worker.is_alive()
        assert service.current_status is True

    def test_clean_shutdown_closes_the_port(self, workspace):
        tmp, spec, config = workspace
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        server = service.start_http()
        url = server.url
        assert _get(url + "/health")[0] == 200
        service.stop_http()
        assert not server.running
        with pytest.raises(OSError):
            urllib.request.urlopen(url + "/health", timeout=2)
        service.stop_http()  # idempotent

    def test_http_requests_counter(self, workspace):
        tmp, spec, config = workspace
        obs = observability.enable()
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        server = service.start_http()
        try:
            _get(server.url + "/health")
            _get(server.url + "/health")
            _get(server.url + "/stats")
        finally:
            service.stop_http()
        text = obs.metrics.to_prometheus()
        samples = {
            (labels["path"]): value
            for __, labels, value in parse_prometheus(text)[
                "confvalley_http_requests_total"
            ]["samples"]
        }
        assert samples["/health"] == 2.0
        assert samples["/stats"] == 1.0


# ---------------------------------------------------------------------------
# Analytics: attribution, determinism, fingerprint parity
# ---------------------------------------------------------------------------


class TestSpecProfileAttribution:
    def test_session_records_profile_when_enabled(self):
        session = ValidationSession(analytics=True)
        session.load_text("ini", "[fabric]\nTimeout = 99\n")
        report = session.validate(
            "$fabric.Timeout -> int & [1, 60]\n$fabric.Missing -> int\n"
        )
        rows = profile_rows(report.spec_profile)
        assert [row["line"] for row in rows] == [1, 2]
        hot = rows[0]
        assert hot["evals"] == 1
        assert hot["instances"] == 1
        assert hot["violations"] == 1
        missing = rows[1]
        assert missing["instances"] == 0
        assert missing["violations"] == 0

    def test_profile_off_by_default_and_costless(self):
        session = ValidationSession()
        session.load_text("ini", "[fabric]\nTimeout = 30\n")
        report = session.validate("$fabric.Timeout -> int")
        assert report.spec_profile == {}

    def test_fingerprint_identical_with_analytics_on_or_off(self):
        def run(analytics: bool) -> str:
            session = ValidationSession(analytics=analytics)
            session.load_text("ini", "[fabric]\nTimeout = 99\n")
            return session.validate(
                "$fabric.Timeout -> int & [1, 60]"
            ).fingerprint()

        assert run(True) == run(False)

    def test_merge_spec_profiles_commutative_sums(self):
        left = {(1, "a"): {"evals": 1, "instances": 2, "violations": 0, "seconds": 0.5}}
        right = {
            (1, "a"): {"evals": 1, "instances": 3, "violations": 1, "seconds": 0.25},
            (2, "b"): {"evals": 1, "instances": 0, "violations": 0, "seconds": 0.1},
        }
        merge_spec_profiles(left, right)
        assert left[(1, "a")] == {
            "evals": 2, "instances": 5, "violations": 1, "seconds": 0.75
        }
        assert left[(2, "b")] == right[(2, "b")]
        assert left[(2, "b")] is not right[(2, "b")]  # copied, not aliased

    def test_report_merge_folds_profiles(self):
        a = ValidationReport()
        a.spec_profile[(1, "x")] = {
            "evals": 1, "instances": 1, "violations": 0, "seconds": 1.0
        }
        b = ValidationReport()
        b.spec_profile[(1, "x")] = {
            "evals": 1, "instances": 2, "violations": 1, "seconds": 2.0
        }
        a.merge(b)
        assert a.spec_profile[(1, "x")]["seconds"] == 3.0
        assert a.spec_profile[(1, "x")]["instances"] == 3


class TestHotSpecDeterminism:
    @pytest.mark.parametrize("executor,workers", [
        ("serial", None),
        # one worker pins the shared FakeClock to a single reader thread,
        # so per-spec durations are identical to the serial run
        ("thread", 1),
        # fork workers each inherit a private copy of the clock state, so
        # per-spec durations are one tick regardless of interleaving
        ("process", 2),
    ])
    def test_hot_spec_table_byte_identical(self, corpus, executor, workers):
        store, statements = corpus
        set_clock(FakeClock(start=0.0, tick=0.001))
        report = ParallelValidator(
            store, executor=executor, max_workers=workers, analytics=True
        ).validate_statements(statements)
        analytics = SpecAnalytics()
        analytics.record_scan(report)
        rendered = format_hot_specs(analytics.hot_specs())
        if not hasattr(type(self), "_expected"):
            type(self)._expected = rendered
        assert rendered == type(self)._expected
        assert len(report.spec_profile) > 0

    def test_fingerprint_parity_across_executors_with_analytics(self, corpus):
        store, statements = corpus
        serial = ParallelValidator(
            store, executor="serial", analytics=True
        ).validate_statements(statements)
        threaded = ParallelValidator(
            store, executor="thread", max_workers=3, analytics=True
        ).validate_statements(statements)
        assert serial.fingerprint() == threaded.fingerprint()
        # attribution counters merged identically too (timings aside)
        strip = lambda profile: {
            key: {k: v for k, v in row.items() if k != "seconds"}
            for key, row in profile.items()
        }
        assert strip(serial.spec_profile) == strip(threaded.spec_profile)


# ---------------------------------------------------------------------------
# Analytics: dead specs, drift, coverage feed
# ---------------------------------------------------------------------------


class TestAnalyticsViews:
    def _scan(self, service):
        return service.run_once()

    def test_dead_spec_detection_with_coverage_crosscheck(self, workspace):
        tmp, spec, config = workspace
        spec.write_text(
            "$fabric.Timeout -> int & [1, 60]\n$ghost.Missing -> int\n"
        )
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        service.run_once()
        dead = service.analytics.dead_specs()
        assert [row["spec"] for row in dead] == ["$ghost.Missing -> int"]
        assert dead[0]["coverage_confirmed"] is True
        stats = service.stats()
        assert stats["analytics"]["dead_specs"] == dead
        assert stats["coverage"]["dead_specs"] == ["$ghost.Missing -> int"]

    def test_coverage_gauges_feed_registry(self, workspace):
        tmp, spec, config = workspace
        spec.write_text(
            "$fabric.Timeout -> int & [1, 60]\n$ghost.Missing -> int\n"
        )
        obs = observability.enable()
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        service.run_once()
        families = parse_prometheus(obs.metrics.to_prometheus())
        def value(name):
            return families[name]["samples"][0][2]
        assert value("confvalley_coverage_covered_classes") == 1.0
        assert value("confvalley_coverage_uncovered_classes") == 0.0
        assert value("confvalley_coverage_dead_specs") == 1.0

    def test_coverage_cached_until_spec_or_store_changes(self, workspace, monkeypatch):
        tmp, spec, config = workspace
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        service.run_once()
        first = service.stats()["coverage"]
        calls = []
        import repro.core.coverage as coverage_module

        real = coverage_module.analyze_coverage
        monkeypatch.setattr(
            coverage_module, "analyze_coverage",
            lambda *a, **k: calls.append(1) or real(*a, **k),
        )
        service.run_once()  # nothing changed: cache hit, no reanalysis
        assert calls == []
        assert service.stats()["coverage"] == first
        spec.write_text("$fabric.Timeout -> int\n")
        service.run_once()
        assert calls == [1]

    def test_drift_new_persisting_fixed(self, workspace):
        tmp, spec, config = workspace
        spec.write_text(
            "$fabric.Timeout -> int & [1, 60]\n$fabric.Retries -> int & [0, 5]\n"
        )
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])

        config.write_text("[fabric]\nTimeout = 99\nRetries = 9\n")
        service.run_once()
        drift = service.analytics.drift()
        assert drift["comparable"] is False

        config.write_text("[fabric]\nTimeout = 99\nRetries = 3\n")
        service.run_once()
        drift = service.analytics.drift()
        assert drift["comparable"] is True
        assert [row["spec"] for row in drift["persisting"]] == [
            "$fabric.Timeout -> int & [1, 60]"
        ]
        assert [row["spec"] for row in drift["fixed"]] == [
            "$fabric.Retries -> int & [0, 5]"
        ]
        assert drift["new"] == []

        config.write_text("[fabric]\nTimeout = 30\nRetries = 9\n")
        service.run_once()
        drift = service.analytics.drift()
        assert [row["spec"] for row in drift["new"]] == [
            "$fabric.Retries -> int & [0, 5]"
        ]
        assert [row["spec"] for row in drift["fixed"]] == [
            "$fabric.Timeout -> int & [1, 60]"
        ]
        assert drift["persisting"] == []
        assert service.stats()["drift"] == drift

    def test_drift_rendering(self):
        assert "needs two scans" in format_drift({"comparable": False})
        text = format_drift({
            "comparable": True,
            "new": [{"line": 3, "spec": "$a.b -> int", "violations": 2}],
            "persisting": [],
            "fixed": [],
        })
        assert "new (1):" in text
        assert "$a.b -> int" in text

    def test_analytics_disabled_service(self, workspace):
        tmp, spec, config = workspace
        service = ValidationService(
            str(spec), [SourceSpec("ini", str(config))], analytics=False
        )
        result = service.run_once()
        assert result.report.spec_profile == {}
        stats = service.stats()
        assert stats["analytics"] is None
        assert stats["drift"] is None

    def test_hot_specs_accumulate_across_scans(self, workspace):
        tmp, spec, config = workspace
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        set_clock(FakeClock(start=0.0, tick=0.5))
        service.run_once()
        service.run_once()
        hot = service.analytics.hot_specs()
        assert hot[0]["evals"] == 2
        assert hot[0]["seconds"] == 1.0  # one tick per scan


# ---------------------------------------------------------------------------
# CLI surface: top, stats over HTTP, --log-file
# ---------------------------------------------------------------------------


class TestCliSurface:
    @pytest.fixture
    def live_service(self, workspace):
        tmp, spec, config = workspace
        config.write_text("[fabric]\nTimeout = 99\n")  # a violation to show
        observability.enable()
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        service.run_once()
        server = service.start_http()
        yield service, server
        service.stop_http()

    def test_stats_reads_live_url(self, live_service, capsys):
        from repro.console import main

        service, server = live_service
        assert main(["stats", server.url]) == 0
        out = capsys.readouterr().out
        assert "confvalley service stats" in out
        assert "hot specs" in out
        assert "metric families" in out

    def test_stats_prometheus_from_live_url(self, live_service, capsys):
        from repro.console import main

        service, server = live_service
        assert main(["stats", server.url, "--format", "prometheus"]) == 0
        parse_prometheus(capsys.readouterr().out)

    def test_top_reads_live_url(self, live_service, capsys):
        from repro.console import main

        service, server = live_service
        assert main(["top", server.url, "--count", "3"]) == 0
        out = capsys.readouterr().out
        assert "$fabric.Timeout -> int & [1, 60]" in out
        assert "seconds" in out

    def test_stats_unreachable_url_fails_cleanly(self, capsys):
        from repro.console import main

        assert main(["stats", "http://127.0.0.1:1/"]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_top_reads_snapshot_file(self, workspace, capsys):
        from repro.console import main
        from repro.observability import write_snapshot

        tmp, spec, config = workspace
        obs = observability.enable()
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        service.run_once()
        snapshot_path = tmp / "snapshot.json"
        write_snapshot(str(snapshot_path), service.stats(), obs.metrics)
        assert main(["top", str(snapshot_path)]) == 0
        assert "$fabric.Timeout -> int & [1, 60]" in capsys.readouterr().out

    def test_top_without_analytics_fails_cleanly(self, workspace, capsys):
        from repro.console import main
        from repro.observability import write_snapshot
        from repro.observability.metrics import NULL_REGISTRY

        tmp, spec, config = workspace
        service = ValidationService(
            str(spec), [SourceSpec("ini", str(config))], analytics=False
        )
        service.run_once()
        snapshot_path = tmp / "snapshot.json"
        write_snapshot(str(snapshot_path), service.stats(), NULL_REGISTRY)
        assert main(["top", str(snapshot_path)]) == 1
        assert "no per-spec analytics" in capsys.readouterr().err

    def test_validate_log_file_writes_json_lines(self, workspace, capsys):
        from repro.console import main
        from repro.observability import reset_logging

        tmp, spec, config = workspace
        log_path = tmp / "validate.log"
        try:
            code = main([
                "validate", str(spec),
                "--source", f"ini:{config}",
                "--log-file", str(log_path),
            ])
        finally:
            reset_logging()
        assert code == 0
        lines = [
            json.loads(line)
            for line in log_path.read_text().splitlines() if line
        ]
        assert lines, "log file should contain at least one record"
        for record in lines:
            assert "event" in record
            assert "level" in record
            assert "logger" in record
            assert record["logger"].startswith("repro")
