"""The asynchronous job service (``repro.jobs``): units + crash recovery.

The contracts under test:

* **model** — lossless job (de)serialization, the shared verdict schema,
  structured admission errors, ``FMT:PATH[:SCOPE]`` source references;
* **queue** — priority-then-FIFO dispatch, lazy removal of cancelled
  entries, deterministic token-bucket rate limiting on a FakeClock, and
  each admission-control limit rejecting with its own named reason;
* **journal** — append/replay round trips, torn-trailing-line tolerance,
  atomic snapshot rotation and event folding;
* **service** — submission validation, idempotency dedup, fingerprint
  parity with a direct ``validate`` run, priority draining, cancellation
  in every state, timeout supervision, retention eviction, backpressure
  accounting, graceful drain;
* **crash recovery** — a job found RUNNING in the journal is re-queued
  exactly once and then produces the same fingerprint an uninterrupted
  run yields; a second crash parks it as INTERRUPTED; QUEUED jobs simply
  resume.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.session import ValidationSession
from repro.jobs import (
    AdmissionController,
    AdmissionError,
    JobJournal,
    JobQueue,
    JobService,
    JobState,
    TokenBucket,
    ValidationJob,
    error_verdict,
    parse_source_ref,
    verdict_payload,
)
from repro.jobs.model import report_fingerprint_digest
from repro.jobs.service import MAX_REQUEUES
from repro.runtime import FakeClock, StaticRuntime, set_clock

SPEC = "$s.Timeout -> int & [1, 60]\n$s.Flag -> bool\n$s.Name -> nonempty\n"
GOOD_INI = "[s]\nTimeout = 30\nFlag = true\nName = web\n"
BAD_INI = "[s]\nTimeout = 999\nFlag = true\nName = web\n"


@pytest.fixture(autouse=True)
def pristine_clock():
    previous = set_clock(None)
    yield
    set_clock(previous)


@pytest.fixture
def workspace(tmp_path):
    config = tmp_path / "good.ini"
    config.write_text(GOOD_INI)
    return tmp_path, config


def make_service(tmp_path=None, **kwargs):
    kwargs.setdefault("workers", 1)
    if tmp_path is not None:
        kwargs.setdefault("journal_path", str(tmp_path / "journal.jsonl"))
    return JobService(**kwargs)


def inline_sources(text=GOOD_INI):
    return [{"format": "ini", "text": text, "source": "inline.ini"}]


def direct_fingerprint(spec=SPEC, text=GOOD_INI) -> str:
    session = ValidationSession()
    session.load_text("ini", text, source="inline.ini")
    return report_fingerprint_digest(session.validate(spec))


# ---------------------------------------------------------------------------
# Model
# ---------------------------------------------------------------------------


class TestModel:
    def test_job_round_trips_through_dict(self):
        job = ValidationJob(
            spec_text=SPEC, sources=inline_sources(), priority=3,
            tenant="ci", idempotency_key="k1",
        )
        job.state = JobState.DONE
        job.result = {"verdict": "admit"}
        clone = ValidationJob.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone.to_dict() == job.to_dict()

    def test_from_dict_ignores_unknown_fields(self):
        data = ValidationJob(spec_text=SPEC).to_dict()
        data["added_in_a_future_version"] = True
        assert ValidationJob.from_dict(data).spec_text == SPEC

    def test_spec_reference_forms(self):
        assert ValidationJob(spec_name="fleet").spec_reference() == "spec:fleet"
        assert ValidationJob(spec_path="/a.cpl").spec_reference() == "/a.cpl"
        inline = ValidationJob(spec_text=SPEC).spec_reference()
        assert inline.startswith("inline:") and len(inline) == len("inline:") + 12

    def test_wait_and_run_seconds(self):
        job = ValidationJob()
        assert job.wait_seconds is None and job.run_seconds is None
        job.submitted_at, job.started_at, job.finished_at = 10.0, 12.5, 14.0
        assert job.wait_seconds == 2.5
        assert job.run_seconds == 1.5

    def test_verdict_payload_schema_and_truncation(self):
        session = ValidationSession()
        session.load_text("ini", BAD_INI, source="inline.ini")
        report = session.validate(SPEC)
        payload = verdict_payload(report, limit=0)
        assert payload["verdict"] == "reject"
        assert payload["passed"] is False
        assert payload["violations"] == 1
        assert payload["violations_shown"] == 0  # truncated, count kept
        assert payload["fingerprint"] == report_fingerprint_digest(report)
        assert payload["health"] == "OK"

    def test_error_verdict_arm(self):
        payload = error_verdict("boom")
        assert payload["verdict"] == "error"
        assert payload["passed"] is False
        assert payload["error"] == "boom"

    def test_admission_error_to_dict(self):
        error = AdmissionError("rate-limited", "slow down",
                               retry_after=1.2345, rate=5.0)
        assert error.to_dict() == {
            "error": "backpressure",
            "reason": "rate-limited",
            "message": "slow down",
            "retry_after": 1.234,
            "rate": 5.0,
        }

    def test_parse_source_ref(self):
        assert parse_source_ref("ini:/etc/app.ini") == {
            "format": "ini", "path": "/etc/app.ini",
        }
        assert parse_source_ref("csv:data.csv:fleet")["scope"] == "fleet"
        with pytest.raises(ValueError):
            parse_source_ref("just-a-path")
        with pytest.raises(ValueError):
            parse_source_ref(":missing-format")


# ---------------------------------------------------------------------------
# Queue + admission control
# ---------------------------------------------------------------------------


class TestJobQueue:
    def test_priority_then_fifo(self):
        queue = JobQueue()
        low = ValidationJob(priority=0)
        first_high = ValidationJob(priority=5)
        second_high = ValidationJob(priority=5)
        for job in (low, first_high, second_high):
            queue.push(job)
        assert queue.pop(timeout=0) is first_high
        assert queue.pop(timeout=0) is second_high
        assert queue.pop(timeout=0) is low

    def test_pop_skips_lazily_cancelled_entries(self):
        queue = JobQueue()
        cancelled = ValidationJob(priority=9)
        survivor = ValidationJob()
        queue.push(cancelled)
        queue.push(survivor)
        cancelled.state = JobState.CANCELLED  # no heap surgery needed
        assert queue.pop(timeout=0) is survivor
        assert queue.pop(timeout=0.01) is None

    def test_pop_times_out_empty(self):
        assert JobQueue().pop(timeout=0.01) is None


class TestTokenBucket:
    def test_burst_then_refill_on_fake_clock(self):
        set_clock(FakeClock())
        bucket = TokenBucket(rate=2.0, burst=2.0)
        assert bucket.try_take() is None
        assert bucket.try_take() is None
        retry_after = bucket.try_take()
        assert retry_after == pytest.approx(0.5)
        set_clock(FakeClock(start=10.0))  # 10 virtual seconds later
        assert bucket.try_take() is None

    def test_disabled_when_rate_nonpositive(self):
        bucket = TokenBucket(rate=0.0)
        assert all(bucket.try_take() is None for __ in range(100))


class TestAdmissionController:
    def test_queue_full_reason(self):
        controller = AdmissionController(max_depth=2, depth=lambda: 2)
        with pytest.raises(AdmissionError) as info:
            controller.admit(ValidationJob())
        assert info.value.reason == AdmissionController.QUEUE_FULL
        assert info.value.to_dict()["max_depth"] == 2

    def test_tenant_limit_reason(self):
        controller = AdmissionController(
            per_tenant_limit=1,
            tenant_in_flight=lambda tenant: 1 if tenant == "busy" else 0,
        )
        controller.admit(ValidationJob(tenant="idle"))
        with pytest.raises(AdmissionError) as info:
            controller.admit(ValidationJob(tenant="busy"))
        assert info.value.reason == AdmissionController.TENANT_LIMIT

    def test_rate_limited_reason_with_retry_hint(self):
        set_clock(FakeClock())
        controller = AdmissionController(rate=1.0, burst=1.0)
        controller.admit(ValidationJob())
        with pytest.raises(AdmissionError) as info:
            controller.admit(ValidationJob())
        assert info.value.reason == AdmissionController.RATE_LIMITED
        assert info.value.retry_after is not None

    def test_rejects_nonsense_depth(self):
        with pytest.raises(ValueError):
            AdmissionController(max_depth=0)


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------


class TestJobJournal:
    def test_append_replay_round_trip(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j.jsonl"))
        job = ValidationJob(spec_text=SPEC)
        journal.append({"event": "submit", "job": job.to_dict()})
        journal.append({"event": "update", "id": job.id,
                        "fields": {"state": JobState.DONE}})
        journal.close()
        events = JobJournal(str(tmp_path / "j.jsonl")).replay()
        assert [event["event"] for event in events] == ["submit", "update"]
        folded = JobJournal.fold(events, ValidationJob.from_dict)
        assert folded[job.id].state == JobState.DONE

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(str(path))
        journal.append({"event": "submit",
                        "job": ValidationJob(spec_text=SPEC).to_dict()})
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "update", "id": "job-tr')  # crash mid-write
        events = JobJournal(str(path)).replay()
        assert len(events) == 1 and events[0]["event"] == "submit"

    def test_rotation_compacts_to_one_snapshot_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(str(path))
        jobs = [ValidationJob(spec_text=SPEC) for __ in range(3)]
        for job in jobs:
            journal.append({"event": "submit", "job": job.to_dict()})
        journal.rotate(job.to_dict() for job in jobs)
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        snapshot = json.loads(lines[0])
        assert snapshot["event"] == "snapshot"
        assert len(snapshot["jobs"]) == 3
        folded = JobJournal.fold(journal.replay(), ValidationJob.from_dict)
        assert set(folded) == {job.id for job in jobs}

    def test_auto_rotation_after_threshold(self, tmp_path):
        path = tmp_path / "j.jsonl"
        job = ValidationJob(spec_text=SPEC)
        journal = JobJournal(
            str(path), rotate_after=3,
            snapshot_source=lambda: [job.to_dict()],
        )
        for __ in range(3):
            journal.append({"event": "update", "id": job.id, "fields": {}})
        assert len(path.read_text().splitlines()) == 1  # compacted
        journal.close()

    def test_rotation_blocks_concurrent_appenders(self, tmp_path):
        """Regression: the snapshot is materialized under the writer lock.

        The old compaction snapshotted *outside* the critical section, so
        an event appended between the snapshot and the ``os.replace`` was
        silently dropped.  With the callable form, an appender must block
        for the whole snapshot+swap, then land in the fresh journal.
        """
        journal = JobJournal(str(tmp_path / "j.jsonl"))
        in_snapshot = threading.Event()
        release = threading.Event()

        def snapshot_source():
            in_snapshot.set()
            release.wait(5)
            return [{"id": "job-snap"}]

        rotator = threading.Thread(
            target=lambda: journal.rotate(snapshot_source)
        )
        rotator.start()
        assert in_snapshot.wait(5)
        appended = threading.Event()

        def append_late():
            journal.append(
                {"event": "submit", "job": {"id": "job-late"}}
            )
            appended.set()

        appender = threading.Thread(target=append_late)
        appender.start()
        time.sleep(0.1)
        assert not appended.is_set(), (
            "an append slipped in while the snapshot was being taken"
        )
        release.set()
        rotator.join(5)
        appender.join(5)
        assert appended.is_set()
        events = journal.replay()
        assert events[0]["event"] == "snapshot"
        assert events[1]["job"]["id"] == "job-late"  # after the swap, kept
        journal.close()

    def test_concurrent_appends_survive_auto_rotation(self, tmp_path):
        """Stress the append/auto-rotate race: no event is ever dropped.

        Mirrors the service wiring: appends happen under a shared RLock
        and the snapshot callback re-enters that same lock (the reason it
        must be an RLock), while a tiny ``rotate_after`` forces rotation
        from inside many of the appends.
        """
        lock = threading.RLock()
        state: dict[str, dict] = {}

        def snapshot_source():
            with lock:  # re-entered from inside append's critical section
                return [dict(record) for record in state.values()]

        journal = JobJournal(
            str(tmp_path / "j.jsonl"), rotate_after=7,
            snapshot_source=snapshot_source,
        )

        def writer(prefix):
            for index in range(50):
                job_id = f"{prefix}-{index}"
                with lock:
                    state[job_id] = {"id": job_id}
                    journal.append(
                        {"event": "submit", "job": {"id": job_id}}
                    )

        threads = [
            threading.Thread(target=writer, args=(f"w{n}",))
            for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
            assert not thread.is_alive(), "appender deadlocked in rotation"
        folded = JobJournal.fold(journal.replay(), ValidationJob.from_dict)
        assert set(folded) == set(state), "rotation dropped appended events"
        journal.close()

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert JobJournal(str(tmp_path / "absent.jsonl")).replay() == []

    def test_fold_ignores_updates_for_unknown_jobs(self):
        events = [{"event": "update", "id": "job-ghost",
                   "fields": {"state": JobState.DONE}}]
        assert JobJournal.fold(events, ValidationJob.from_dict) == {}


# ---------------------------------------------------------------------------
# Service lifecycle
# ---------------------------------------------------------------------------


class TestJobService:
    def test_submit_runs_to_done_with_fingerprint_parity(self, tmp_path):
        service = make_service(tmp_path)
        try:
            job, created = service.submit(
                spec=SPEC, sources=inline_sources()
            )
            assert created is True
            done = service.wait(job.id, timeout=30)
            assert done.state == JobState.DONE
            assert done.result["verdict"] == "admit"
            # the whole point of the async path: same verdict, same bytes
            assert done.result["fingerprint"] == direct_fingerprint()
        finally:
            service.close()

    def test_rejecting_spec_yields_reject_verdict(self, tmp_path):
        service = make_service(tmp_path)
        try:
            job, __ = service.submit(
                spec=SPEC, sources=inline_sources(BAD_INI)
            )
            done = service.wait(job.id, timeout=30)
            assert done.state == JobState.DONE  # ran fine, verdict rejects
            assert done.result["verdict"] == "reject"
            assert done.result["violations"] == 1
        finally:
            service.close()

    def test_source_path_reference(self, tmp_path, workspace):
        __, config = workspace
        service = make_service(tmp_path)
        try:
            job, __ = service.submit(
                spec=SPEC, sources=[f"ini:{config}"]
            )
            done = service.wait(job.id, timeout=30)
            assert done.result["verdict"] == "admit"
        finally:
            service.close()

    def test_registered_spec_name(self, tmp_path):
        service = make_service(tmp_path)
        try:
            service.register_spec("fleet", SPEC)
            job, __ = service.submit(
                spec_name="fleet", sources=inline_sources()
            )
            assert service.wait(job.id, timeout=30).result["verdict"] == "admit"
            missing, __ = service.submit(
                spec_name="nope", sources=inline_sources()
            )
            failed = service.wait(missing.id, timeout=30)
            assert failed.state == JobState.FAILED
            assert "unknown registered spec" in failed.error
        finally:
            service.close()

    def test_idempotency_key_deduplicates(self, tmp_path):
        service = make_service(tmp_path)
        try:
            first, created = service.submit(
                spec=SPEC, sources=inline_sources(), idempotency_key="k"
            )
            again, created_again = service.submit(
                spec=SPEC, sources=inline_sources(), idempotency_key="k"
            )
            assert created and not created_again
            assert again is first
        finally:
            service.close()

    def test_submit_validation_errors(self):
        service = make_service(workers=0)
        with pytest.raises(ValueError):
            service.submit()  # no spec at all
        with pytest.raises(ValueError):
            service.submit(spec=SPEC, spec_name="both")
        with pytest.raises(ValueError):
            service.submit(spec=SPEC, sources=[{"format": "ini"}])
        with pytest.raises(ValueError):
            service.submit(spec=SPEC, sources=[42])

    def test_submit_payload_field_validation(self):
        service = make_service(workers=0)
        with pytest.raises(ValueError, match="unknown field"):
            service.submit_payload({"spec": SPEC, "bogus": 1})
        with pytest.raises(ValueError, match="priority"):
            service.submit_payload({"spec": SPEC, "priority": "high"})
        with pytest.raises(ValueError, match="executor"):
            service.submit_payload({"spec": SPEC, "executor": "gpu"})
        with pytest.raises(ValueError, match="JSON object"):
            service.submit_payload([])

    def test_priority_draining_order(self):
        service = make_service(workers=0)
        low, __ = service.submit(spec=SPEC, priority=0)
        high, __ = service.submit(spec=SPEC, priority=9)
        assert service._next_job(timeout=0) is high
        assert service._next_job(timeout=0) is low

    def test_cancel_queued_is_immediate(self):
        service = make_service(workers=0)
        job, __ = service.submit(spec=SPEC, sources=inline_sources())
        cancelled = service.cancel(job.id)
        assert cancelled.state == JobState.CANCELLED
        assert service._next_job(timeout=0) is None  # lazily dropped
        assert service.stats()["queued"] == 0

    def test_cancel_unknown_and_terminal(self):
        service = make_service(workers=0)
        with pytest.raises(KeyError):
            service.cancel("job-ghost")
        job, __ = service.submit(spec=SPEC, sources=inline_sources())
        service.cancel(job.id)
        with pytest.raises(ValueError):
            service.cancel(job.id)  # already CANCELLED

    def test_queue_full_backpressure_counted(self):
        service = make_service(workers=0, queue_depth=1)
        service.submit(spec=SPEC, sources=inline_sources())
        with pytest.raises(AdmissionError) as info:
            service.submit(spec=SPEC, sources=inline_sources())
        assert info.value.reason == "queue-full"
        assert service.stats()["rejections"] == {"queue-full": 1}

    def test_per_tenant_limit_isolates_tenants(self):
        service = make_service(workers=0, per_tenant_limit=1)
        service.submit(spec=SPEC, tenant="ci")
        with pytest.raises(AdmissionError) as info:
            service.submit(spec=SPEC, tenant="ci")
        assert info.value.reason == "tenant-limit"
        # another tenant is unaffected by ci's saturation
        service.submit(spec=SPEC, tenant="staging")

    def test_rate_limit_rejects_with_retry_hint(self):
        set_clock(FakeClock())
        service = make_service(workers=0, rate=1.0, burst=1.0)
        service.submit(spec=SPEC)
        with pytest.raises(AdmissionError) as info:
            service.submit(spec=SPEC)
        assert info.value.reason == "rate-limited"
        assert info.value.to_dict()["retry_after"] > 0

    def test_timeout_abandons_job_as_failed(self, tmp_path, workspace):
        __, config = workspace
        release = threading.Event()

        class SlowRuntime(StaticRuntime):
            def read_bytes(self, path: str) -> bytes:
                assert release.wait(timeout=30)
                return super().read_bytes(path)

        service = make_service(tmp_path, runtime=SlowRuntime())
        try:
            job, __ = service.submit(
                spec=SPEC, sources=[f"ini:{config}"], timeout=0.2
            )
            done = service.wait(job.id, timeout=30)
            assert done.state == JobState.FAILED
            assert "timeout" in done.error
            assert done.result["verdict"] == "error"
        finally:
            release.set()
            service.close()

    def test_cancel_running_job(self, tmp_path, workspace):
        __, config = workspace
        started = threading.Event()
        release = threading.Event()

        class GatedRuntime(StaticRuntime):
            def read_bytes(self, path: str) -> bytes:
                started.set()
                assert release.wait(timeout=30)
                return super().read_bytes(path)

        service = make_service(tmp_path, runtime=GatedRuntime())
        try:
            job, __ = service.submit(spec=SPEC, sources=[f"ini:{config}"])
            assert started.wait(timeout=30)  # the worker is now inside the job
            service.cancel(job.id)
            done = service.wait(job.id, timeout=30)
            assert done.state == JobState.CANCELLED
        finally:
            release.set()
            service.close()

    def test_retention_evicts_oldest_terminal(self):
        service = make_service(workers=0, retention_count=2,
                               retention_age=None)
        jobs = []
        for index in range(4):
            job, __ = service.submit(spec=SPEC)
            job = service._next_job(timeout=0)
            service._record_terminal(job, JobState.DONE,
                                     {"verdict": "admit"}, "")
            jobs.append(job)
        listed = {row["id"] for row in service.list_jobs()}
        assert listed == {jobs[2].id, jobs[3].id}

    def test_list_jobs_filters_and_orders(self):
        service = make_service(workers=0)
        first, __ = service.submit(spec=SPEC, tenant="ci")
        second, __ = service.submit(spec=SPEC, tenant="staging")
        rows = service.list_jobs()
        assert [row["id"] for row in rows] == [second.id, first.id]
        assert [row["id"] for row in service.list_jobs(tenant="ci")] == [first.id]
        assert service.list_jobs(state=JobState.DONE) == []
        assert len(service.list_jobs(limit=1)) == 1

    def test_stats_shape(self):
        service = make_service(workers=0, queue_depth=7)
        service.submit(spec=SPEC)
        stats = service.stats()
        assert stats["queued"] == 1
        assert stats["queue_depth_cap"] == 7
        assert stats["states"] == {JobState.QUEUED: 1}
        json.dumps(stats)  # JSON-safe by contract

    def test_close_drains_cleanly(self, tmp_path):
        service = make_service(tmp_path, workers=2)
        job, __ = service.submit(spec=SPEC, sources=inline_sources())
        service.wait(job.id, timeout=30)
        assert service.close() is True
        assert not service.pool.running


# ---------------------------------------------------------------------------
# Crash recovery (satellite: exactly-once requeue + fingerprint parity)
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def crash_mid_job(self, tmp_path):
        """Simulate a worker dying mid-job: RUNNING journalled, no terminal."""
        service = make_service(tmp_path, workers=0)
        job, __ = service.submit(spec=SPEC, sources=inline_sources())
        running = service._next_job(timeout=0)  # journals the RUNNING entry
        assert running is job
        service.journal.close()  # the process dies here; nothing terminal
        return job

    def test_midflight_job_requeued_exactly_once(self, tmp_path):
        crashed = self.crash_mid_job(tmp_path)
        service = make_service(tmp_path, workers=1)
        try:
            done = service.wait(crashed.id, timeout=30)
            assert done.state == JobState.DONE
            assert done.requeues == 1
            assert done.attempts == 2  # pre-crash start + the retry
            # exactly once: the journal holds one job, not a duplicate
            assert len(service.list_jobs()) == 1
            # interruption must not change the verdict
            assert done.result["fingerprint"] == direct_fingerprint()
        finally:
            service.close()

    def test_second_crash_parks_job_as_interrupted(self, tmp_path):
        self.crash_mid_job(tmp_path)
        # crash again mid-flight: recover (requeue), start it, die again
        service = make_service(tmp_path, workers=0)
        job = service._next_job(timeout=0)
        assert job is not None and job.requeues == MAX_REQUEUES
        service.journal.close()

        recovered = make_service(tmp_path, workers=0)
        parked = recovered.get(job.id)
        assert parked.state == JobState.INTERRUPTED
        assert "interrupted twice" in parked.error
        assert recovered._next_job(timeout=0) is None  # not retried forever

    def test_queued_jobs_resume_after_restart(self, tmp_path):
        service = make_service(tmp_path, workers=0)
        job, __ = service.submit(spec=SPEC, sources=inline_sources())
        service.close(drain=False)  # SIGTERM path: QUEUED stays durable

        resumed = make_service(tmp_path, workers=1)
        try:
            done = resumed.wait(job.id, timeout=30)
            assert done.state == JobState.DONE
            assert done.requeues == 0  # never started, so not a requeue
            assert done.result["fingerprint"] == direct_fingerprint()
        finally:
            resumed.close()

    def test_terminal_jobs_and_dedup_index_survive_restart(self, tmp_path):
        service = make_service(tmp_path, workers=1)
        job, __ = service.submit(
            spec=SPEC, sources=inline_sources(), idempotency_key="k"
        )
        service.wait(job.id, timeout=30)
        service.close()

        recovered = make_service(tmp_path, workers=0)
        kept = recovered.get(job.id)
        assert kept.state == JobState.DONE
        assert kept.result["fingerprint"] == direct_fingerprint()
        again, created = recovered.submit(
            spec=SPEC, sources=inline_sources(), idempotency_key="k"
        )
        assert created is False and again.id == job.id

    def test_recovery_compacts_journal(self, tmp_path):
        self.crash_mid_job(tmp_path)
        service = make_service(tmp_path, workers=0)
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "snapshot"
        service.journal.close()
