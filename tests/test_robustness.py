"""Robustness fuzzing: the front end never hangs or leaks raw exceptions.

Tooling (console, editor, service) routes arbitrary user text through the
lexer and parser; the contract is that bad input produces
:class:`~repro.errors.CPLSyntaxError` (with a position) — never an
``IndexError``/``RecursionError``/hang — and good input round-trips.
Drivers get the same treatment for arbitrary buffer text.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpl import parse, tokenize
from repro.drivers import get_driver
from repro.errors import ConfValleyError, CPLSyntaxError, DriverError

_CPL_ALPHABET = (
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    " \t\n$.*_-><=!&|~#@(){}[],:'\"/\\+∃∀→≤≥"
)


@given(st.text(alphabet=_CPL_ALPHABET, max_size=120))
@settings(max_examples=500, deadline=None)
def test_property_lexer_total(text):
    """tokenize() terminates with tokens or a positioned CPLSyntaxError."""
    try:
        tokens = tokenize(text)
    except CPLSyntaxError as error:
        assert error.line >= 1
        return
    assert tokens[-1].type == "EOF"
    # token positions are sane
    for token in tokens:
        assert token.line >= 1 and token.column >= 1


@given(st.text(alphabet=_CPL_ALPHABET, max_size=120))
@settings(max_examples=500, deadline=None)
def test_property_parser_total(text):
    """parse() terminates with a Program or a CPLSyntaxError."""
    try:
        program = parse(text)
    except CPLSyntaxError:
        return
    assert isinstance(program.statements, tuple)


_FRAGMENTS = st.sampled_from([
    "$K -> int", "compartment C {", "}", "let M :=", "@", "->", "[1,",
    "{'a'", "if (", "namespace x {", "$a.b::c", "load 'x'", "!! 'm'",
    "exists", "~", "& |", "$_ ==", "get $x", "include", "'unterminated",
])


@given(st.lists(_FRAGMENTS, min_size=1, max_size=8))
@settings(max_examples=300, deadline=None)
def test_property_parser_fragment_storm(fragments):
    """Random recombinations of real syntax fragments never crash."""
    try:
        parse("\n".join(fragments))
    except CPLSyntaxError:
        pass


@given(st.text(max_size=200))
@settings(max_examples=300, deadline=None)
@pytest.mark.parametrize("format_name", ["ini", "keyvalue", "json", "csv"])
def test_property_drivers_total(format_name, text):
    """Drivers raise DriverError on garbage, never random exceptions."""
    driver = get_driver(format_name)
    try:
        instances = driver.parse(text)
    except ConfValleyError:
        return
    for instance in instances:
        assert instance.key.render()


@given(st.text(alphabet="<>ab/&;'\" =\n", max_size=80))
@settings(max_examples=200, deadline=None)
def test_property_xml_driver_total(text):
    try:
        get_driver("xml").parse(text)
    except DriverError:
        pass
