"""End-to-end chaos: the service survives injected I/O faults (ISSUE 2, sat. 4).

A :class:`~repro.resilience.FaultyRuntimeProvider` with a seeded
:class:`~repro.resilience.FaultPlan` injects missing files, I/O errors,
truncation and binary garbage into the read path while a resilient
:class:`~repro.ValidationService` scans a synthetic Azure Type-C corpus.
Two properties must hold at fixed seeds:

* **liveness** — every scan completes and returns a ScanResult; faults
  never escape as exceptions;
* **determinism** — two services driven by the same seed produce the
  identical per-scan health status sequence (and identical injected-fault
  logs), so chaos runs are replayable.
"""

from __future__ import annotations

import pytest

from repro import (
    FaultPlan,
    FaultyRuntimeProvider,
    ResiliencePolicy,
    SourceSpec,
    ValidationService,
)
from repro.core.report import HealthBlock
from repro.synthetic import EXPERT_SPECS
from repro.synthetic.azure import generate_type_c

SCANS = 12
RATES = dict(
    io_error_rate=0.08,
    not_found_rate=0.08,
    truncate_rate=0.10,
    garbage_rate=0.08,
)


def build_corpus(tmp_path):
    """Write the Type-C INI environments to real files + the spec file."""
    dataset = generate_type_c(scale=0.25)
    sources = []
    paths = set()
    for index, (format_name, text, scope) in enumerate(dataset.sources):
        path = tmp_path / f"env{index:02d}.ini"
        path.write_text(text)
        sources.append(SourceSpec(format_name, str(path), scope))
        paths.add(str(path))
    spec = tmp_path / "spec.cpl"
    spec.write_text(EXPERT_SPECS["type_c"])
    return str(spec), sources, paths


def run_chaos(tmp_path, seed):
    spec, sources, source_paths = build_corpus(tmp_path)
    # fault only the configuration sources: the spec file stays readable,
    # so every scan can at least attempt validation
    plan = FaultPlan(seed=seed, only_paths=source_paths, **RATES)
    service = ValidationService(
        spec,
        sources,
        runtime=FaultyRuntimeProvider(plan),
        resilience=ResiliencePolicy(),
    )
    statuses = []
    for __ in range(SCANS):
        result = service.run_once()      # must never raise
        assert result is not None
        statuses.append(result.health.status)
    return statuses, plan


@pytest.mark.parametrize("seed", [11, 29])
def test_every_scan_completes_under_chaos(tmp_path, seed):
    statuses, plan = run_chaos(tmp_path, seed)
    assert len(statuses) == SCANS
    assert all(s in (HealthBlock.OK, HealthBlock.DEGRADED, HealthBlock.FAILED)
               for s in statuses)
    # the configured rates make fault-free runs astronomically unlikely —
    # the harness must actually have injected something
    assert plan.injected
    assert HealthBlock.DEGRADED in statuses or HealthBlock.FAILED in statuses


@pytest.mark.parametrize("seed", [11, 29])
def test_same_seed_same_health_sequence(tmp_path_factory, seed):
    first_dir = tmp_path_factory.mktemp(f"chaos-a-{seed}")
    second_dir = tmp_path_factory.mktemp(f"chaos-b-{seed}")
    first_statuses, first_plan = run_chaos(first_dir, seed)
    second_statuses, second_plan = run_chaos(second_dir, seed)
    assert first_statuses == second_statuses
    assert [(f["read"], f["kind"]) for f in first_plan.injected] == [
        (f["read"], f["kind"]) for f in second_plan.injected
    ]


def test_different_seeds_diverge(tmp_path_factory):
    a, plan_a = run_chaos(tmp_path_factory.mktemp("chaos-s1"), 11)
    b, plan_b = run_chaos(tmp_path_factory.mktemp("chaos-s2"), 29)
    assert [(f["read"], f["kind"]) for f in plan_a.injected] != [
        (f["read"], f["kind"]) for f in plan_b.injected
    ]


def test_quarantine_recovers_when_faults_stop(tmp_path):
    spec, sources, source_paths = build_corpus(tmp_path)
    plan = FaultPlan(seed=3, only_paths=source_paths, garbage_rate=0.5)
    service = ValidationService(
        spec,
        sources,
        runtime=FaultyRuntimeProvider(plan),
        resilience=ResiliencePolicy(),
    )
    degraded = service.run_once()
    assert degraded.health.status in (HealthBlock.DEGRADED, HealthBlock.FAILED)
    # stop injecting: quarantined sources parse again on their retry probes
    plan.rates = {kind: 0.0 for kind in plan.rates}
    last = None
    for __ in range(10):
        last = service.run_once()
        if last.health.status == HealthBlock.OK:
            break
    assert last.health.status == HealthBlock.OK
    assert last.health.quarantined_sources == []


# ---------------------------------------------------------------------------
# Process chaos: SIGKILL a supervised worker process mid-fleet (ISSUE 7)
# ---------------------------------------------------------------------------


def test_supervised_worker_killed_and_restarted(tmp_path):
    """kill -9 a supervised worker: the supervisor restarts it and the
    job backlog still drains to correct verdicts."""
    import os
    import signal
    import time

    from repro.jobs import JobService, JobState
    from repro.jobs.model import report_fingerprint_digest
    from repro.core.session import ValidationSession

    spec = "$s.Timeout -> int & [1, 60]\n"
    ini = "[s]\nTimeout = 30\n"
    session = ValidationSession()
    session.load_text("ini", ini, source="inline.ini")
    expected = report_fingerprint_digest(session.validate(spec))

    service = JobService(
        journal_dir=str(tmp_path / "jobsdir"), workers=0, worker_procs=1,
        lease_ttl=1.0, reaper_interval=0.05, worker_poll=0.02,
    )
    try:
        sources = [{"format": "ini", "text": ini, "source": "inline.ini"}]
        first, __ = service.submit(spec=spec, sources=sources)
        done = service.wait(first.id, timeout=60)
        assert done.state == JobState.DONE
        assert done.result["fingerprint"] == expected

        pid = service.supervisor.status()[0]["pid"]
        os.kill(pid, signal.SIGKILL)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            rows = service.supervisor.status()
            if rows[0]["restarts"] >= 1 and rows[0]["alive"]:
                break
            time.sleep(0.05)
        rows = service.supervisor.status()
        assert rows[0]["restarts"] >= 1 and rows[0]["alive"], (
            "the supervisor never restarted the killed worker"
        )

        second, __ = service.submit(spec=spec, sources=sources)
        redone = service.wait(second.id, timeout=60)
        assert redone.state == JobState.DONE
        assert redone.result["fingerprint"] == expected
    finally:
        service.close(drain=False)
