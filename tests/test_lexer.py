"""CPL lexer: tokens, domains, comments, newline folding."""

from __future__ import annotations

import pytest

from repro.cpl.lexer import tokenize
from repro.cpl.tokens import TokenType
from repro.errors import CPLSyntaxError


def types(text):
    return [t.type for t in tokenize(text) if t.type != TokenType.EOF]


def values(text):
    return [t.value for t in tokenize(text) if t.type != TokenType.EOF]


class TestBasics:
    def test_simple_spec(self):
        tokens = tokenize("$OSBuildPath -> path & exists")
        assert [t.type for t in tokens[:5]] == [
            TokenType.DOMAIN,
            TokenType.ARROW,
            TokenType.IDENT,
            TokenType.AND,
            TokenType.QUANT_EXISTS,
        ]
        assert tokens[0].value == "OSBuildPath"

    def test_unicode_arrow_and_quantifiers(self):
        assert types("$A → int")[:2] == [TokenType.DOMAIN, TokenType.ARROW]
        assert types("∃ nonempty")[0] == TokenType.QUANT_EXISTS
        assert types("∀ nonempty")[0] == TokenType.QUANT_FORALL
        assert types("∃! nonempty")[0] == TokenType.QUANT_ONE

    def test_unicode_relops(self):
        assert values("$a ≤ $b")[1] == "<="
        assert values("$a ≥ $b")[1] == ">="

    def test_relops(self):
        for op in ("==", "!=", "<", "<=", ">", ">="):
            assert values(f"$a {op} 5")[1] == op

    def test_single_equals_tolerated(self):
        assert values("$a = 5")[1] == "=="

    def test_strings_with_escape(self):
        assert values(r"'it\'s'") == ["it's"]

    def test_unterminated_string_raises(self):
        with pytest.raises(CPLSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        assert values("42 3.14") == [42, 3.14]

    def test_keywords_vs_idents(self):
        tokens = tokenize("load nonempty namespace")
        assert tokens[0].type == TokenType.KEYWORD
        assert tokens[1].type == TokenType.IDENT
        assert tokens[2].type == TokenType.KEYWORD

    def test_macro_and_hash(self):
        assert types("@Macro")[:2] == [TokenType.AT, TokenType.IDENT]
        assert types("#[C] $x#")[0] == TokenType.HASH

    def test_unexpected_char_raises(self):
        with pytest.raises(CPLSyntaxError) as info:
            tokenize("$a -> ^")
        assert info.value.line == 1


class TestDomainScanning:
    def test_plain(self):
        assert values("$Fabric.RecoveryAttempts")[0] == "Fabric.RecoveryAttempts"

    def test_named_and_numbered(self):
        assert values("$Cloud::CO2.Tenant[2].K")[0] == "Cloud::CO2.Tenant[2].K"

    def test_nested_variable(self):
        assert values("$Fabric::$CloudName.TenantName")[0] == "Fabric::$CloudName.TenantName"

    def test_context_var(self):
        tokens = tokenize("$_")
        assert tokens[0].type == TokenType.DOMAIN
        assert tokens[0].value == "_"

    def test_context_var_inside_notation(self):
        assert values("$MachinePool::$_.VipRanges")[0] == "MachinePool::$_.VipRanges"

    def test_wildcards(self):
        assert values("$*IP")[0] == "*IP"
        assert values("$*.SecretKey")[0] == "*.SecretKey"

    def test_range_bracket_not_swallowed(self):
        # `[` after a domain only binds when it holds an index
        tokens = tokenize("$ProxyIP -> [$StartIP, $EndIP]")
        assert tokens[0].value == "ProxyIP"
        assert tokens[2].type == TokenType.LBRACKET

    def test_index_bracket_swallowed(self):
        assert values("$Cloud[1].K")[0] == "Cloud[1].K"

    def test_quoted_qualifier(self):
        assert values("$G::'East1 Production'.K")[0] == "G::'East1 Production'.K"

    def test_empty_domain_raises(self):
        with pytest.raises(CPLSyntaxError):
            tokenize("$ ->")


class TestComments:
    def test_line_comment(self):
        assert types("// comment\n$a -> int")[0] == TokenType.DOMAIN

    def test_block_comment(self):
        assert types("/* multi\nline */ $a -> int")[0] == TokenType.DOMAIN

    def test_unterminated_block_raises(self):
        with pytest.raises(CPLSyntaxError):
            tokenize("/* oops")


class TestNewlineFolding:
    def test_continuation_after_trailing_and(self):
        tokens = types("$a -> int &\n[5,15]")
        assert TokenType.NEWLINE not in tokens

    def test_continuation_before_leading_and(self):
        tokens = types("$a -> int\n& [5,15]")
        assert TokenType.NEWLINE not in tokens

    def test_statement_separation_preserved(self):
        tokens = types("$a -> int\n$b -> bool")
        assert tokens.count(TokenType.NEWLINE) == 1

    def test_newlines_invisible_inside_parens(self):
        tokens = types("$a -> match(\n'x'\n)")
        assert TokenType.NEWLINE not in tokens

    def test_newlines_kept_inside_braces(self):
        # namespace/compartment blocks hold statements
        tokens = types("compartment C {\n$a -> int\n$b -> bool\n}")
        assert tokens.count(TokenType.NEWLINE) >= 2

    def test_rbrace_emits_virtual_newline(self):
        tokens = types("compartment C { $a -> int }")
        rbrace = tokens.index(TokenType.RBRACE)
        assert tokens[rbrace + 1] == TokenType.NEWLINE

    def test_leading_blank_lines_dropped(self):
        assert types("\n\n$a -> int")[0] == TokenType.DOMAIN

    def test_line_numbers_tracked(self):
        tokens = tokenize("$a -> int\n$b -> bool")
        b_token = [t for t in tokens if t.value == "b"][0]
        assert b_token.line == 2
