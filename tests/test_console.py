"""Interactive console and batch CLI (paper §5.1 usage scenarios)."""

from __future__ import annotations

import pytest

from repro import ValidationSession
from repro.console import Console, main


class ScriptedConsole:
    """Drive the console with a canned input script; capture output."""

    def __init__(self, lines, session=None):
        self.lines = list(lines)
        self.output: list[str] = []
        self.console = Console(session=session, output_fn=self.output.append)

    def run(self):
        iterator = iter(self.lines)

        def fake_input(prompt):
            try:
                return next(iterator)
            except StopIteration:
                raise EOFError

        self.console.run(input_fn=fake_input)
        return "\n".join(self.output)


class TestConsole:
    def test_one_liner_validation(self):
        session = ValidationSession()
        session.load_text("keyvalue", "A.K = 5\n")
        text = ScriptedConsole(["$K -> int"], session).run()
        assert "PASS" in text

    def test_violation_shown(self):
        session = ValidationSession()
        session.load_text("keyvalue", "A.K = oops\n")
        text = ScriptedConsole(["$K -> int"], session).run()
        assert "FAIL" in text

    def test_get_directive(self):
        session = ValidationSession()
        session.load_text("keyvalue", "A.K = v1\n")
        text = ScriptedConsole([":get K"], session).run()
        assert "A.K = 'v1'" in text

    def test_get_empty(self):
        text = ScriptedConsole([":get Nothing"]).run()
        assert "(no instances)" in text

    def test_stats_directive(self):
        session = ValidationSession()
        session.load_text("keyvalue", "A.K = v\nB.K = w\n")
        text = ScriptedConsole([":stats"], session).run()
        assert "2 instance(s)" in text

    def test_let_directive(self):
        session = ValidationSession()
        session.load_text("keyvalue", "A.K = 7\n")
        text = ScriptedConsole(
            [":let Small := int & [0, 9]", "$K -> @Small"], session
        ).run()
        assert "macro @Small defined" in text
        assert "PASS" in text

    def test_load_directive(self, tmp_path):
        (tmp_path / "c.ini").write_text("[s]\nK = v\n")
        text = ScriptedConsole([f":load ini {tmp_path}/c.ini"]).run()
        assert "loaded 1 instance(s)" in text

    def test_syntax_error_reported_not_raised(self):
        text = ScriptedConsole(["$broken ->"]).run()
        assert "error:" in text

    def test_unknown_directive(self):
        text = ScriptedConsole([":wat"]).run()
        assert "unknown directive" in text

    def test_quit(self):
        console = ScriptedConsole([":quit", "$never -> int"])
        console.run()
        assert not console.console.running

    def test_help(self):
        text = ScriptedConsole([":help"]).run()
        assert ":load" in text and ":get" in text

    def test_blank_lines_ignored(self):
        text = ScriptedConsole(["", "   "]).run()
        assert "error" not in text

    def test_conflicts_directive(self):
        session = ValidationSession()
        session.load_text("keyvalue", "auth.Key = a\n", source="one")
        session.load_text("keyvalue", "auth.Key = b\n", source="two")
        text = ScriptedConsole([":conflicts"], session).run()
        assert "auth.Key" in text
        assert "'a' from one" in text

    def test_conflicts_directive_clean(self):
        text = ScriptedConsole([":conflicts"]).run()
        assert "no cross-source conflicts" in text


class TestCLI:
    def make_sources(self, tmp_path):
        (tmp_path / "cfg.ini").write_text("[fabric]\nTimeout = 30\nFlag = true\n")
        (tmp_path / "spec.cpl").write_text(
            "$fabric.Timeout -> int & [1, 60]\n$fabric.Flag -> bool\n"
        )

    def test_validate_pass(self, tmp_path, capsys):
        self.make_sources(tmp_path)
        code = main([
            "validate", str(tmp_path / "spec.cpl"),
            "--source", f"ini:{tmp_path}/cfg.ini",
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_validate_fail_exit_code(self, tmp_path, capsys):
        self.make_sources(tmp_path)
        (tmp_path / "bad.ini").write_text("[fabric]\nTimeout = 999\nFlag = x\n")
        code = main([
            "validate", str(tmp_path / "spec.cpl"),
            "--source", f"ini:{tmp_path}/bad.ini",
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_validate_partitioned(self, tmp_path, capsys):
        self.make_sources(tmp_path)
        code = main([
            "validate", str(tmp_path / "spec.cpl"),
            "--source", f"ini:{tmp_path}/cfg.ini",
            "--partitions", "2",
        ])
        assert code == 0
        assert "partitions" in capsys.readouterr().out

    def test_infer_to_stdout(self, tmp_path, capsys):
        self.make_sources(tmp_path)
        code = main(["infer", "--source", f"ini:{tmp_path}/cfg.ini"])
        assert code == 0
        assert "->" in capsys.readouterr().out

    def test_infer_to_file(self, tmp_path):
        self.make_sources(tmp_path)
        out = tmp_path / "inferred.cpl"
        code = main([
            "infer", "--source", f"ini:{tmp_path}/cfg.ini", "--out", str(out)
        ])
        assert code == 0
        assert "->" in out.read_text()

    def test_bad_source_spec_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["validate", "x.cpl", "--source", "nocolon"])

    def test_source_with_scope(self, tmp_path, capsys):
        (tmp_path / "cfg.ini").write_text("[s]\nK = 5\n")
        (tmp_path / "spec.cpl").write_text("$Env.s.K -> int\n")
        code = main([
            "validate", str(tmp_path / "spec.cpl"),
            "--source", f"ini:{tmp_path}/cfg.ini:Env",
        ])
        assert code == 0

    def test_service_subcommand_single_scan(self, tmp_path, capsys):
        (tmp_path / "cfg.ini").write_text("[s]\nK = 5\n")
        (tmp_path / "spec.cpl").write_text("$s.K -> int\n")
        code = main([
            "service", str(tmp_path / "spec.cpl"),
            "--source", f"ini:{tmp_path}/cfg.ini",
            "--max-scans", "1", "--interval", "0",
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_service_subcommand_failing(self, tmp_path, capsys):
        (tmp_path / "cfg.ini").write_text("[s]\nK = oops\n")
        (tmp_path / "spec.cpl").write_text("$s.K -> int\n")
        code = main([
            "service", str(tmp_path / "spec.cpl"),
            "--source", f"ini:{tmp_path}/cfg.ini",
            "--max-scans", "1", "--interval", "0",
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out
