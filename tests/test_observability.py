"""Observability subsystem: tracing, metrics, exposition, structured logs.

The two contracts everything hangs on:

* **nil cost by default** — the no-op tracer/registry are installed until
  ``observability.enable()``, and instrumentation never changes validation
  *output*: ``ValidationReport.fingerprint()`` is byte-identical with
  observability on or off, serial or sharded;
* **complete traces** — the merged span tree covers every shard, including
  shards that crashed in their executor and were re-run serially by the
  supervision ladder.
"""

from __future__ import annotations

import io
import json
import logging
import pickle

import pytest

from repro import (
    ParallelValidator,
    ResiliencePolicy,
    SourceSpec,
    ValidationService,
    ValidationSession,
    observability,
    parse,
)
from repro.core.compiler import optimize_statements
from repro.observability import (
    DEFAULT_BUCKETS,
    JsonFormatter,
    MetricsRegistry,
    SpanContext,
    Tracer,
    configure_logging,
    get_logger,
    load_snapshot,
    parse_prometheus,
    render_stats,
    reset_logging,
    write_snapshot,
)
from repro.observability.metrics import NULL_REGISTRY, NullRegistry
from repro.observability.tracing import NULL_TRACER
from repro.parallel import ProcessShardExecutor, partition_statements
from repro.runtime import FakeClock, MonotonicClock, get_clock, set_clock
from repro.synthetic import EXPERT_SPECS
from repro.synthetic.azure import generate_type_a


@pytest.fixture(autouse=True)
def pristine_observability():
    """Every test starts and ends with the no-op singletons installed."""
    observability.disable()
    previous_clock = set_clock(None)
    yield
    observability.disable()
    set_clock(previous_clock)
    reset_logging()


@pytest.fixture(scope="module")
def corpus():
    store = generate_type_a(0.05).build_store()
    statements = optimize_statements(
        list(parse(EXPERT_SPECS["type_a"]).statements)
    )
    return store, statements


@pytest.fixture
def workspace(tmp_path):
    spec = tmp_path / "specs.cpl"
    spec.write_text("$fabric.Timeout -> int & [1, 60]\n")
    config = tmp_path / "prod.ini"
    config.write_text("[fabric]\nTimeout = 30\n")
    return tmp_path, spec, config


# ---------------------------------------------------------------------------
# Injectable clock
# ---------------------------------------------------------------------------


class TestClock:
    def test_monotonic_default(self):
        assert isinstance(get_clock(), MonotonicClock)
        a = get_clock().now()
        b = get_clock().now()
        assert b >= a

    def test_fake_clock_ticks_and_counts_reads(self):
        clock = FakeClock(start=10.0, tick=0.5)
        assert clock.now() == 10.0
        assert clock.now() == 10.5
        clock.advance(4.0)
        assert clock.now() == 15.0
        assert clock.reads == 3

    def test_fake_clock_rejects_backwards(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1)

    def test_set_clock_returns_previous(self):
        fake = FakeClock()
        previous = set_clock(fake)
        assert isinstance(previous, MonotonicClock)
        assert get_clock() is fake
        assert set_clock(None) is fake
        assert isinstance(get_clock(), MonotonicClock)

    def test_report_timing_reads_installed_clock(self):
        set_clock(FakeClock(start=100.0, tick=1.0))
        session = ValidationSession()
        session.load_text("ini", "[fabric]\nTimeout = 30\n")
        report = session.validate("$fabric.Timeout -> int")
        # serial evaluation brackets the run with exactly two clock reads
        assert report.elapsed_seconds == 1.0


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_accumulates_by_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Requests.")
        counter.inc(code="200")
        counter.inc(2, code="200")
        counter.inc(code="500")
        assert counter.value(code="200") == 3
        assert counter.value(code="500") == 1

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c_total", "C.")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth", "Depth.")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4

    def test_histogram_buckets_and_sum(self):
        histogram = MetricsRegistry().histogram("lat", "Latency.")
        for value in (0.0001, 0.003, 0.3, 99.0):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(99.3031)
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_get_or_create_is_idempotent_and_typed(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "X.")
        assert registry.counter("x_total", "X.") is first
        with pytest.raises(TypeError):
            registry.gauge("x_total", "X.")

    def test_null_registry_is_inert(self):
        assert not NULL_REGISTRY.enabled
        metric = NULL_REGISTRY.counter("anything", "ignored")
        metric.inc(5, label="x")  # all no-ops, never raises
        metric.observe(1.0)
        metric.set(3)
        assert NULL_REGISTRY.to_prometheus() == ""
        assert isinstance(NULL_REGISTRY, NullRegistry)


class TestPrometheusExposition:
    def test_exposition_round_trips_through_parser(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "Jobs run.").inc(kind="scan")
        registry.gauge("open", "Open things.").set(2)
        registry.histogram("secs", "Seconds.").observe(0.002)
        families = parse_prometheus(registry.to_prometheus())
        assert families["jobs_total"]["type"] == "counter"
        assert families["open"]["type"] == "gauge"
        assert families["secs"]["type"] == "histogram"
        sample_names = [s[0] for s in families["secs"]["samples"]]
        assert "secs_sum" in sample_names and "secs_count" in sample_names

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "H.", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = registry.to_prometheus()
        assert 'h_bucket{le="0.1"} 1' in text
        assert 'h_bucket{le="1"} 2' in text
        assert 'h_bucket{le="+Inf"} 2' in text

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not prometheus\n")

    def test_inf_buckets_parse_as_floats(self):
        registry = MetricsRegistry()
        registry.histogram("lat", "L.", buckets=(0.5,)).observe(3.0)
        families = parse_prometheus(registry.to_prometheus())
        inf_samples = [
            (labels, value)
            for name, labels, value in families["lat"]["samples"]
            if name == "lat_bucket" and labels["le"] == "+Inf"
        ]
        assert inf_samples == [({"le": "+Inf"}, 1.0)]
        assert parse_prometheus("x 3\ny +Inf\nz -Inf\n")["y"]["samples"][0][2] \
            == float("inf")

    def test_label_value_escaping_round_trips(self):
        awkward = 'quote " backslash \\ newline \n comma , brace }'
        registry = MetricsRegistry()
        registry.counter("weird_total", "W.").inc(path=awkward)
        text = registry.to_prometheus()
        # the exposition itself must stay one sample per line
        assert "\n comma" not in text
        families = parse_prometheus(text)
        __, labels, value = families["weird_total"]["samples"][0]
        assert labels == {"path": awkward}
        assert value == 1.0

    def test_parser_rejects_invalid_label_escape(self):
        with pytest.raises(ValueError):
            parse_prometheus('x_total{a="bad \\t escape"} 1\n')

    def test_empty_registry_exposes_and_parses_cleanly(self):
        registry = MetricsRegistry()
        text = registry.to_prometheus()
        assert parse_prometheus(text) == {}
        # a registered-but-never-observed family still exposes validly
        registry.counter("silent_total", "S.")
        registry.histogram("quiet", "Q.")
        families = parse_prometheus(registry.to_prometheus())
        assert families["silent_total"]["type"] == "counter"
        assert families["quiet"]["type"] == "histogram"
        bucket_values = [
            value for name, __, value in families["quiet"]["samples"]
            if name == "quiet_bucket"
        ]
        assert bucket_values and all(value == 0.0 for value in bucket_values)

    def test_metrics_endpoint_round_trip(self, workspace):
        """Regression: the live /metrics body must satisfy the parser."""
        tmp, spec, config = workspace
        obs = observability.enable()
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        service.run_once()
        server = service.start_http()
        try:
            import urllib.request

            with urllib.request.urlopen(server.url + "/metrics") as response:
                assert response.headers["Content-Type"].startswith("text/plain")
                body = response.read().decode("utf-8")
        finally:
            service.stop_http()
        assert parse_prometheus(body) == parse_prometheus(obs.metrics.to_prometheus())

    def test_json_exposition(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "A.").inc()
        payload = json.loads(registry.to_json())
        assert payload["a_total"]["kind"] == "counter"
        assert payload["a_total"]["series"][0]["value"] == 1


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class TestTracer:
    def test_spans_nest_and_carry_attrs(self):
        tracer = Tracer()
        with tracer.span("outer", a=1) as outer:
            with tracer.span("inner"):
                pass
            outer.set(b=2)
        tree = tracer.span_tree()
        assert [node["name"] for node in tree] == ["outer"]
        assert [child["name"] for child in tree[0]["children"]] == ["inner"]
        (root,) = tracer.find("outer")
        assert root["attrs"] == {"a": 1, "b": 2}

    def test_span_records_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("bad")
        assert "RuntimeError" in tracer.find("boom")[0]["attrs"]["error"]

    def test_span_context_pickles(self):
        tracer = Tracer()
        with tracer.span("parent"):
            context = tracer.current_context()
        clone = pickle.loads(pickle.dumps(context))
        assert isinstance(clone, SpanContext)
        assert clone.span_id == context.span_id

    def test_worker_spans_reparent_on_adopt(self):
        parent = Tracer()
        with parent.span("evaluate"):
            origin = parent.current_context()
        worker = Tracer(origin=origin, prefix=f"{origin.span_id}/s0:")
        with worker.span("shard[s0]"):
            with worker.span("evaluate(stmt)"):
                pass
        parent.adopt(worker.finished_spans())
        tree = parent.span_tree()
        shard = tree[0]["children"][0]
        assert shard["name"] == "shard[s0]"
        assert shard["children"][0]["name"] == "evaluate(stmt)"

    def test_chrome_trace_export(self):
        set_clock(FakeClock(tick=0.001))
        tracer = Tracer()
        with tracer.span("scan"):
            pass
        payload = tracer.to_chrome_trace()
        (event,) = payload["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "scan"
        assert event["dur"] == pytest.approx(1000.0)  # µs

    def test_null_tracer_is_inert_and_reentrant(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("a") as handle:
            handle.set(x=1)
            with NULL_TRACER.span("b"):
                pass
        assert NULL_TRACER.finished_spans() == []

    def test_deterministic_span_ids_under_fake_clock(self):
        set_clock(FakeClock(tick=0.5))
        first = Tracer()
        with first.span("scan"):
            with first.span("compile"):
                pass
        set_clock(FakeClock(tick=0.5))
        second = Tracer()
        with second.span("scan"):
            with second.span("compile"):
                pass
        assert first.to_json() == second.to_json()


# ---------------------------------------------------------------------------
# Structured logging
# ---------------------------------------------------------------------------


class TestStructuredLogging:
    def test_silent_by_default(self):
        logger = logging.getLogger("repro")
        assert any(
            isinstance(h, logging.NullHandler) for h in logger.handlers
        )

    def test_json_lines_with_extras(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        get_logger("service").warning(
            "scan completed", extra={"sequence": 3, "passed": False}
        )
        record = json.loads(stream.getvalue())
        assert record["event"] == "scan completed"
        assert record["level"] == "warning"
        assert record["logger"] == "repro.service"
        assert record["sequence"] == 3
        assert record["passed"] is False

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        configure_logging(stream=stream)
        get_logger("x").error("once")
        assert len(stream.getvalue().splitlines()) == 1

    def test_formatter_survives_unserializable_extra(self):
        formatter = JsonFormatter()
        record = logging.LogRecord(
            "repro.t", logging.INFO, __file__, 1, "msg", None, None
        )
        record.weird = object()
        payload = json.loads(formatter.format(record))
        assert "object object" in payload["weird"]


# ---------------------------------------------------------------------------
# Pipeline integration: spans, metrics, determinism
# ---------------------------------------------------------------------------


class CrashOnceExecutor:
    """Executor whose dispatch crashes on one shard label, once."""

    name = "crash-once"

    def __init__(self, crash_label):
        self.crash_label = crash_label
        self.crashes = 0

    def run(self, state, shards):
        from repro.parallel.engine import evaluate_shard

        out = []
        for shard in shards:
            if shard.label == self.crash_label and not self.crashes:
                self.crashes += 1
                raise RuntimeError("worker crashed")
            out.append(evaluate_shard(state, shard))
        return out


def shard_span_labels(tracer):
    return sorted(
        span["name"][len("shard["):-1]
        for span in tracer.finished_spans()
        if span["name"].startswith("shard[")
    )


class TestPipelineTracing:
    MAX_SHARDS = 4

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_span_tree_covers_every_shard(self, corpus, executor):
        store, statements = corpus
        obs = observability.enable()
        report = ParallelValidator(
            store, executor=executor, max_shards=self.MAX_SHARDS
        ).validate_statements(statements)
        assert report.shards_run >= 2
        __, shards = partition_statements(statements, self.MAX_SHARDS)
        assert shard_span_labels(obs.tracer) == sorted(
            shard.label for shard in shards
        )
        # every shard span hangs off the single "evaluate" root
        (evaluate,) = obs.tracer.find("evaluate")
        for span in obs.tracer.finished_spans():
            if span["name"].startswith("shard["):
                assert span["parent_id"] == evaluate["span_id"]

    @pytest.mark.skipif(
        not ProcessShardExecutor.available(), reason="no fork start method"
    )
    def test_span_tree_covers_fork_workers(self, corpus):
        store, statements = corpus
        obs = observability.enable()
        ParallelValidator(
            store, executor="process", max_shards=self.MAX_SHARDS
        ).validate_statements(statements)
        __, shards = partition_statements(statements, self.MAX_SHARDS)
        assert shard_span_labels(obs.tracer) == sorted(
            shard.label for shard in shards
        )

    def test_serially_rerun_shard_still_traced(self, corpus):
        store, statements = corpus
        __, shards = partition_statements(statements, self.MAX_SHARDS)
        crashed = shards[0].label
        obs = observability.enable()
        report = ParallelValidator(
            store,
            executor=CrashOnceExecutor(crashed),
            max_shards=self.MAX_SHARDS,
            shard_timeout=5.0,
            shard_retries=0,
        ).validate_statements(statements)
        recovered = [
            f for f in report.health.shard_failures if f["shard"] == crashed
        ]
        assert recovered and recovered[0]["recovered"] == "serial"
        # the re-run shard appears in the merged trace exactly once
        assert shard_span_labels(obs.tracer).count(crashed) == 1
        assert shard_span_labels(obs.tracer) == sorted(
            shard.label for shard in shards
        )

    def test_shard_failure_metrics_emitted(self, corpus):
        store, statements = corpus
        __, shards = partition_statements(statements, self.MAX_SHARDS)
        obs = observability.enable()
        ParallelValidator(
            store,
            executor=CrashOnceExecutor(shards[0].label),
            max_shards=self.MAX_SHARDS,
            shard_timeout=5.0,
            shard_retries=1,
        ).validate_statements(statements)
        counter = obs.metrics.counter("confvalley_shard_failures_total", "")
        assert counter.value(kind="crash", recovered="retry") == 1
        retries = obs.metrics.counter("confvalley_shard_retries_total", "")
        assert retries.value() >= 1


class TestFingerprintDeterminism:
    @pytest.mark.parametrize("executor", [None, "thread"])
    def test_fingerprint_identical_with_observability(self, corpus, executor):
        store, statements = corpus

        def run():
            return ParallelValidator(
                store, executor=executor or "serial", max_shards=4
            ).validate_statements(statements)

        baseline = run().fingerprint()
        observability.enable()
        traced = run().fingerprint()
        observability.disable()
        assert traced == baseline

    def test_session_fingerprint_identical(self):
        def run():
            session = ValidationSession()
            session.load_text("ini", "[fabric]\nTimeout = 99\n")
            return session.validate(
                "$fabric.Timeout -> int & [1, 60]"
            ).fingerprint()

        baseline = run()
        observability.enable()
        assert run() == baseline


# ---------------------------------------------------------------------------
# Service: scan history, snapshots, stats
# ---------------------------------------------------------------------------


def resilient_service(spec, config, tmp_path, **kwargs):
    return ValidationService(
        str(spec),
        [
            SourceSpec("ini", str(config)),
            SourceSpec("ini", str(tmp_path / "missing.ini")),
        ],
        resilience=ResiliencePolicy(),
        **kwargs,
    )


class TestServiceObservability:
    def test_resilient_scan_exposes_required_families(self, workspace):
        tmp_path, spec, config = workspace
        obs = observability.enable()
        service = resilient_service(spec, config, tmp_path, executor="thread")
        service.run_once()
        families = parse_prometheus(obs.metrics.to_prometheus())
        for family in (
            "confvalley_source_quarantine_admits_total",
            "confvalley_sources_quarantined",
            "confvalley_breakers_open",
            "confvalley_spec_cache_lookups_total",
            "confvalley_scans_total",
        ):
            assert family in families, family

    def test_scan_history_ring_buffer(self, workspace):
        tmp_path, spec, config = workspace
        service = ValidationService(
            str(spec), [SourceSpec("ini", str(config))], history_limit=3
        )
        for __ in range(5):
            service.run_once()
        assert len(service.scan_records) == 3
        assert [r["sequence"] for r in service.scan_records] == [3, 4, 5]
        record = service.scan_records[-1]
        assert record["passed"] is True
        assert record["violations_delta"] == 0
        assert record["cache_hits"] >= 1  # steady state reuses the compile

    def test_stats_payload(self, workspace):
        tmp_path, spec, config = workspace
        service = resilient_service(spec, config, tmp_path)
        service.run_once()
        stats = service.stats()
        assert stats["status"] == "passing"
        assert stats["validations"] == 1
        assert stats["quarantined_sources"][0]["kind"] == "missing"
        assert stats["history"][0]["health"] == "DEGRADED"
        json.dumps(stats)  # JSON-safe by contract

    def test_metrics_file_snapshot_rewritten_each_scan(self, workspace):
        tmp_path, spec, config = workspace
        observability.enable()
        target = tmp_path / "metrics.json"
        service = ValidationService(
            str(spec),
            [SourceSpec("ini", str(config))],
            metrics_file=str(target),
        )
        service.run_once()
        first = load_snapshot(str(target))
        assert first["stats"]["validations"] == 1
        service.run_once()
        second = load_snapshot(str(target))
        assert second["stats"]["validations"] == 2
        parse_prometheus(second["prometheus"])
        assert not list(tmp_path.glob("*.tmp"))  # atomic replace cleaned up

    def test_prometheus_snapshot_extension(self, workspace, tmp_path):
        __, spec, config = workspace
        observability.enable()
        target = tmp_path / "metrics.prom"
        service = ValidationService(
            str(spec),
            [SourceSpec("ini", str(config))],
            metrics_file=str(target),
        )
        service.run_once()
        families = parse_prometheus(target.read_text())
        assert "confvalley_scans_total" in families

    def test_render_stats_readable(self, workspace):
        tmp_path, spec, config = workspace
        observability.enable()
        service = resilient_service(spec, config, tmp_path)
        service.run_once()
        snapshot = {
            "snapshot_version": 1,
            "stats": service.stats(),
            "metrics": json.loads(observability.get_metrics().to_json()),
            "prometheus": observability.get_metrics().to_prometheus(),
        }
        text = render_stats(snapshot)
        assert "quarantined sources" in text
        assert "missing.ini" in text

    def test_cache_stats_property(self, workspace):
        __, spec, config = workspace
        service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
        assert service.cache_stats.lookups == 0
        service.run_once()
        assert service.cache_stats.misses == 1
        service.run_once()
        assert service.cache_stats.hits == 1
        assert service.cache_stats.as_dict()["hits"] == 1


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCLI:
    def test_version_flag(self, capsys):
        from repro import __version__
        from repro.console.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_validate_trace_out(self, workspace, capsys):
        from repro.console.cli import main

        tmp_path, spec, config = workspace
        trace = tmp_path / "trace.json"
        code = main([
            "validate", str(spec), "--source", f"ini:{config}",
            "--trace-out", str(trace),
        ])
        assert code == 0
        events = json.loads(trace.read_text())["traceEvents"]
        assert "compile" in [event["name"] for event in events]

    def test_service_metrics_file_then_stats(self, workspace, capsys):
        from repro.console.cli import main

        tmp_path, spec, config = workspace
        snapshot = tmp_path / "snap.json"
        code = main([
            "service", str(spec), "--source", f"ini:{config}",
            "--resilient", "--metrics-file", str(snapshot),
            "--max-scans", "1", "--interval", "0",
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["stats", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "status: passing" in out
        assert main(["stats", str(snapshot), "--format", "prometheus"]) == 0
        parse_prometheus(capsys.readouterr().out)
        assert main(["stats", str(snapshot), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["snapshot_version"] == 1

    def test_stats_missing_snapshot(self, tmp_path, capsys):
        from repro.console.cli import main

        assert main(["stats", str(tmp_path / "nope.json")]) == 1
        assert "no snapshot" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Snapshot files
# ---------------------------------------------------------------------------


class TestSnapshotFiles:
    def test_write_and_load_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a_total", "A.").inc()
        target = tmp_path / "snap.json"
        write_snapshot(str(target), {"scans": 1}, registry)
        snapshot = load_snapshot(str(target))
        assert snapshot["stats"] == {"scans": 1}
        assert "a_total" in snapshot["metrics"]
        assert "a_total 1" in snapshot["prometheus"]

    def test_load_raw_prometheus(self, tmp_path):
        registry = MetricsRegistry()
        registry.gauge("g", "G.").set(7)
        target = tmp_path / "snap.prom"
        write_snapshot(str(target), {}, registry)
        snapshot = load_snapshot(str(target))
        assert "g 7" in snapshot["prometheus"]
