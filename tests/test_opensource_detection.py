"""OpenStack/CloudStack corpora: CPL and imperative baselines agree on
broken data, not just on clean data (Table 4's functional equivalence)."""

from __future__ import annotations

import pytest

from repro import ConfigStore, ValidationSession
from repro.repository.model import ConfigInstance
from repro.synthetic import (
    CLOUDSTACK_SPECS,
    OPENSTACK_SPECS,
    generate_cloudstack,
    generate_openstack,
    validate_cloudstack,
    validate_openstack,
)


def broken_store(dataset, leaf, new_value):
    """Rebuild a dataset's store with one parameter's first instance broken."""
    store = ConfigStore()
    done = False
    for instance in dataset.parse():
        if not done and instance.key.leaf_name == leaf:
            store.add(ConfigInstance(instance.key, new_value, instance.source))
            done = True
        else:
            store.add(instance)
    assert done, leaf
    return store


OPENSTACK_FAULTS = [
    ("my_ip", "not-an-ip"),
    ("osapi_compute_workers", "64"),
    ("use_neutron", "maybe"),
    ("virt_type", "hyperv"),
    ("report_interval", "0"),
    ("instances_path", "relative/path"),
    ("auth_url", "controller-no-scheme"),
]


@pytest.mark.parametrize("leaf,bad", OPENSTACK_FAULTS)
def test_openstack_cpl_and_imperative_agree(leaf, bad):
    dataset = generate_openstack(nodes=6)
    store = broken_store(dataset, leaf, bad)
    report = ValidationSession(store=store).validate(OPENSTACK_SPECS)
    imperative = validate_openstack(store)
    assert not report.passed, leaf
    assert imperative, leaf
    # both point at the same parameter
    assert any(leaf in v.key for v in report.violations), leaf
    assert any(leaf in error for error in imperative), leaf


CLOUDSTACK_FAULTS = [
    ("host", "999.0.0.1"),
    ("list", "HyperV"),
    ("enabled", "perhaps"),
    ("url", "http://insecure.example.com"),
    ("workers", "0"),
    ("sites", "192.168.1.0"),
    ("algorithm", "roundrobin"),
]


@pytest.mark.parametrize("leaf,bad", CLOUDSTACK_FAULTS)
def test_cloudstack_cpl_and_imperative_agree(leaf, bad):
    dataset = generate_cloudstack(zones=5)
    store = broken_store(dataset, leaf, bad)
    report = ValidationSession(store=store).validate(CLOUDSTACK_SPECS)
    imperative = validate_cloudstack(store)
    assert not report.passed, leaf
    assert imperative, leaf


def test_openstack_consistency_break():
    # service_down_time <= report_interval on one host: the cross-parameter
    # rule both sides implement
    dataset = generate_openstack(nodes=6)
    store = broken_store(dataset, "service_down_time", "5")
    report = ValidationSession(store=store).validate(OPENSTACK_SPECS)
    imperative = validate_openstack(store)
    assert any(v.constraint in (">", "range") for v in report.violations)
    assert any("service_down_time" in error for error in imperative)


def test_openstack_duplicate_ip_detected_by_both():
    dataset = generate_openstack(nodes=6)
    instances = dataset.parse()
    ips = [i for i in instances if i.key.leaf_name == "my_ip"]
    store = ConfigStore()
    for instance in instances:
        if instance.key == ips[1].key:
            store.add(ConfigInstance(instance.key, ips[0].value, instance.source))
        else:
            store.add(instance)
    report = ValidationSession(store=store).validate(OPENSTACK_SPECS)
    imperative = validate_openstack(store)
    assert any(v.constraint == "unique" for v in report.violations)
    assert any("duplicate my_ip" in error for error in imperative)
