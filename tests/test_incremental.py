"""Incremental validation: change-driven spec selection + soundness."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConfigRepository, IncrementalValidator, ValidationSession
from repro.repository.keys import parse_instance_key
from repro.repository.model import ConfigInstance


def inst(key_text, value):
    return ConfigInstance(parse_instance_key(key_text), value, "test")


SPECS = """
let SmallInt := int & [1, 60]
$Cluster.Timeout -> @SmallInt
$Cluster.Mode -> {'fast', 'safe'}
$Node.IP -> ip & unique
$*Port* -> port
compartment Cluster {
  $Floor <= $Ceiling
}
"""

BASE = [
    inst("Cluster::C1.Timeout", "30"),
    inst("Cluster::C1.Mode", "fast"),
    inst("Cluster::C1.Floor", "1"),
    inst("Cluster::C1.Ceiling", "9"),
    inst("Node::N1.IP", "10.0.0.1"),
    inst("Node::N2.IP", "10.0.0.2"),
    inst("Fabric.AgentPort", "8080"),
]


def commit_pair(new_instances):
    repo = ConfigRepository()
    old = repo.commit(BASE)
    new = repo.commit(new_instances)
    return repo, old, new


class TestSelection:
    def test_only_touched_specs_selected(self):
        validator = IncrementalValidator(SPECS)
        repo, old, new = commit_pair(
            [inst("Cluster::C1.Timeout", "45")] + BASE[1:]
        )
        change = repo.diff(old, new)
        selected = validator.affected_statements(change)
        # the let (always) + the Timeout spec
        assert len(selected) == 2

    def test_wildcard_specs_selected_when_matching(self):
        validator = IncrementalValidator(SPECS)
        repo, old, new = commit_pair(
            BASE[:-1] + [inst("Fabric.AgentPort", "9090")]
        )
        change = repo.diff(old, new)
        report = validator.validate_change(repo.store_for(new), change)
        assert report.passed
        assert validator.last_selected == 2  # let + $*Port*

    def test_compartment_spec_selected_by_member_change(self):
        validator = IncrementalValidator(SPECS)
        changed = [
            i if i.key.render() != "Cluster::C1.Ceiling" else inst("Cluster::C1.Ceiling", "0")
            for i in BASE
        ]
        repo, old, new = commit_pair(changed)
        change = repo.diff(old, new)
        report = validator.validate_change(repo.store_for(new), change)
        assert len(report.violations) == 1  # Floor 1 > Ceiling 0

    def test_empty_change_selects_nothing(self):
        validator = IncrementalValidator(SPECS)
        repo, old, new = commit_pair(list(BASE))
        change = repo.diff(old, new)
        report = validator.validate_change(repo.store_for(new), change)
        assert report.specs_evaluated == 0
        assert validator.last_skipped == validator.statement_count - 1  # let kept

    def test_lets_always_retained(self):
        validator = IncrementalValidator(SPECS)
        repo, old, new = commit_pair(
            [inst("Cluster::C1.Timeout", "999")] + BASE[1:]
        )
        change = repo.diff(old, new)
        report = validator.validate_change(repo.store_for(new), change)
        assert len(report.violations) == 1  # @SmallInt resolved fine

    def test_aggregate_rerun_over_full_domain(self):
        validator = IncrementalValidator(SPECS)
        # change one Node IP to collide with the *unchanged* other one
        changed = [
            i if i.key.render() != "Node::N2.IP" else inst("Node::N2.IP", "10.0.0.1")
            for i in BASE
        ]
        repo, old, new = commit_pair(changed)
        change = repo.diff(old, new)
        report = validator.validate_change(repo.store_for(new), change)
        assert len(report.violations) == 1
        assert report.violations[0].constraint == "unique"

    def test_load_commands_rejected(self):
        with pytest.raises(ValueError):
            IncrementalValidator("load 'ini' 'x.ini'\n$K -> int")

    def test_validate_full_baseline(self):
        validator = IncrementalValidator(SPECS)
        repo = ConfigRepository()
        snapshot = repo.commit(BASE)
        assert validator.validate_full(repo.store_for(snapshot)).passed


# ---------------------------------------------------------------------------
# Soundness property: incremental == full, restricted to affected statements
# ---------------------------------------------------------------------------

_MUTATIONS = {
    "Cluster::C1.Timeout": ["45", "999", "x"],
    "Cluster::C1.Mode": ["safe", "fsat"],
    "Cluster::C1.Ceiling": ["0", "100"],
    "Node::N2.IP": ["10.0.0.1", "oops", "10.0.0.9"],
    "Fabric.AgentPort": ["9090", "70000", "abc"],
}


@given(
    st.dictionaries(
        keys=st.sampled_from(sorted(_MUTATIONS)),
        values=st.integers(min_value=0, max_value=2),
        min_size=0,
        max_size=4,
    )
)
@settings(max_examples=80, deadline=None)
def test_property_incremental_matches_full(mutations):
    new_instances = []
    for instance in BASE:
        key = instance.key.render()
        if key in mutations:
            options = _MUTATIONS[key]
            value = options[mutations[key] % len(options)]
            new_instances.append(inst(key, value))
        else:
            new_instances.append(instance)
    repo, old, new = commit_pair(new_instances)
    change = repo.diff(old, new)

    validator = IncrementalValidator(SPECS)
    incremental = validator.validate_change(repo.store_for(new), change)
    full = ValidationSession(store=repo.store_for(new)).validate(SPECS)

    def signature(report):
        return sorted({(v.key, v.value, v.constraint) for v in report.violations})

    # every incremental violation appears in the full run …
    assert set(signature(incremental)) <= set(signature(full))
    # … and every full-run violation on a *touched class* is found
    touched = change.touched_classes()
    missed = [
        entry
        for entry in signature(full)
        if entry not in set(signature(incremental))
        and parse_instance_key(entry[0]).class_key in touched
    ]
    assert not missed
