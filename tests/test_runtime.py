"""Runtime providers and the filesystem abstraction (paper §4.3)."""

from __future__ import annotations

from repro.runtime import FakeFileSystem, HostRuntime, RealFileSystem, StaticRuntime


class TestFakeFileSystem:
    def test_added_paths_exist(self):
        fs = FakeFileSystem(["/a/b/c"])
        assert fs.exists("/a/b/c")
        assert fs.exists("/a/b")     # ancestors exist
        assert fs.exists("/a")
        assert not fs.exists("/a/b/d")

    def test_windows_separators_normalized(self):
        fs = FakeFileSystem([r"\\share\OS\v2"])
        assert fs.exists(r"\\share\OS\v2")
        assert fs.exists("//share/os/v2")  # case-insensitive, separator-agnostic

    def test_remove(self):
        fs = FakeFileSystem(["/a/b"])
        fs.remove("/a/b")
        assert not fs.exists("/a/b")
        assert fs.exists("/a")

    def test_trailing_slash_irrelevant(self):
        fs = FakeFileSystem(["/x/y/"])
        assert fs.exists("/x/y")


class TestRealFileSystem:
    def test_reports_actual_paths(self, tmp_path):
        fs = RealFileSystem()
        assert fs.exists(str(tmp_path))
        assert not fs.exists(str(tmp_path / "missing"))


class TestStaticRuntime:
    def test_environment_facts(self):
        runtime = StaticRuntime(environment={"os": "Linux", "hostname": "h1"})
        assert runtime.environment() == {"os": "Linux", "hostname": "h1"}

    def test_default_filesystem_is_fake(self):
        assert isinstance(StaticRuntime().filesystem, FakeFileSystem)

    def test_reachability(self):
        runtime = StaticRuntime(reachable={"a:1"})
        assert runtime.is_reachable("a:1")
        assert not runtime.is_reachable("b:2")
        runtime.add_reachable("b:2")
        assert runtime.is_reachable("b:2")


class TestHostRuntime:
    def test_environment_has_expected_facts(self):
        env = HostRuntime().environment()
        for fact in ("os", "hostname", "date", "time", "weekday"):
            assert fact in env

    def test_unreachable_endpoint(self):
        # port 1 on localhost is almost certainly closed; must not raise
        assert HostRuntime().is_reachable("127.0.0.1:1") is False
