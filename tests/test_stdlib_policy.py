"""Standard macro library, policy waivers, durations, fmt subcommand."""

from __future__ import annotations

import pytest

from repro import ValidationPolicy, ValidationSession, typesys
from repro.console import main
from repro.cpl.stdlib import STDLIB_CPL, STDLIB_MACRO_NAMES
from repro.predicates import get_predicate


class TestStdlib:
    def test_stdlib_parses_and_loads(self, make_store):
        session = ValidationSession(store=make_store([("A.K", "v")]))
        names = session.load_stdlib()
        assert set(names) <= set(session.evaluator.macros)

    def test_every_advertised_macro_defined(self, make_store):
        session = ValidationSession(store=make_store([]))
        session.load_stdlib()
        for name in STDLIB_MACRO_NAMES:
            assert name in session.evaluator.macros, name

    @pytest.mark.parametrize("macro,good,bad", [
        ("HttpsUrl", "https://x.io/a", "http://x.io/a"),
        ("Percentage", "42.5", "120"),
        ("Ratio", "0.25", "1.5"),
        ("PositiveInt", "7", "0"),
        ("NonNegativeInt", "0", "-1"),
        ("SaneTimeout", "30", "0"),
        ("SanePort", "8080", "99999"),
        ("ReplicaCount", "3", "4"),
        ("Endpoint", "10.0.0.1:443", "10.0.0.1"),
        ("PrivateIPv4", "192.168.1.4", "8.8.8.8"),
        ("LoopbackFree", "10.0.0.1", "127.0.0.1"),
        ("RequiredString", "x", ""),
        ("WindowsShare", "\\\\share\\os", "/unix/path"),
    ])
    def test_macro_semantics(self, make_store, macro, good, bad):
        session = ValidationSession(store=make_store([("A.K", good)]))
        session.load_stdlib()
        assert session.validate(f"$K -> @{macro}").passed, (macro, good)
        session2 = ValidationSession(store=make_store([("A.K", bad)]))
        session2.load_stdlib()
        assert not session2.validate(f"$K -> @{macro}").passed, (macro, bad)

    def test_unique_macros(self, make_store):
        session = ValidationSession(
            store=make_store([("A::1.IP", "10.0.0.1"), ("A::2.IP", "10.0.0.1")])
        )
        session.load_stdlib()
        assert not session.validate("$IP -> @UniqueIP").passed


class TestSuppressions:
    def test_waiver_filters_violation(self, make_store):
        policy = ValidationPolicy(suppressions=[("*LegacyTimeout", "int")])
        session = ValidationSession(
            store=make_store([("A.LegacyTimeout", "soon"), ("A.Port", "bad")]),
            policy=policy,
        )
        report = session.validate("$LegacyTimeout -> int\n$Port -> port")
        assert len(report.violations) == 1
        assert report.violations[0].key == "A.Port"
        assert report.suppressed == 1

    def test_suppress_helper(self, make_store):
        policy = ValidationPolicy()
        policy.suppress("*LegacyTimeout")
        session = ValidationSession(
            store=make_store([("A.LegacyTimeout", "soon")]), policy=policy
        )
        report = session.validate("$LegacyTimeout -> int")
        assert report.passed
        assert report.suppressed == 1

    def test_constraint_glob(self, make_store):
        policy = ValidationPolicy(suppressions=[("*", "range")])
        session = ValidationSession(
            store=make_store([("A.K", "99")]), policy=policy
        )
        report = session.validate("$K -> int & [1, 10]")
        assert report.passed   # range suppressed, int passes

    def test_suppressed_counted_in_json(self, make_store):
        policy = ValidationPolicy(suppressions=[("*", "*")])
        session = ValidationSession(store=make_store([("A.K", "x")]), policy=policy)
        data = session.validate("$K -> int").to_dict()
        assert data["suppressed"] == 1


class TestDurations:
    @pytest.mark.parametrize("text,seconds", [
        ("30s", 30.0), ("5m", 300.0), ("1.5h", 5400.0), ("250ms", 0.25), ("2d", 172800.0),
    ])
    def test_parse(self, text, seconds):
        assert typesys.parse_duration(text) == pytest.approx(seconds)

    @pytest.mark.parametrize("text", ["30", "s", "5 minutes", "", "m5"])
    def test_rejects(self, text):
        assert typesys.parse_duration(text) is None

    def test_detected_type(self):
        assert typesys.detect_type("30s") == "duration"
        assert typesys.detect_type("30s,5m") == "list<duration>"

    def test_predicate(self):
        spec = get_predicate("duration")
        assert spec.fn("45m") and not spec.fn("45")

    def test_comparison_across_units(self, make_store):
        session = ValidationSession(store=make_store([("A.T", "90s")]))
        assert session.validate("$T -> <= '2m'").passed
        assert not session.validate("$T -> <= '1m'").passed

    def test_inference_emits_duration(self, make_store):
        from repro import InferenceEngine

        store = make_store([(f"A::{i}.Grace", f"{i + 10}s") for i in range(5)])
        result = InferenceEngine().infer(store)
        cpl = result.to_cpl()
        assert "-> duration" in cpl
        assert ValidationSession(store=store).validate(cpl).passed


class TestFmtSubcommand:
    def test_fmt_to_stdout(self, tmp_path, capsys):
        (tmp_path / "s.cpl").write_text("$a   ->    int   &   nonempty\n")
        assert main(["fmt", str(tmp_path / "s.cpl")]) == 0
        assert capsys.readouterr().out == "$a -> int & nonempty\n"

    def test_fmt_write_in_place(self, tmp_path):
        spec = tmp_path / "s.cpl"
        spec.write_text("$a->int\n$b  ->  bool\n")
        assert main(["fmt", str(spec), "--write"]) == 0
        assert spec.read_text() == "$a -> int\n$b -> bool\n"

    def test_fmt_optimize_applies_rewrites(self, tmp_path, capsys):
        spec = tmp_path / "s.cpl"
        spec.write_text("$a -> int\n$a -> nonempty\n")
        assert main(["fmt", str(spec), "--optimize"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 1           # merged into one spec
        assert "int" in out and "nonempty" not in out  # implied elided

    def test_fmt_output_reparses(self, tmp_path, capsys):
        from repro.cpl import parse

        source = (
            "compartment Cluster {\n  $ProxyIP -> [$StartIP, $EndIP]\n}\n"
            "if (exists $R.G == 'x') $D -> nonempty\n"
        )
        spec = tmp_path / "s.cpl"
        spec.write_text(source)
        main(["fmt", str(spec)])
        parse(capsys.readouterr().out)  # must not raise
