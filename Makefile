# Convenience entry points.  Everything assumes the repo root as cwd and
# needs no installation beyond the checked-in source (PYTHONPATH=src).

PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench-smoke bench ci

## Tier-1 test suite (the gate every change must keep green).
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## Run every benchmark on a tiny corpus — correctness of the bench
## harness itself, not a measurement.  See benchmarks/smoke.sh.
bench-smoke:
	sh benchmarks/smoke.sh

## Full benchmark run at the default (laptop-friendly) scales.
## Tables land in benchmarks/results/.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ -q --benchmark-disable

## What CI runs: the tier-1 suite plus the benchmark smoke pass.
ci: test bench-smoke
