# Convenience entry points.  Everything assumes the repo root as cwd and
# needs no installation beyond the checked-in source (PYTHONPATH=src).

PYTHON ?= python
PYTHONPATH := src

.PHONY: test chaos obs-smoke http-smoke jobs-smoke workers-smoke fleet-smoke delta-smoke lifecycle-smoke workflow-smoke bench-smoke bench ci

## Tier-1 test suite (the gate every change must keep green).
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## Fault-tolerance suite: driver fault matrix, resilience layers, and the
## seeded chaos run (fixed seeds — fully deterministic, see tests/test_chaos.py).
chaos:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q \
		tests/test_driver_faults.py tests/test_resilience.py tests/test_chaos.py

## Observability gate: the unit/integration suite plus a smoke-scale run
## of the overhead benchmark (which also validates that the Prometheus
## exposition parses).  Timing-ratio assertions are corpus-gated and do
## not fire at this scale.
obs-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q tests/test_observability.py
	REPRO_SCALE_A=0.1 REPRO_RESULTS_DIR=$$(mktemp -d) \
		PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q --benchmark-disable \
		benchmarks/bench_observability.py

## Live-endpoint smoke: start `service --http` as a real subprocess, scrape
## every operator endpoint (status codes + parseable bodies), then verify a
## clean SIGTERM shutdown and a released socket.
http-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/http_smoke.py

## Job-service smoke: start `service --http --jobs` as a real subprocess,
## drive submit --wait / dedup / listing over HTTP via the CLI, assert
## fingerprint parity with a direct validate, then SIGTERM-drain and
## verify the journal lost nothing.
jobs-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/jobs_smoke.py

## Multi-process worker smoke: coordinator subprocess + two external
## `confvalley worker` processes over a shared job directory; SIGKILL one
## mid-job and assert the lease expires, the job re-queues exactly once,
## the verdict fingerprint matches a direct run, and the completion
## webhook is delivered (after one induced 503).
workers-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/workers_smoke.py

## Fleet-observability smoke: coordinator subprocess + two external
## workers; assert one stitched end-to-end job trace across processes,
## worker-labeled federated /metrics, staleness fencing after a SIGKILL
## (dead worker ages out of the exposition but stays visible in /fleet),
## and that the trace survives the kill.
fleet-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/fleet_smoke.py

## Watch-mode delta smoke: start `service --delta --watch` as a real
## subprocess, edit one key, assert exactly one delta scan fires with the
## right scope and a fingerprint byte-identical to a full in-process scan,
## then verify idle polls stay quiet and SIGTERM shuts down cleanly.
delta-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/delta_smoke.py

## Inferred-spec lifecycle smoke: start `service --shadow` as a real
## subprocess and drive the full arc over HTTP + the CLI — re-inference
## registers candidates, clean scans promote, induced drift demotes the
## enforced spec, the operator re-promotes the survivor, and a restart
## on the same journal replays the exact enforced set.
lifecycle-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/lifecycle_smoke.py

## Composable-workflow smoke: `workflow validate`/`workflow run` over a
## real definition file (clean pass, injected fault -> gate skip + webhook
## delivery to a live local receiver), then the same pipeline as a
## mode=workflow job against a `service --http --jobs` subprocess with
## per-step statuses in the job record and verdict fingerprint parity.
workflow-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/workflow_smoke.py

## Run every benchmark on a tiny corpus — correctness of the bench
## harness itself, not a measurement.  See benchmarks/smoke.sh.
bench-smoke:
	sh benchmarks/smoke.sh

## Full benchmark run at the default (laptop-friendly) scales.
## Tables land in benchmarks/results/.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ -q --benchmark-disable

## What CI runs: the tier-1 suite, the chaos suite, the observability
## gate, the live-endpoint, job-service, multi-process worker,
## fleet-observability, watch-mode delta, lifecycle and workflow smokes,
## and the benchmark smoke pass.
ci: test chaos obs-smoke http-smoke jobs-smoke workers-smoke fleet-smoke delta-smoke lifecycle-smoke workflow-smoke bench-smoke
